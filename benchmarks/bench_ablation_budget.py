"""Ablation: Space-budget sweep (paper: unlimited budgets helped only sometimes).

Runs at a reduced scale (REPRO_ABLATION_SCALE, default 0.25).
"""

from repro.bench import ablations


def test_ablation_budget(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.ablation_budget,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
