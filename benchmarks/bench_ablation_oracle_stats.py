"""Ablation: Oracle vs degraded what-if statistics (Section 5 mechanism).

Runs at a reduced scale (REPRO_ABLATION_SCALE, default 0.25).
"""

from repro.bench import ablations


def test_ablation_oracle_statistics(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.ablation_oracle_statistics,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
