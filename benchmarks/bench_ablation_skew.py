"""Ablation: Zipf-factor sweep generalizing Figures 8 vs 9.

Runs at a reduced scale (REPRO_ABLATION_SCALE, default 0.25).
"""

from repro.bench import ablations


def test_ablation_skew(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.ablation_skew,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
