"""Ablation: System A bail-out threshold vs workload size (Section 4.1.2).

Runs at a reduced scale (REPRO_ABLATION_SCALE, default 0.25).
"""

from repro.bench import ablations


def test_ablation_workload_size(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.ablation_workload_size,
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
