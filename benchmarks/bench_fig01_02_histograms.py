"""Figures 1-2: elapsed-time histograms of NREF2J on System A, P vs R.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig01_02_histograms.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig1_2(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_1_2(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
