"""Figure 3: CFC of P/1C/R, System A on NREF2J.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig03_nref2j_sysA.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig3(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_cfc("fig3", ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
