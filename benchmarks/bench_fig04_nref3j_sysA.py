"""Figure 4: System A on NREF3J (recommender produces no R).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig04_nref3j_sysA.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig4(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_cfc("fig4", ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
