"""Figure 5: System B on NREF2J (R barely improves on P).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig05_nref2j_sysB.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig5(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_cfc("fig5", ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
