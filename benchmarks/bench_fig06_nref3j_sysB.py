"""Figure 6: System B on NREF3J (P < R < 1C).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig06_nref3j_sysB.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig6(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_cfc("fig6", ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
