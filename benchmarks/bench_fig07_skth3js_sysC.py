"""Figure 7: System C on SkTH3Js (R can beat 1C on the expensive tail).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig07_skth3js_sysC.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig7(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_cfc("fig7", ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
