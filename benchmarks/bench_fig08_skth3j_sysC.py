"""Figure 8: System C on SkTH3J (skewed data degrades the recommender).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig08_skth3j_sysC.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig8(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_cfc("fig8", ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
