"""Figure 9: System C on UnTH3J (uniform data; 1C still best overall).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig09_unth3j_sysC.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig9(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_cfc("fig9", ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
