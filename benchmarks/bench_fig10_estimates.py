"""Figure 10: estimate curves EP/ER/E1C vs hypothetical HR/H1C.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig10_estimates.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig10(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_10(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
