"""Figure 11: AIR/EIR/HIR improvement-ratio histograms (R vs 1C).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_fig11_improvement_ratios.py --benchmark-only -s
"""

from repro.bench import experiments


def test_fig11(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.figure_11(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
