#!/usr/bin/env python3
"""Perf trajectory of the dictionary-encoded columns (``BENCH_encoding.json``).

Runs the full fig4 pipeline — System A on NREF3J: data generation,
workload generation (constant-selection ladders), statistics, the 1C
recommendation, index builds, and the P/1C/R measurements — once with
the per-database dictionary cache off (``REPRO_DICT_CACHE=0``: every
consumer re-sorts with its own ``np.unique``) and once with it on
(shared :class:`~repro.storage.encoding.ColumnDictionary` per (table,
column); sort-free factorize/join/lexsort paths).  Each mode gets a
fresh context, so the deltas isolate the encoding layer.  The script
fails unless the two modes produce byte-identical figure text and
measured cost curves.

Besides wall time, each mode records how many times ``np.unique``
actually ran (the sorts the cache exists to eliminate) and the
``encoding.*`` counters (dictionary builds/hits, reused code arrays).

The output file matches :data:`repro.obs.schemas.BENCH_ENCODING_SCHEMA`
(prose version in ``docs/performance.md``) and is validated before it
is written.  CI runs the smoke mode on every push and uploads the file
as an artifact; the committed ``results/BENCH_encoding.json`` comes
from a full run (see ``EXPERIMENTS.md`` for the regeneration command).

Usage::

    python benchmarks/bench_perf_encoding.py           # full run (~minutes)
    python benchmarks/bench_perf_encoding.py --smoke   # CI-sized (~seconds)
    python benchmarks/bench_perf_encoding.py -o out.json --scale 0.1
"""

import argparse
import hashlib
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "src"))

import numpy as np                                       # noqa: E402

from repro import obs                                    # noqa: E402
from repro.bench.context import (                        # noqa: E402
    BenchContext,
    BenchSettings,
)
from repro.bench.experiments import figure_cfc           # noqa: E402
from repro.storage.encoding import CACHE_ENV             # noqa: E402

FIGURE = "fig4"
SYSTEM, FAMILY = "A", "NREF3J"

# Full-mode knobs reproduce the scale the profiling in docs/performance.md
# was captured at; smoke mode shrinks data and workload until both modes
# fit in CI seconds while still exercising every dictionary code path.
FULL = {"scale": 0.15, "workload_size": 100, "seed": 405, "jobs": 1}
SMOKE = {"scale": 0.05, "workload_size": 10, "seed": 405, "jobs": 1}

_COUNTER_KEYS = {
    "dict_builds": "encoding.dict_builds",
    "dict_hits": "encoding.dict_hits",
    "codes_reused": "encoding.codes_reused",
}


class _UniqueCounter:
    """Counts ``np.unique`` calls by wrapping the module attribute.

    Every consumer calls it as ``np.unique(...)`` through the shared
    module object, so swapping the attribute observes all of them —
    including the dictionary builds themselves, which is the point: the
    cached mode's count is what the cache could *not* eliminate.
    """

    def __init__(self):
        self.calls = 0
        self._original = None

    def __enter__(self):
        original = np.unique

        def counting_unique(*args, **kwargs):
            self.calls += 1
            return original(*args, **kwargs)

        self._original = original
        np.unique = counting_unique
        return self

    def __exit__(self, *exc):
        np.unique = self._original
        return False


def run_mode(settings, cached):
    """One timed fig4 pipeline run; returns the mode's metrics block.

    A fresh :class:`BenchContext` per call keeps artifacts and live
    databases from leaking between modes: the timer covers the whole
    pipeline (data, workload, stats, recommendation, measurements), the
    stages the dictionary cache spans.
    """
    os.environ[CACHE_ENV] = "1" if cached else "0"
    try:
        context = BenchContext(settings)
        with _UniqueCounter() as uniques:
            with obs.recording() as recorder:
                start = time.perf_counter()
                result = figure_cfc(FIGURE, context)
                wall = time.perf_counter() - start
    finally:
        del os.environ[CACHE_ENV]
    counters = recorder.metrics.snapshot().get("counters", {})
    mode = {
        "wall_seconds": round(wall, 4),
        "unique_calls": uniques.calls,
    }
    for field, counter in _COUNTER_KEYS.items():
        mode[field] = int(counters.get(counter, 0))
    mode["figure_fingerprint"] = hashlib.sha256(
        str(result).encode("utf-8")
    ).hexdigest()
    mode["costs_fingerprint"] = hashlib.sha256(
        json.dumps(result.data, sort_keys=True, default=repr)
        .encode("utf-8")
    ).hexdigest()
    return mode


def run_target(settings):
    """Uncached + cached runs of the fig4 target, with derived ratios."""
    label = f"{SYSTEM}/{FAMILY}"
    print(f"[{label}] uncached run (REPRO_DICT_CACHE=0) ...", flush=True)
    uncached = run_mode(settings, cached=False)
    print(
        f"[{label}] uncached: {uncached['wall_seconds']:.2f}s, "
        f"{uncached['unique_calls']} np.unique calls", flush=True,
    )
    print(f"[{label}] cached run (REPRO_DICT_CACHE=1) ...", flush=True)
    cached = run_mode(settings, cached=True)
    print(
        f"[{label}] cached:   {cached['wall_seconds']:.2f}s, "
        f"{cached['unique_calls']} np.unique calls, "
        f"{cached['dict_hits']} dict hits", flush=True,
    )
    identical = (
        cached["figure_fingerprint"] == uncached["figure_fingerprint"]
        and cached["costs_fingerprint"] == uncached["costs_fingerprint"]
    )
    return {
        "target": f"{SYSTEM}/{FAMILY}",
        "system": SYSTEM,
        "family": FAMILY,
        "identical": identical,
        "speedup": round(
            uncached["wall_seconds"] / max(cached["wall_seconds"], 1e-9), 3
        ),
        "unique_calls_ratio": round(
            uncached["unique_calls"] / max(cached["unique_calls"], 1), 3
        ),
        "cached": cached,
        "uncached": uncached,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_perf_encoding.py",
        description="Benchmark the dictionary-encoded column cache "
                    "(fig4 pipeline, cache on vs off).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (tiny scale and workload)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="output path "
                             "(default results/BENCH_encoding.json)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the mode's data scale factor")
    parser.add_argument("--workload-size", type=int, default=None,
                        help="override the mode's sampled workload size")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the sampling seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="override the worker-pool width (both modes)")
    args = parser.parse_args(argv)

    knobs = dict(SMOKE if args.smoke else FULL)
    for name in ("scale", "workload_size", "seed", "jobs"):
        value = getattr(args, name)
        if value is not None:
            knobs[name] = value
    settings = BenchSettings(
        scale=knobs["scale"],
        workload_size=knobs["workload_size"],
        seed=knobs["seed"],
        jobs=knobs["jobs"],
    )

    mode = "smoke" if args.smoke else "full"
    run_id = (
        f"encoding-{mode}-s{knobs['scale']}-w{knobs['workload_size']}"
        f"-seed{knobs['seed']}-j{knobs['jobs']}"
    )
    print(f"run {run_id}", flush=True)
    document = {
        "schema": "repro.bench_encoding/v1",
        "run": {
            "id": run_id,
            "smoke": bool(args.smoke),
            "scale": knobs["scale"],
            "workload_size": knobs["workload_size"],
            "seed": knobs["seed"],
            "jobs": knobs["jobs"],
        },
        "targets": [run_target(settings)],
    }
    obs.validate_bench_encoding(document)

    output = pathlib.Path(
        args.output
        or pathlib.Path(__file__).parents[1] / "results"
        / "BENCH_encoding.json"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    failed = False
    for target in document["targets"]:
        status = "identical" if target["identical"] else "MISMATCH"
        print(
            f"{target['target']}: speedup x{target['speedup']}, "
            f"np.unique calls x{target['unique_calls_ratio']} fewer, "
            f"{status}"
        )
        failed = failed or not target["identical"]
    if failed:
        print("FAILED: cached and uncached fig4 outputs differ",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
