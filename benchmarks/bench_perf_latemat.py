#!/usr/bin/env python3
"""Perf trajectory of the late-materialization executor
(``BENCH_latemat.json``).

Runs the fig4 pipeline — System A on NREF3J — and times its
``measure_workload`` stage (the P/1C/R workload measurements, the
stage the executor dominates; data generation, statistics, index
builds, and the recommendation are representation-independent setup
and stay untimed) once with ``REPRO_LATE_MAT=0`` (eager
batches: every ``mask``/``take`` copies every carried column, scans
attach every plan column, filters run the per-predicate ``_compare``
chain) and once with the default (selection-vector batches, plan-time
column pruning, fused predicate kernels, scratch-buffer arena).  Each
mode gets a fresh context, so the deltas isolate the executor's
materialization strategy.  The script fails unless the two modes
produce byte-identical figure text and measured cost curves.

Besides wall time, each mode records the ``executor.*`` counters the
feature introduces: deferred gathers and the payload bytes they
avoided, pruned scan columns, and fused-kernel builds/hits.

The output file matches :data:`repro.obs.schemas.BENCH_LATEMAT_SCHEMA`
(prose version in ``docs/performance.md#late-materialization``) and is
validated before it is written.  CI runs the smoke mode on every push
and uploads the file as an artifact; the committed
``results/BENCH_latemat.json`` comes from a full run (see
``EXPERIMENTS.md`` for the regeneration command).

Usage::

    python benchmarks/bench_perf_latemat.py           # full (~minutes)
    python benchmarks/bench_perf_latemat.py --smoke   # CI-sized
    python benchmarks/bench_perf_latemat.py -o out.json --scale 0.1
"""

import argparse
import hashlib
import json
import os
import pathlib
import statistics
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "src"))

from repro import obs                                    # noqa: E402
from repro.bench.context import (                        # noqa: E402
    FAMILY_DATASET,
    BenchContext,
    BenchSettings,
)
from repro.bench.experiments import figure_cfc           # noqa: E402
from repro.executor.kernels import LATEMAT_ENV           # noqa: E402

FIGURE = "fig4"
SYSTEM, FAMILY = "A", "NREF3J"

FULL = {"scale": 0.3, "workload_size": 300, "seed": 405, "jobs": 4,
        "repeat": 3}
SMOKE = {"scale": 0.05, "workload_size": 10, "seed": 405, "jobs": 1,
        "repeat": 1}

_COUNTER_KEYS = {
    "gathers_deferred": "executor.gathers_deferred",
    "gather_bytes_avoided": "executor.gather_bytes_avoided",
    "columns_pruned": "executor.columns_pruned",
    "kernel_builds": "executor.kernel_builds",
    "kernel_hits": "executor.kernel_hits",
}


def run_mode(settings, optimized, repeat=1):
    """Timed fig4 pipeline run(s); returns the mode's metrics block.

    A fresh :class:`BenchContext` per iteration keeps artifacts and
    live databases from leaking between modes and repeats.  The whole
    fig4 pipeline runs each iteration, but ``wall_seconds`` reports
    the context's ``measure_workload`` stage — the wall clock of the
    P/1C/R workload measurements, the one stage whose work the
    executor's materialization strategy changes.  Data generation,
    statistics, index builds, and the recommendation are
    representation-independent setup and stay out of the number (the
    whatif bench excludes them the same way, by timing only
    ``recommend``).  With ``repeat > 1``, ``wall_seconds`` is the
    median with the min/max recorded alongside (counters and
    fingerprints are deterministic, so the last iteration's stand for
    all).  The optimized mode runs under the library default (late
    materialization on); the baseline pins ``REPRO_LATE_MAT=0``.
    """
    saved = os.environ.pop(LATEMAT_ENV, None)
    if not optimized:
        os.environ[LATEMAT_ENV] = "0"
    try:
        walls = []
        for _ in range(max(repeat, 1)):
            context = BenchContext(settings)
            context.database(SYSTEM, FAMILY_DATASET[FAMILY])
            context.workload(SYSTEM, FAMILY)
            with obs.recording() as recorder:
                result = figure_cfc(FIGURE, context)
            stages = context.timings.snapshot()
            walls.append(stages["measure_workload"]["seconds"])
    finally:
        os.environ.pop(LATEMAT_ENV, None)
        if saved is not None:
            os.environ[LATEMAT_ENV] = saved
    counters = recorder.metrics.snapshot().get("counters", {})
    mode = {"wall_seconds": round(statistics.median(walls), 4)}
    if len(walls) > 1:
        mode["wall_seconds_min"] = round(min(walls), 4)
        mode["wall_seconds_max"] = round(max(walls), 4)
    for field, counter in _COUNTER_KEYS.items():
        mode[field] = int(counters.get(counter, 0))
    mode["figure_fingerprint"] = hashlib.sha256(
        str(result).encode("utf-8")
    ).hexdigest()
    mode["costs_fingerprint"] = hashlib.sha256(
        json.dumps(result.data, sort_keys=True, default=repr)
        .encode("utf-8")
    ).hexdigest()
    return mode


def run_target(settings, repeat=1):
    """Baseline + optimized runs of the fig4 target, with ratios."""
    label = f"{SYSTEM}/{FAMILY}"
    print(f"[{label}] baseline run (REPRO_LATE_MAT=0) ...", flush=True)
    baseline = run_mode(settings, optimized=False, repeat=repeat)
    print(
        f"[{label}] baseline:  {baseline['wall_seconds']:.2f}s "
        "(eager batches)", flush=True,
    )
    print(f"[{label}] optimized run (default) ...", flush=True)
    optimized = run_mode(settings, optimized=True, repeat=repeat)
    print(
        f"[{label}] optimized: {optimized['wall_seconds']:.2f}s, "
        f"{optimized['gathers_deferred']} gathers deferred "
        f"({optimized['gather_bytes_avoided']} bytes avoided), "
        f"{optimized['columns_pruned']} columns pruned, "
        f"{optimized['kernel_hits']} kernel hits", flush=True,
    )
    identical = (
        optimized["figure_fingerprint"] == baseline["figure_fingerprint"]
        and optimized["costs_fingerprint"] == baseline["costs_fingerprint"]
    )
    return {
        "target": label,
        "system": SYSTEM,
        "family": FAMILY,
        "identical": identical,
        "speedup": round(
            baseline["wall_seconds"]
            / max(optimized["wall_seconds"], 1e-9), 3
        ),
        "optimized": optimized,
        "baseline": baseline,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_perf_latemat.py",
        description="Benchmark the late-materialization executor "
                    "(fig4 pipeline, REPRO_LATE_MAT on vs off).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (tiny scale and workload)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="output path "
                             "(default results/BENCH_latemat.json)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the mode's data scale factor")
    parser.add_argument("--workload-size", type=int, default=None,
                        help="override the mode's sampled workload size")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the sampling seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="override the worker-pool width (both modes)")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="run each mode N times and report the median "
                             "wall time (min/max recorded in the JSON); "
                             "default 3 full, 1 smoke")
    args = parser.parse_args(argv)

    knobs = dict(SMOKE if args.smoke else FULL)
    for name in ("scale", "workload_size", "seed", "jobs", "repeat"):
        value = getattr(args, name)
        if value is not None:
            knobs[name] = value
    if knobs["repeat"] < 1:
        parser.error("--repeat must be >= 1")
    settings = BenchSettings(
        scale=knobs["scale"],
        workload_size=knobs["workload_size"],
        seed=knobs["seed"],
        jobs=knobs["jobs"],
    )

    mode = "smoke" if args.smoke else "full"
    run_id = (
        f"latemat-{mode}-s{knobs['scale']}-w{knobs['workload_size']}"
        f"-seed{knobs['seed']}-j{knobs['jobs']}"
    )
    print(f"run {run_id}", flush=True)
    document = {
        "schema": "repro.bench_latemat/v1",
        "run": {
            "id": run_id,
            "smoke": bool(args.smoke),
            "scale": knobs["scale"],
            "workload_size": knobs["workload_size"],
            "seed": knobs["seed"],
            "jobs": knobs["jobs"],
        },
    }
    if knobs["repeat"] > 1:
        document["run"]["repeat"] = knobs["repeat"]
    document["targets"] = [run_target(settings, repeat=knobs["repeat"])]
    obs.validate_bench_latemat(document)

    output = pathlib.Path(
        args.output
        or pathlib.Path(__file__).parents[1] / "results"
        / "BENCH_latemat.json"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    failed = False
    for target in document["targets"]:
        status = "identical" if target["identical"] else "MISMATCH"
        print(
            f"{target['target']}: speedup x{target['speedup']}, "
            f"{target['optimized']['gather_bytes_avoided']} gather bytes "
            f"avoided, {status}"
        )
        failed = failed or not target["identical"]
    if failed:
        print("FAILED: optimized and baseline fig4 outputs differ",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
