#!/usr/bin/env python3
"""Perf trajectory of cross-query optimization (``BENCH_multiquery.json``).

Runs the full fig4 pipeline — System A on NREF3J: data generation,
workload generation (constant-selection ladders), statistics, the 1C
recommendation, index builds, and the P/1C/R measurements — once with
the three cross-query knobs off (``REPRO_PLAN_TEMPLATES=0``,
``REPRO_SUBPLAN_CACHE=0``, ``REPRO_MORSEL_ROWS=0``: per-query
parse/bind, full DP join enumeration, per-query subplan recomputation)
and once with the defaults (bind/plan template replays, shared
subplan reuse).  Each mode gets a fresh context, so the deltas isolate
the cross-query layer.  The script fails unless the two modes produce
byte-identical figure text and measured cost curves.

Besides wall time, each mode records ``optimizer.plans_enumerated``
(full DP enumerations — the work the template cache exists to
eliminate, so the off/on ratio is deterministic) and the
``template.*`` / ``subplan.*`` / ``morsel.*`` counters.

The output file matches
:data:`repro.obs.schemas.BENCH_MULTIQUERY_SCHEMA` (prose version in
``docs/performance.md#cross-query-optimization``) and is validated
before it is written.  CI runs the smoke mode on every push and
uploads the file as an artifact; the committed
``results/BENCH_multiquery.json`` comes from a full run (see
``EXPERIMENTS.md`` for the regeneration command).

Usage::

    python benchmarks/bench_perf_multiquery.py           # full (~minutes)
    python benchmarks/bench_perf_multiquery.py --smoke   # CI-sized
    python benchmarks/bench_perf_multiquery.py -o out.json --scale 0.1
"""

import argparse
import hashlib
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "src"))

from repro import obs                                    # noqa: E402
from repro.bench.context import (                        # noqa: E402
    BenchContext,
    BenchSettings,
)
from repro.bench.experiments import figure_cfc           # noqa: E402
from repro.executor.morsels import MORSEL_ENV            # noqa: E402
from repro.executor.subplan import SUBPLAN_ENV           # noqa: E402
from repro.optimizer.templates import TEMPLATES_ENV      # noqa: E402

FIGURE = "fig4"
SYSTEM, FAMILY = "A", "NREF3J"

KNOB_ENVS = (TEMPLATES_ENV, SUBPLAN_ENV, MORSEL_ENV)

# Full-mode knobs reproduce the scale the profiling in docs/performance.md
# was captured at; smoke mode shrinks data and workload until both modes
# fit in CI seconds while still exercising every replay code path.
FULL = {"scale": 0.15, "workload_size": 100, "seed": 405, "jobs": 1}
SMOKE = {"scale": 0.05, "workload_size": 10, "seed": 405, "jobs": 1}

_COUNTER_KEYS = {
    "plans_enumerated": "optimizer.plans_enumerated",
    "plan_builds": "template.plan_builds",
    "plan_replays": "template.plan_replays",
    "bind_builds": "template.bind_builds",
    "bind_replays": "template.bind_replays",
    "fallbacks": "template.fallbacks",
    "morsel_batches": "morsel.batches",
}

_SUBPLAN_HIT_KEYS = (
    "subplan.semi_hits", "subplan.mask_hits", "subplan.domain_hits",
)
_SUBPLAN_BUILD_KEYS = (
    "subplan.semi_builds", "subplan.mask_builds", "subplan.domain_builds",
)


def run_mode(settings, optimized):
    """One timed fig4 pipeline run; returns the mode's metrics block.

    A fresh :class:`BenchContext` per call keeps artifacts and live
    databases from leaking between modes: the timer covers the whole
    pipeline (data, workload, stats, recommendation, measurements), the
    stages the cross-query caches span.  The optimized mode runs under
    the library defaults (templates and subplan cache on, morsels off
    — the container is single-core); the baseline pins all three off.
    """
    saved = {name: os.environ.pop(name, None) for name in KNOB_ENVS}
    if not optimized:
        for name in KNOB_ENVS:
            os.environ[name] = "0"
    try:
        context = BenchContext(settings)
        with obs.recording() as recorder:
            start = time.perf_counter()
            result = figure_cfc(FIGURE, context)
            wall = time.perf_counter() - start
    finally:
        for name, value in saved.items():
            os.environ.pop(name, None)
            if value is not None:
                os.environ[name] = value
    counters = recorder.metrics.snapshot().get("counters", {})
    mode = {"wall_seconds": round(wall, 4)}
    for field, counter in _COUNTER_KEYS.items():
        mode[field] = int(counters.get(counter, 0))
    mode["subplan_hits"] = sum(
        int(counters.get(key, 0)) for key in _SUBPLAN_HIT_KEYS
    )
    mode["subplan_builds"] = sum(
        int(counters.get(key, 0)) for key in _SUBPLAN_BUILD_KEYS
    )
    mode["figure_fingerprint"] = hashlib.sha256(
        str(result).encode("utf-8")
    ).hexdigest()
    mode["costs_fingerprint"] = hashlib.sha256(
        json.dumps(result.data, sort_keys=True, default=repr)
        .encode("utf-8")
    ).hexdigest()
    return mode


def run_target(settings):
    """Baseline + optimized runs of the fig4 target, with ratios."""
    label = f"{SYSTEM}/{FAMILY}"
    print(f"[{label}] baseline run (all knobs off) ...", flush=True)
    baseline = run_mode(settings, optimized=False)
    print(
        f"[{label}] baseline:  {baseline['wall_seconds']:.2f}s, "
        f"{baseline['plans_enumerated']} plans enumerated", flush=True,
    )
    print(f"[{label}] optimized run (defaults) ...", flush=True)
    optimized = run_mode(settings, optimized=True)
    print(
        f"[{label}] optimized: {optimized['wall_seconds']:.2f}s, "
        f"{optimized['plans_enumerated']} plans enumerated, "
        f"{optimized['plan_replays']} replays, "
        f"{optimized['subplan_hits']} subplan hits", flush=True,
    )
    identical = (
        optimized["figure_fingerprint"] == baseline["figure_fingerprint"]
        and optimized["costs_fingerprint"] == baseline["costs_fingerprint"]
    )
    return {
        "target": label,
        "system": SYSTEM,
        "family": FAMILY,
        "identical": identical,
        "speedup": round(
            baseline["wall_seconds"]
            / max(optimized["wall_seconds"], 1e-9), 3
        ),
        "plans_ratio": round(
            baseline["plans_enumerated"]
            / max(optimized["plans_enumerated"], 1), 3
        ),
        "optimized": optimized,
        "baseline": baseline,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_perf_multiquery.py",
        description="Benchmark cross-query optimization "
                    "(fig4 pipeline, knobs on vs off).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (tiny scale and workload)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="output path "
                             "(default results/BENCH_multiquery.json)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the mode's data scale factor")
    parser.add_argument("--workload-size", type=int, default=None,
                        help="override the mode's sampled workload size")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the sampling seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="override the worker-pool width (both modes)")
    args = parser.parse_args(argv)

    knobs = dict(SMOKE if args.smoke else FULL)
    for name in ("scale", "workload_size", "seed", "jobs"):
        value = getattr(args, name)
        if value is not None:
            knobs[name] = value
    settings = BenchSettings(
        scale=knobs["scale"],
        workload_size=knobs["workload_size"],
        seed=knobs["seed"],
        jobs=knobs["jobs"],
    )

    mode = "smoke" if args.smoke else "full"
    run_id = (
        f"multiquery-{mode}-s{knobs['scale']}-w{knobs['workload_size']}"
        f"-seed{knobs['seed']}-j{knobs['jobs']}"
    )
    print(f"run {run_id}", flush=True)
    document = {
        "schema": "repro.bench_multiquery/v1",
        "run": {
            "id": run_id,
            "smoke": bool(args.smoke),
            "scale": knobs["scale"],
            "workload_size": knobs["workload_size"],
            "seed": knobs["seed"],
            "jobs": knobs["jobs"],
        },
        "targets": [run_target(settings)],
    }
    obs.validate_bench_multiquery(document)

    output = pathlib.Path(
        args.output
        or pathlib.Path(__file__).parents[1] / "results"
        / "BENCH_multiquery.json"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    failed = False
    for target in document["targets"]:
        status = "identical" if target["identical"] else "MISMATCH"
        print(
            f"{target['target']}: speedup x{target['speedup']}, "
            f"plans enumerated x{target['plans_ratio']} fewer, {status}"
        )
        failed = failed or not target["identical"]
    if failed:
        print("FAILED: optimized and baseline fig4 outputs differ",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
