#!/usr/bin/env python3
"""Perf trajectory of sharded execution (``BENCH_sharding.json``).

Runs the full fig4 pipeline — System A on NREF3J: data generation,
workload generation, statistics, the 1C recommendation, index builds,
and the P/1C/R measurements — once with horizontal sharding off
(``REPRO_SHARDS=0``: one contiguous column array per table) and once
with it on (``REPRO_SHARDS=4``: hash-partitioned
:class:`~repro.storage.sharding.ShardedTable` storage, per-shard
statistics merged by exact value/count sketches, and shard-parallel
filter/semijoin evaluation over ``multiprocessing.shared_memory`` when
``REPRO_SHARD_JOBS`` > 1).  Each mode gets a fresh context, so the
deltas isolate the sharding layer.  The script fails unless the two
modes produce byte-identical figure text and measured cost curves —
sharding is a physical-layout knob, never a semantic one.

Besides wall time, each mode records the ``sharding.*`` counters
(shard scans, pool tasks, bytes placed in shared memory).  The
``speedup`` ratio is only meaningful on a multi-core runner with
``REPRO_SHARD_JOBS`` > 1; the ``cpus`` field in the run block records
what the numbers were captured on.

The output file matches :data:`repro.obs.schemas.BENCH_SHARDING_SCHEMA`
(prose version in ``docs/performance.md``) and is validated before it
is written.  CI runs the smoke mode on every push and uploads the file
as an artifact; the committed ``results/BENCH_sharding.json`` comes
from a full run (see ``EXPERIMENTS.md`` for the regeneration command).

Usage::

    python benchmarks/bench_perf_sharding.py           # full run (~minutes)
    python benchmarks/bench_perf_sharding.py --smoke   # CI-sized (~seconds)
    python benchmarks/bench_perf_sharding.py -o out.json --shard-jobs 2
"""

import argparse
import hashlib
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "src"))

from repro import obs                                    # noqa: E402
from repro.bench.context import (                        # noqa: E402
    BenchContext,
    BenchSettings,
)
from repro.bench.experiments import figure_cfc           # noqa: E402
from repro.storage.sharding import (                     # noqa: E402
    SHARD_JOBS_ENV,
    SHARDS_ENV,
)

FIGURE = "fig4"
SYSTEM, FAMILY = "A", "NREF3J"
SHARDS = 4

# Full-mode knobs match the other perf benchmarks so the trajectories
# are comparable; smoke mode shrinks data and workload until both modes
# fit in CI seconds while still exercising every sharded code path.
FULL = {"scale": 0.15, "workload_size": 100, "seed": 405, "jobs": 1}
SMOKE = {"scale": 0.05, "workload_size": 10, "seed": 405, "jobs": 1}

_COUNTER_KEYS = {
    "shards_scanned": "sharding.shards_scanned",
    "pool_tasks": "sharding.pool_tasks",
    "bytes_shared": "sharding.bytes_shared",
}


def default_shard_jobs():
    """Shard-worker default: one per core, capped at the shard count.

    On a single-core box this resolves to 1 (serial in-process shard
    loops — still exercises partitioned storage and merged statistics,
    just not the pool), so the benchmark never *slows down* the machine
    it runs on just to tick a counter.
    """
    return max(1, min(SHARDS, os.cpu_count() or 1))


def run_mode(settings, shards, shard_jobs):
    """One timed fig4 pipeline run; returns the mode's metrics block.

    A fresh :class:`BenchContext` per call keeps artifacts and live
    databases from leaking between modes: the timer covers the whole
    pipeline (data, workload, stats, recommendation, measurements), the
    stages sharding spans.
    """
    os.environ[SHARDS_ENV] = str(shards)
    os.environ[SHARD_JOBS_ENV] = str(shard_jobs)
    try:
        context = BenchContext(settings)
        with obs.recording() as recorder:
            start = time.perf_counter()
            result = figure_cfc(FIGURE, context)
            wall = time.perf_counter() - start
    finally:
        del os.environ[SHARDS_ENV]
        del os.environ[SHARD_JOBS_ENV]
    counters = recorder.metrics.snapshot().get("counters", {})
    mode = {
        "wall_seconds": round(wall, 4),
        "shards": shards,
        "shard_jobs": shard_jobs,
    }
    for field, counter in _COUNTER_KEYS.items():
        mode[field] = int(counters.get(counter, 0))
    mode["figure_fingerprint"] = hashlib.sha256(
        str(result).encode("utf-8")
    ).hexdigest()
    mode["costs_fingerprint"] = hashlib.sha256(
        json.dumps(result.data, sort_keys=True, default=repr)
        .encode("utf-8")
    ).hexdigest()
    return mode


def run_target(settings, shard_jobs):
    """Unsharded + sharded runs of the fig4 target, with derived ratios."""
    label = f"{SYSTEM}/{FAMILY}"
    print(f"[{label}] unsharded run ({SHARDS_ENV}=0) ...", flush=True)
    unsharded = run_mode(settings, shards=0, shard_jobs=1)
    print(
        f"[{label}] unsharded: {unsharded['wall_seconds']:.2f}s",
        flush=True,
    )
    print(
        f"[{label}] sharded run ({SHARDS_ENV}={SHARDS}, "
        f"{SHARD_JOBS_ENV}={shard_jobs}) ...", flush=True,
    )
    sharded = run_mode(settings, shards=SHARDS, shard_jobs=shard_jobs)
    print(
        f"[{label}] sharded:   {sharded['wall_seconds']:.2f}s, "
        f"{sharded['shards_scanned']} shard scans, "
        f"{sharded['pool_tasks']} pool tasks", flush=True,
    )
    identical = (
        sharded["figure_fingerprint"] == unsharded["figure_fingerprint"]
        and sharded["costs_fingerprint"] == unsharded["costs_fingerprint"]
    )
    return {
        "target": f"{SYSTEM}/{FAMILY}",
        "system": SYSTEM,
        "family": FAMILY,
        "identical": identical,
        "speedup": round(
            unsharded["wall_seconds"] / max(sharded["wall_seconds"], 1e-9),
            3,
        ),
        "sharded": sharded,
        "unsharded": unsharded,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_perf_sharding.py",
        description="Benchmark sharded columnar execution "
                    "(fig4 pipeline, REPRO_SHARDS on vs off).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (tiny scale and workload)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="output path "
                             "(default results/BENCH_sharding.json)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the mode's data scale factor")
    parser.add_argument("--workload-size", type=int, default=None,
                        help="override the mode's sampled workload size")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the sampling seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="override the measurement-pool width "
                             "(both modes)")
    parser.add_argument("--shard-jobs", type=int, default=None,
                        help="shard-worker pool width for the sharded "
                             "mode (default: one per core, capped at "
                             f"{SHARDS})")
    args = parser.parse_args(argv)

    knobs = dict(SMOKE if args.smoke else FULL)
    for name in ("scale", "workload_size", "seed", "jobs"):
        value = getattr(args, name)
        if value is not None:
            knobs[name] = value
    shard_jobs = args.shard_jobs or default_shard_jobs()
    settings = BenchSettings(
        scale=knobs["scale"],
        workload_size=knobs["workload_size"],
        seed=knobs["seed"],
        jobs=knobs["jobs"],
    )

    mode = "smoke" if args.smoke else "full"
    run_id = (
        f"sharding-{mode}-s{knobs['scale']}-w{knobs['workload_size']}"
        f"-seed{knobs['seed']}-j{knobs['jobs']}-sj{shard_jobs}"
    )
    print(f"run {run_id}", flush=True)
    document = {
        "schema": "repro.bench_sharding/v1",
        "run": {
            "id": run_id,
            "smoke": bool(args.smoke),
            "scale": knobs["scale"],
            "workload_size": knobs["workload_size"],
            "seed": knobs["seed"],
            "jobs": knobs["jobs"],
            "cpus": os.cpu_count() or 1,
        },
        "targets": [run_target(settings, shard_jobs)],
    }
    obs.validate_bench_sharding(document)

    output = pathlib.Path(
        args.output
        or pathlib.Path(__file__).parents[1] / "results"
        / "BENCH_sharding.json"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    failed = False
    for target in document["targets"]:
        status = "identical" if target["identical"] else "MISMATCH"
        print(
            f"{target['target']}: speedup x{target['speedup']} "
            f"({document['run']['cpus']} cpus, "
            f"{target['sharded']['shard_jobs']} shard jobs), {status}"
        )
        failed = failed or not target["identical"]
    if failed:
        print("FAILED: sharded and unsharded fig4 outputs differ",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
