"""Perf benchmark: what-if cost service on vs off (System B, NREF3J).

Times the same recommendation run twice — the plain serial loop
(``REPRO_WHATIF_CACHE=0`` semantics) and the full cost service (atomic
memoization, incremental environments, parallel candidate search,
upper-bound pruning) — each in a fresh context, and asserts the two
recommend byte-identical configurations.  ``scripts/bench_perf.py`` is
the scripted version that exports ``BENCH_whatif.json``; this file keeps
the comparison inside the pytest-benchmark harness.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_perf_whatif.py --benchmark-only -s

Scale knobs: ``REPRO_SCALE`` / ``REPRO_WORKLOAD_SIZE`` / ``REPRO_JOBS``
(defaults here are deliberately smaller than the figure benches' — the
run happens twice).
"""

import os

from repro.bench.context import FAMILY_DATASET, BenchContext, BenchSettings
from repro.recommender.whatif import WhatIfRecommender
from repro.runtime.session import MeasurementSession

SETTINGS = BenchSettings(
    scale=float(os.environ.get("REPRO_SCALE", "0.1")),
    workload_size=int(os.environ.get("REPRO_WORKLOAD_SIZE", "30")),
    seed=405,
    jobs=int(os.environ.get("REPRO_JOBS", "2")),
)

# Fingerprints of the runs that already happened this session, keyed by
# mode — the cached test asserts parity when the uncached one ran first.
_FINGERPRINTS = {}


def _setup(use_cache):
    """Fresh context per mode: nothing warm leaks between the two runs."""
    context = BenchContext(SETTINGS)
    db = context.database("B", FAMILY_DATASET["NREF3J"])
    workload = context.workload("B", "NREF3J")
    budget = context.space_budget(db)
    return (db, workload, budget, use_cache), {}


def _recommend(db, workload, budget, use_cache):
    with MeasurementSession(db, jobs=SETTINGS.jobs) as session:
        recommender = WhatIfRecommender(
            db, session=session, use_cache=use_cache
        )
        return recommender.recommend(workload, budget, name="NREF3J_R")


def test_whatif_service_off(benchmark):
    report = benchmark.pedantic(
        _recommend, setup=lambda: _setup(False), rounds=1, iterations=1
    )
    _FINGERPRINTS["off"] = report.configuration.fingerprint
    assert report.selected


def test_whatif_service_on(benchmark):
    report = benchmark.pedantic(
        _recommend, setup=lambda: _setup(True), rounds=1, iterations=1
    )
    _FINGERPRINTS["on"] = report.configuration.fingerprint
    assert report.selected
    if "off" in _FINGERPRINTS:
        assert _FINGERPRINTS["on"] == _FINGERPRINTS["off"]
