"""Section 4.3: SkTH3J timeout-aware workload totals.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_sec43_workload_totals.py --benchmark-only -s
"""

from repro.bench import experiments


def test_sec43(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.section_4_3(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
