"""Section 4.4: insertion cost and the 1C-vs-R break-even point.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_sec44_insertions.py --benchmark-only -s
"""

from repro.bench import experiments


def test_sec44(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.section_4_4(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
