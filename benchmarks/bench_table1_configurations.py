"""Table 1: sizes and build times of all 14 configurations.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_table1_configurations.py --benchmark-only -s
"""

from repro.bench import experiments


def test_tab1(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.table_1(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
