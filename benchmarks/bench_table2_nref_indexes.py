"""Table 2: index-width histogram of the NREF recommendations.

Part of the benchmark harness; run with::

    pytest benchmarks/bench_table2_nref_indexes.py --benchmark-only -s
"""

from repro.bench import experiments


def test_tab2(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.table_2(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
