"""Table 3: index-width histogram of the TPC-H recommendations (incl. views).

Part of the benchmark harness; run with::

    pytest benchmarks/bench_table3_tpch_indexes.py --benchmark-only -s
"""

from repro.bench import experiments


def test_tab3(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: experiments.table_3(ctx),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    assert result.text.strip()
