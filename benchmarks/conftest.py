"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file reproduces one table or figure of the paper.  The
heavy artifacts (databases, workloads, recommendations, measurements) are
cached in a session-wide :class:`BenchContext`, so the full suite builds
everything exactly once.  Every reproduced artifact is also written to
``results/<experiment>.txt``.

Scale knobs (see ``repro.bench.context``): ``REPRO_SCALE``,
``REPRO_WORKLOAD_SIZE``, ``REPRO_TIMEOUT``.
"""

import os
import pathlib

import pytest

from repro.bench.context import BenchContext

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def ctx():
    return BenchContext()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(result):
        path = RESULTS_DIR / f"{result.experiment}.txt"
        path.write_text(str(result) + "\n")
        print()
        print(str(result))
        return result

    return save


def pytest_report_header(config):
    del config
    return (
        f"repro benchmark harness: REPRO_SCALE="
        f"{os.environ.get('REPRO_SCALE', '1.0')} "
        f"REPRO_WORKLOAD_SIZE="
        f"{os.environ.get('REPRO_WORKLOAD_SIZE', '100')}"
    )
