"""Goal-driven tuning: a recommender that targets a QoS curve.

The paper's conclusion argues recommenders should accept *performance
goals* stated as constraints on the cumulative frequency curve (Section
2.2, Example 2) instead of minimizing a single total-cost number.  This
example runs :class:`repro.recommender.GoalDrivenRecommender` — our
implementation of that proposal — against a classic total-cost advisor on
the same workload, and shows the goal-driven one stopping as soon as the
estimated curve clears the goal.

    python examples/goal_driven_tuning.py [scale]
"""

import sys

from repro.analysis.cfc import CumulativeFrequencyCurve
from repro.analysis.goals import StepGoal
from repro.analysis.measurements import measure_workload
from repro.datagen.nref import load_nref_database
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.engine.systems import system_b
from repro.recommender.goal_driven import GoalDrivenRecommender
from repro.recommender.whatif import WhatIfRecommender
from repro.workload.nref_families import generate_nref3j
from repro.workload.sampling import sample_benchmark_workload


def report(db, workload, config, goal, label):
    db.apply_configuration(config)
    db.collect_statistics()
    measurement = measure_workload(db, workload, configuration=config.name)
    curve = CumulativeFrequencyCurve(measurement)
    status = "SATISFIED" if goal.satisfied_by(curve) else "missed"
    print(f"  {label:<22} goal {status:<10} "
          f"margin {goal.margin(curve):+.2f}  "
          f"median {curve.quantile(0.5):8.1f}s  "
          f"timeouts {measurement.timeout_count}  "
          f"indexes {len(config.secondary_indexes())}")


def main(scale=0.25):
    db = load_nref_database(system_b(), scale=scale)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    family = generate_nref3j(db)
    workload = sample_benchmark_workload(db, family, size=25)

    goal = StepGoal(steps=((5.0, 0.40), (30.0, 0.70), (1800.0, 0.95)))
    print("Goal: 40% of queries < 5s, 70% < 30s, 95% before timeout\n")

    p_config = primary_configuration(db.catalog, name="P")
    one_c = one_column_configuration(db.catalog, name="1C")
    budget = (
        db.estimated_configuration_bytes(one_c)
        - db.estimated_configuration_bytes(p_config)
    )

    # Classic advisor: minimizes estimated total cost under the budget.
    classic = WhatIfRecommender(db).recommend(
        workload, budget, name="R-total-cost"
    )

    # Goal-driven advisor: stops as soon as the estimated CFC clears G.
    db.apply_configuration(p_config)
    db.collect_statistics()
    goal_driven = GoalDrivenRecommender(db, goal).recommend_for_goal(
        workload, budget, name="R-goal"
    )
    print(f"goal-driven advisor: goal "
          f"{'met' if goal_driven.goal_met else 'NOT met'} after "
          f"{len(goal_driven.selected)} structures "
          f"({goal_driven.used_bytes / 2**20:.0f} MB); classic advisor "
          f"selected {len(classic.selected)} "
          f"({classic.used_bytes / 2**20:.0f} MB)\n")

    for label, config in (
        ("P", p_config),
        ("R (total cost)", classic.configuration),
        ("R (goal driven)", goal_driven.configuration),
        ("1C", one_c),
    ):
        report(db, workload, config, goal, label)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
