"""The paper's motivating scenario (Section 1.1): a biologist explores
the NREF protein database with ad-hoc join/aggregate queries.

Builds a (scaled) synthetic NREF instance, samples exploratory queries
from the NREF2J family, and contrasts the response-time distribution the
biologist experiences on the primary-keys-only configuration (P) against
the all-single-column-indexes configuration (1C) — the satisfied vs
frustrated "biologist-turned-database-user" of Figures 1-3.

    python examples/nref_exploration.py [scale] [n_queries]
"""

import sys

from repro.analysis.binning import time_histogram
from repro.analysis.cfc import CumulativeFrequencyCurve, log_grid
from repro.analysis.charts import render_cfc, render_histogram
from repro.analysis.goals import example2_goal
from repro.analysis.measurements import measure_workload
from repro.datagen.nref import load_nref_database
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.engine.systems import system_a
from repro.workload.nref_families import generate_nref2j
from repro.workload.sampling import sample_benchmark_workload


def main(scale=0.25, n_queries=30):
    print(f"Generating synthetic NREF at scale {scale} ...")
    db = load_nref_database(system_a(), scale=scale)
    for table in db.tables.values():
        print(f"  {table.name:<16} {table.row_count:>9,} rows")

    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    family = generate_nref2j(db)
    workload = sample_benchmark_workload(db, family, size=n_queries)
    print(f"\nNREF2J family: {len(family)} queries; "
          f"sampled workload: {len(workload)} queries")
    print("example query:\n ", workload.queries[0].sql, "\n")

    curves = []
    for make_config in (primary_configuration, one_column_configuration):
        config = make_config(db.catalog)
        db.apply_configuration(config)
        db.collect_statistics()
        measurement = measure_workload(db, workload)
        histogram = time_histogram(measurement)
        print(render_histogram(
            histogram,
            title=f"Configuration {config.name}: elapsed-time histogram "
                  f"({measurement.timeout_count} timeouts)",
        ))
        print()
        curves.append(CumulativeFrequencyCurve(measurement))

    grid = log_grid(1.0, 1800.0)
    print(render_cfc(curves, grid,
                     title="Cumulative frequency curves (Figure 3 style)"))

    goal = example2_goal()
    print("\nExample-2 goal (10% < 10s, 50% < 60s, 90% < timeout):")
    for curve in curves:
        verdict = "satisfied" if goal.satisfied_by(curve) else "NOT satisfied"
        print(f"  {curve.name}: {verdict} (margin {goal.margin(curve):+.2f})")


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    n_queries = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    main(scale, n_queries)
