"""Quickstart: build a database, run SQL, compare configurations.

Runs in a few seconds::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    Catalog,
    ColumnDef,
    Database,
    TableSchema,
    integer,
    one_column_configuration,
    primary_configuration,
    system_a,
    varchar,
)
from repro.optimizer.plans import explain


def build_database():
    """A two-table toy schema: users and their orders."""
    users = TableSchema(
        "users",
        [
            ColumnDef("uid", integer(), "id"),
            ColumnDef("city", varchar(12), "city"),
            ColumnDef("age", integer(), "age"),
        ],
        primary_key=("uid",),
    )
    orders = TableSchema(
        "orders",
        [
            ColumnDef("oid", integer(), "id"),
            ColumnDef("uid", integer(), "id"),
            ColumnDef("amount", integer(), "amount"),
        ],
        primary_key=("oid",),
    )
    db = Database(Catalog([users, orders]), system_a(), name="quickstart")

    rng = np.random.default_rng(42)
    n_users, n_orders = 20_000, 200_000
    cities = np.array(
        ["toronto", "montreal", "vancouver", "calgary", "ottawa"],
        dtype=object,
    )
    db.load_table(
        "users",
        {
            "uid": np.arange(n_users),
            "city": rng.choice(cities, n_users),
            "age": rng.integers(18, 80, n_users),
        },
    )
    db.load_table(
        "orders",
        {
            "oid": np.arange(n_orders),
            "uid": rng.integers(0, n_users, n_orders),
            "amount": rng.integers(1, 500, n_orders),
        },
    )
    db.collect_statistics()
    return db


def main():
    db = build_database()
    sql = (
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid AND u.age = 30 GROUP BY u.city"
    )

    print("Query:", sql, "\n")
    for make_config in (primary_configuration, one_column_configuration):
        config = make_config(db.catalog)
        report = db.apply_configuration(config)
        result = db.execute(sql)
        print(f"--- configuration {config.name} "
              f"(built in {report.build_seconds:.1f} virtual s, "
              f"{report.total_bytes / 2**20:.1f} MB) ---")
        print(explain(result.plan))
        print(f"rows: {sorted(result.rows())}")
        print(f"virtual elapsed: {result.elapsed:.2f} s\n")

    # The optimizer can also price a configuration *without* building it.
    hypothetical = one_column_configuration(db.catalog, name="what-if")
    db.apply_configuration(primary_configuration(db.catalog))
    print(f"E(q, P)        = {db.estimate(sql):8.2f} virtual s")
    print(f"H(q, 1C, P)    = "
          f"{db.estimate_hypothetical(sql, hypothetical):8.2f} virtual s")


if __name__ == "__main__":
    main()
