"""The tuning server end to end: two tenants, concurrent submissions.

Boots an in-process tuning server, creates sessions for two tenants,
submits the same NREF2J measurement for both *concurrently*, then
fetches and diffs the reports — demonstrating the service's isolation
contract: each tenant gets its own warm databases and artifact-cache
namespace (distinct keys, no shared state), yet the virtual-clock
engine makes their measurement results identical to the digit.

Runs in under a minute at the reduced scale::

    PYTHONPATH=src python examples/server_client.py
"""

import json
from concurrent.futures import ThreadPoolExecutor

from repro.server import TuningClient, TuningServer

SCALE = 0.05
WORKLOAD_SIZE = 10


def submit_and_wait(client, session_id, label):
    """Submit the NREF2J workload for one session and wait it out."""
    job = client.submit_workload(
        session_id, "NREF2J", configurations=["P", "1C", "R"]
    )
    print(f"[{label}] submitted job {job}")
    final = client.wait(
        job,
        timeout=300.0,
        on_event=lambda e: print(f"[{label}]   {e['name']}"),
    )
    if final["status"] != "succeeded":
        raise RuntimeError(f"[{label}] job failed: {final['error']}")
    return job, final["result"]


def main():
    with TuningServer(port=0, workers=2) as server:
        print(f"server listening on {server.base_url}\n")
        client = TuningClient(server.base_url)

        acme = client.create_session(
            "acme", scale=SCALE, workload_size=WORKLOAD_SIZE
        )
        biotech = client.create_session(
            "biotech", scale=SCALE, workload_size=WORKLOAD_SIZE
        )
        print(f"sessions: acme={acme['id']}  biotech={biotech['id']}\n")

        # Both tenants submit the same workload at the same time; the
        # bounded queue runs them through the shared worker pool.
        with ThreadPoolExecutor(max_workers=2) as pool:
            acme_future = pool.submit(
                submit_and_wait, client, acme["id"], "acme"
            )
            biotech_future = pool.submit(
                submit_and_wait, client, biotech["id"], "biotech"
            )
            acme_job, acme_result = acme_future.result()
            biotech_job, biotech_result = biotech_future.result()

        print("\nmeasured virtual seconds per configuration:")
        for config in ("P", "1C", "R"):
            a = acme_result["measured"][config]
            b = biotech_result["measured"][config]
            marker = "==" if a == b else "!="
            print(
                f"  {config:>2}: acme {a['total_seconds']:12.3f}s  "
                f"{marker}  biotech {b['total_seconds']:12.3f}s"
            )
        assert acme_result["measured"] == biotech_result["measured"], \
            "tenants must measure identical results"

        # The reports agree wherever determinism promises agreement
        # (measurements, fingerprints, metrics) — while each tenant's
        # work ran in its own session (isolated caches, own databases).
        acme_report = json.loads(client.fetch_report(acme_job))
        biotech_report = json.loads(client.fetch_report(biotech_job))
        same = acme_report["measurements"] == \
            biotech_report["measurements"]
        print(f"\nper-query measurement blocks identical: {same}")
        assert same

        metrics = client.metrics()
        print(
            f"server metrics: {metrics['jobs']['completed']} jobs "
            f"completed across {metrics['sessions']['active']} sessions"
        )


if __name__ == "__main__":
    main()
