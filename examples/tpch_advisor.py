"""Run the what-if index advisor on a skewed TPC-H database.

Reproduces the paper's advisor loop on SkTH3Js (Section 4.3): sample a
workload, let System C's recommender pick indexes and materialized views
under the ``size(1C) - size(P)`` space budget, then measure how the
recommendation actually performs against the P and 1C configurations.

    python examples/tpch_advisor.py [scale] [n_queries]
"""

import sys

from repro.analysis.cfc import CumulativeFrequencyCurve, log_grid
from repro.analysis.charts import render_cfc, render_table
from repro.analysis.goals import improvement_ratio
from repro.analysis.measurements import measure_workload
from repro.common.errors import RecommenderGaveUp
from repro.datagen.tpch import load_tpch_database
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.engine.systems import system_c
from repro.recommender.whatif import WhatIfRecommender
from repro.workload.sampling import sample_benchmark_workload
from repro.workload.tpch_families import generate_skth3js


def main(scale=0.25, n_queries=25):
    print(f"Generating skewed TPC-H (Zipf z=1) at scale {scale} ...")
    db = load_tpch_database(system_c(), scale=scale, zipf=1.0)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))

    family = generate_skth3js(db)
    workload = sample_benchmark_workload(db, family, size=n_queries)
    print(f"SkTH3Js family: {len(family)} queries; using {len(workload)}")

    p_config = primary_configuration(db.catalog, name="P")
    one_c = one_column_configuration(db.catalog, name="1C")
    budget = (
        db.estimated_configuration_bytes(one_c)
        - db.estimated_configuration_bytes(p_config)
    )
    print(f"space budget (size(1C) - size(P)): {budget / 2**20:.1f} MB\n")

    recommender = WhatIfRecommender(db)
    try:
        report = recommender.recommend(workload, budget, name="R")
    except RecommenderGaveUp as failure:
        print(f"recommender gave up: {failure}")
        return
    print("Recommendation:")
    for ix in report.configuration.secondary_indexes():
        print(f"  index  {ix.table}({', '.join(ix.columns)})")
    for view in report.configuration.views:
        cols = ", ".join(c.column for c in view.group_columns)
        print(f"  matview {'+'.join(view.tables)} GROUP BY {cols}")
    print(f"  candidates considered: {report.candidate_count}; "
          f"estimated improvement: {report.estimated_improvement:.2f}x; "
          f"space used: {report.used_bytes / 2**20:.1f} MB\n")

    curves, totals = [], {}
    for config in (p_config, one_c, report.configuration.renamed("R")):
        db.apply_configuration(config)
        db.collect_statistics()
        measurement = measure_workload(db, workload, configuration=config.name)
        curves.append(CumulativeFrequencyCurve(measurement))
        totals[config.name] = measurement

    print(render_cfc(curves, log_grid(1.0, 1800.0),
                     title="Cumulative frequency curves"))
    rows = [
        (name, f"{m.lower_bound_total():.0f}", m.timeout_count)
        for name, m in totals.items()
    ]
    print()
    print(render_table(
        ["config", "lower-bound total (s)", "timeouts"], rows,
        title="Timeout-aware workload totals (Section 4.3 style)",
    ))
    if "R" in totals and "1C" in totals:
        ratio = improvement_ratio(totals["R"], totals["1C"])
        print(f"\n1C vs R conservative improvement: {ratio:.1f}x")


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    n_queries = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    main(scale, n_queries)
