"""Weighted workloads: queries as a bag with frequencies.

Section 2.2 of the paper defines a workload "as a bag, in which case the
repetitions can model queries with a higher frequency or weight".  This
example shows how weights change both the *evaluation* (weighted CFC
curves and totals) and the *recommendation* (the advisor indexes what the
frequent queries need).

    python examples/weighted_workloads.py [scale]
"""

import sys

from repro.analysis.cfc import CumulativeFrequencyCurve, log_grid
from repro.analysis.charts import render_cfc
from repro.analysis.measurements import measure_workload
from repro.datagen.tpch import load_tpch_database
from repro.engine.configuration import primary_configuration
from repro.engine.systems import system_c
from repro.recommender.whatif import WhatIfRecommender
from repro.workload.workload import Workload, make_instance


def build_workload(db, heavy_on, seed_values):
    """Two query shapes; ``heavy_on`` gets weight 20, the other weight 1."""
    queries = []
    for value in seed_values:
        queries.append(
            make_instance(
                f"SELECT t.ps_availqty, COUNT(*) FROM orders r, "
                f"lineitem s, partsupp t "
                f"WHERE r.o_orderkey = s.l_orderkey "
                f"AND s.l_partkey = t.ps_partkey "
                f"AND s.l_suppkey = {value} GROUP BY t.ps_availqty",
                "demo",
                weight=20.0 if heavy_on == "suppkey" else 1.0,
                v=value,
            )
        )
        queries.append(
            make_instance(
                f"SELECT t.ps_availqty, COUNT(*) FROM orders r, "
                f"lineitem s, partsupp t "
                f"WHERE r.o_orderkey = s.l_orderkey "
                f"AND s.l_partkey = t.ps_partkey "
                f"AND s.l_quantity = {value % 50 + 1} "
                f"GROUP BY t.ps_availqty",
                "demo",
                weight=20.0 if heavy_on == "quantity" else 1.0,
                v=value,
            )
        )
    return Workload("demo", queries)


def main(scale=0.2):
    db = load_tpch_database(system_c(), scale=scale, zipf=1.0)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    budget = 64 * 2**20

    for heavy_on in ("suppkey", "quantity"):
        workload = build_workload(db, heavy_on, (11, 57, 103))
        report = WhatIfRecommender(db).recommend(
            workload, budget, name=f"R-{heavy_on}"
        )
        structures = [
            f"ix {ix.table}({','.join(ix.columns)})"
            for ix in report.configuration.secondary_indexes()
        ] + [f"mv {v.name}" for v in report.configuration.views]
        print(f"weight on {heavy_on}-queries -> advisor picks:")
        for s in structures[:4]:
            print(f"    {s}")
        db.apply_configuration(primary_configuration(db.catalog, name="P"))
        db.collect_statistics()

    # Weighted evaluation: the same measurements, two weightings.
    workload = build_workload(db, "suppkey", (11, 57, 103))
    measurement = measure_workload(db, workload, configuration="P")
    flat = measure_workload(
        db,
        Workload("flat", [
            make_instance(q.sql, "flat") for q in workload
        ]),
        configuration="P-flat",
    )
    grid = log_grid(1.0, 1800.0)
    print()
    print(render_cfc(
        [CumulativeFrequencyCurve(measurement),
         CumulativeFrequencyCurve(flat)],
        grid,
        title="Same elapsed times, weighted vs flat CFC",
    ))
    print(f"\nweighted lower-bound total: "
          f"{measurement.lower_bound_total():.0f} s; "
          f"flat: {flat.lower_bound_total():.0f} s")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
