#!/usr/bin/env python3
"""Perf trajectory of the what-if cost service (``BENCH_whatif.json``).

Times the recommendation runs the service was built to accelerate —
System B on NREF3J and System C on SkTH3J — once with the cost service
on (atomic memoization, incremental environments, candidate-parallel
search, upper-bound pruning) and once with it off
(``REPRO_WHATIF_CACHE=0`` semantics: the plain pre-service serial loop).
Both runs use a fresh context and the same worker-pool width, so the
deltas isolate the service.  The script fails unless the two modes
recommend byte-identical configurations.

The output file matches :data:`repro.obs.schemas.BENCH_WHATIF_SCHEMA`
(prose version in ``docs/performance.md``) and is validated before it is
written.  CI runs the smoke mode on every push and uploads the file as
an artifact; the committed ``results/BENCH_whatif.json`` comes from a
full run (see ``EXPERIMENTS.md`` for the regeneration command).

Usage::

    python scripts/bench_perf.py                 # full run (~minutes)
    python scripts/bench_perf.py --smoke         # CI-sized run (~seconds)
    python scripts/bench_perf.py -o out.json --jobs 4
"""

import argparse
import cProfile
import json
import pathlib
import pstats
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "src"))

from repro import obs                                    # noqa: E402
from repro.bench.context import (                        # noqa: E402
    FAMILY_DATASET,
    BenchContext,
    BenchSettings,
)
from repro.recommender.whatif import WhatIfRecommender   # noqa: E402
from repro.runtime.session import MeasurementSession     # noqa: E402

TARGETS = (("B", "NREF3J"), ("C", "SkTH3J"))

# Full-mode knobs reproduce the scale the figure benches run at; smoke
# mode shrinks data and workload until the whole matrix (2 targets x 2
# modes) fits in CI seconds while still exercising every code path.
FULL = {"scale": 0.4, "workload_size": 100, "seed": 405, "jobs": 4}
SMOKE = {"scale": 0.05, "workload_size": 10, "seed": 405, "jobs": 2}

_COUNTER_KEYS = {
    "what_if_calls": "optimizer.what_if_calls",
    "plans_enumerated": "optimizer.plans_enumerated",
    "env_builds": "optimizer.hypothetical_env_builds",
    "env_delta_builds": "optimizer.env_delta_builds",
    "candidates_pruned": "recommender.candidates_pruned",
    "whatif_cache_hits": "recommender.whatif_cache.hits",
    "whatif_cache_misses": "recommender.whatif_cache.misses",
}


def run_mode(system_name, family, settings, cached, repeat=1):
    """Timed recommendation run(s); returns the mode's metrics block.

    A fresh :class:`BenchContext` per call keeps plan caches, artifact
    caches, and live databases from leaking between modes: every run
    rebuilds its database and workload (untimed) and then times only
    ``recommend``.  With ``repeat > 1`` the whole run repeats that many
    times; ``wall_seconds`` is then the median wall time, with the
    min/max recorded alongside, so committed numbers stop being
    single-run point estimates.
    """
    walls = []
    for _ in range(max(repeat, 1)):
        context = BenchContext(settings)
        db = context.database(system_name, FAMILY_DATASET[family])
        workload = context.workload(system_name, family)
        budget = context.space_budget(db)
        with obs.recording() as recorder:
            with MeasurementSession(db, jobs=settings.jobs) as session:
                recommender = WhatIfRecommender(
                    db, session=session, use_cache=cached
                )
                start = time.perf_counter()
                report = recommender.recommend(
                    workload, budget, name=f"{family}_R"
                )
                walls.append(time.perf_counter() - start)
    counters = recorder.metrics.snapshot().get("counters", {})
    mode = {"wall_seconds": round(statistics.median(walls), 4)}
    if len(walls) > 1:
        mode["wall_seconds_min"] = round(min(walls), 4)
        mode["wall_seconds_max"] = round(max(walls), 4)
    for field, counter in _COUNTER_KEYS.items():
        mode[field] = int(counters.get(counter, 0))
    lookups = mode["whatif_cache_hits"] + mode["whatif_cache_misses"]
    mode["whatif_cache_hit_rate"] = round(
        mode["whatif_cache_hits"] / lookups if lookups else 0.0, 4
    )
    mode["fingerprint"] = report.configuration.fingerprint
    return mode


def run_target(system_name, family, settings, repeat=1):
    """Cached + uncached runs of one target, with derived ratios."""
    label = f"{system_name}/{family}"
    print(f"[{label}] uncached run ...", flush=True)
    uncached = run_mode(system_name, family, settings, cached=False,
                        repeat=repeat)
    print(
        f"[{label}] uncached: {uncached['wall_seconds']:.2f}s, "
        f"{uncached['plans_enumerated']} plans", flush=True,
    )
    print(f"[{label}] cached run ...", flush=True)
    cached = run_mode(system_name, family, settings, cached=True,
                      repeat=repeat)
    print(
        f"[{label}] cached:   {cached['wall_seconds']:.2f}s, "
        f"{cached['plans_enumerated']} plans, "
        f"hit rate {cached['whatif_cache_hit_rate']:.2f}", flush=True,
    )
    return {
        "target": label,
        "system": system_name,
        "family": family,
        "identical": cached["fingerprint"] == uncached["fingerprint"],
        "speedup": round(
            uncached["wall_seconds"] / max(cached["wall_seconds"], 1e-9), 3
        ),
        "plans_ratio": round(
            uncached["plans_enumerated"]
            / max(cached["plans_enumerated"], 1), 3
        ),
        "cached": cached,
        "uncached": uncached,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_perf.py",
        description="Benchmark the what-if cost service "
                    "(cached vs uncached recommendation runs).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (tiny scale and workload)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="output path (default results/BENCH_whatif.json)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the mode's data scale factor")
    parser.add_argument("--workload-size", type=int, default=None,
                        help="override the mode's sampled workload size")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the sampling seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="override the worker-pool width (both modes)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run each mode N times and report the median "
                             "wall time (min/max recorded in the JSON); "
                             "default 1")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the benchmark runs and print the "
                             "top 25 functions by cumulative AND by "
                             "per-call (tottime) time")
    parser.add_argument("--profile-output", default=None, metavar="FILE",
                        help="also dump the raw profile stats to FILE "
                             "(pstats format, for snakeviz/pstats; "
                             "implies --profile)")
    args = parser.parse_args(argv)
    if args.profile_output:
        args.profile = True
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    knobs = dict(SMOKE if args.smoke else FULL)
    for name in ("scale", "workload_size", "seed", "jobs"):
        value = getattr(args, name)
        if value is not None:
            knobs[name] = value
    settings = BenchSettings(
        scale=knobs["scale"],
        workload_size=knobs["workload_size"],
        seed=knobs["seed"],
        jobs=knobs["jobs"],
    )

    mode = "smoke" if args.smoke else "full"
    run_id = (
        f"whatif-{mode}-s{knobs['scale']}-w{knobs['workload_size']}"
        f"-seed{knobs['seed']}-j{knobs['jobs']}"
    )
    print(f"run {run_id}", flush=True)
    document = {
        "schema": "repro.bench_whatif/v1",
        "run": {
            "id": run_id,
            "smoke": bool(args.smoke),
            "scale": knobs["scale"],
            "workload_size": knobs["workload_size"],
            "seed": knobs["seed"],
            "jobs": knobs["jobs"],
        },
    }
    if args.repeat > 1:
        document["run"]["repeat"] = args.repeat
    profiler = cProfile.Profile() if args.profile else None
    if profiler is not None:
        profiler.enable()
    document["targets"] = [
        run_target(system_name, family, settings, repeat=args.repeat)
        for system_name, family in TARGETS
    ]
    if profiler is not None:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        # Cumulative answers "which phase is slow"; tottime answers
        # "which function body burns the CPU" — the hot-path evidence
        # the cross-query optimizations were gated on.
        stats.sort_stats("cumulative").print_stats(25)
        stats.sort_stats("tottime").print_stats(25)
        if args.profile_output:
            stats.dump_stats(args.profile_output)
            print(f"wrote profile stats to {args.profile_output}")
    obs.validate_bench_whatif(document)

    output = pathlib.Path(
        args.output
        or pathlib.Path(__file__).parents[1] / "results" / "BENCH_whatif.json"
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    failed = False
    for target in document["targets"]:
        status = "identical" if target["identical"] else "MISMATCH"
        print(
            f"{target['target']}: speedup x{target['speedup']}, "
            f"plans x{target['plans_ratio']} fewer, {status}"
        )
        failed = failed or not target["identical"]
    if failed:
        print("FAILED: cached and uncached recommendations differ",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
