#!/usr/bin/env python3
"""Check that the docs form a sound, fully connected link graph.

Three classes of failure, each one line on stderr:

* **broken links** — a relative ``[text](target)`` whose target does not
  exist on disk (or escapes the repo);
* **missing anchors** — a ``#fragment`` that names no heading in the
  target markdown file.  Anchors follow GitHub slug rules, including the
  ``-1``/``-2`` suffixes of duplicated headings, and explicit HTML
  ``<a id="...">``/``<a name="...">`` anchors are honored;
* **orphan pages** — a ``docs/*.md`` file no link chain starting at
  ``README.md`` can reach.  A page nothing points to is dead weight:
  readers cannot discover it and it silently rots.

Scans ``README.md``, ``EXPERIMENTS.md``, ``DESIGN.md``, ``CHANGES.md``
and every ``docs/*.md``.  External links (``http(s)://``, ``mailto:``)
are skipped.

Usage::

    python scripts/check_docs_links.py [repo_root]

Exit status 0 when every link resolves and no page is orphaned, 1
otherwise.
"""

import pathlib
import re
import sys
from collections import deque

LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
HTML_ANCHOR_RE = re.compile(
    r"""<a\s+(?:id|name)=["']([^"']+)["']""", re.IGNORECASE
)
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def heading_anchors(markdown_text):
    """GitHub-style anchor slugs available in a markdown string.

    Covers heading slugs (lowercased, punctuation stripped, spaces to
    hyphens), the ``-1``/``-2``… suffixes GitHub appends when the same
    heading text occurs more than once, and explicit ``<a id=...>`` /
    ``<a name=...>`` HTML anchors.
    """
    anchors = set()
    seen = {}
    for heading in HEADING_RE.findall(markdown_text):
        text = re.sub(r"[`*_]", "", heading).strip().lower()
        slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    anchors.update(HTML_ANCHOR_RE.findall(markdown_text))
    return anchors


def iter_doc_files(root):
    for name in ("README.md", "EXPERIMENTS.md", "DESIGN.md", "CHANGES.md"):
        path = root / name
        if path.exists():
            yield path
    yield from sorted((root / "docs").glob("*.md"))


def markdown_targets(path, root):
    """Resolved in-repo markdown files that ``path`` links to."""
    targets = set()
    for match in LINK_RE.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        target_path, _, _ = target.partition("#")
        if not target_path:
            continue
        resolved = (path.parent / target_path).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            continue
        if resolved.suffix == ".md" and resolved.exists():
            targets.add(resolved)
    return targets


def find_orphans(root):
    """``docs/*.md`` files unreachable from ``README.md`` by links.

    Walks the link graph breadth-first from the README (following only
    in-repo markdown links); every docs page must be on some path from
    it — directly, or through another reachable page.
    """
    readme = root / "README.md"
    if not readme.exists():
        return []
    reachable = set()
    queue = deque([readme.resolve()])
    while queue:
        page = queue.popleft()
        if page in reachable:
            continue
        reachable.add(page)
        queue.extend(markdown_targets(page, root))
    return [
        page
        for page in sorted((root / "docs").glob("*.md"))
        if page.resolve() not in reachable
    ]


def check_file(path, root):
    """Broken-link messages for one markdown file (empty when clean)."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        target_path, _, fragment = target.partition("#")
        if not target_path:                     # same-file anchor
            resolved = path
        else:
            resolved = (path.parent / target_path).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                problems.append(f"{path}: link escapes the repo: {target}")
                continue
            if not resolved.exists():
                problems.append(f"{path}: broken link: {target}")
                continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved.read_text()):
                problems.append(
                    f"{path}: missing anchor #{fragment} in "
                    f"{resolved.name} (link: {target})"
                )
    return problems


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else pathlib.Path(__file__).parents[1]
    problems = []
    checked = 0
    for path in iter_doc_files(root):
        checked += 1
        problems.extend(check_file(path, root))
    for orphan in find_orphans(root):
        problems.append(
            f"{orphan}: orphan page — unreachable from README.md "
            f"(add a link from the README or another linked page)"
        )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"docs links OK ({checked} files checked, no orphans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
