#!/usr/bin/env python3
"""Check that relative markdown links in the docs resolve.

Scans ``README.md``, ``EXPERIMENTS.md``, ``DESIGN.md``, ``CHANGES.md``
and every ``docs/*.md`` for inline links ``[text](target)``, and fails
if a relative target does not exist on disk. External links
(``http(s)://``, ``mailto:``) are skipped; ``#fragment`` anchors are
checked against the target file's headings when the file is markdown.

Usage::

    python scripts/check_docs_links.py [repo_root]

Exit status 0 when every link resolves, 1 otherwise (one line per
broken link).
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def heading_anchors(markdown_text):
    """GitHub-style anchor slugs of every heading in a markdown string."""
    anchors = set()
    for heading in HEADING_RE.findall(markdown_text):
        text = re.sub(r"[`*_]", "", heading).strip().lower()
        slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
        anchors.add(slug)
    return anchors


def iter_doc_files(root):
    for name in ("README.md", "EXPERIMENTS.md", "DESIGN.md", "CHANGES.md"):
        path = root / name
        if path.exists():
            yield path
    yield from sorted((root / "docs").glob("*.md"))


def check_file(path, root):
    """Broken-link messages for one markdown file (empty when clean)."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        target_path, _, fragment = target.partition("#")
        if not target_path:                     # same-file anchor
            resolved = path
        else:
            resolved = (path.parent / target_path).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                problems.append(f"{path}: link escapes the repo: {target}")
                continue
            if not resolved.exists():
                problems.append(f"{path}: broken link: {target}")
                continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved.read_text()):
                problems.append(
                    f"{path}: missing anchor #{fragment} in "
                    f"{resolved.name} (link: {target})"
                )
    return problems


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else pathlib.Path(__file__).parents[1]
    problems = []
    checked = 0
    for path in iter_doc_files(root):
        checked += 1
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"docs links OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
