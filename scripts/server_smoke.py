#!/usr/bin/env python3
"""CI smoke for the tuning server: boot, drive, verify report parity.

Boots a ``python -m repro.server``-equivalent server in process, drives
it with the stdlib client (create a session, submit the fig3 workload,
poll to completion, fetch the report), writes the served report to
disk for schema validation, and — when ``--compare`` points at a CLI
``--report`` file of the same run — byte-compares the two canonical
serializations (wall-clock stage seconds zeroed; everything else must
match to the byte).

Usage::

    PYTHONPATH=src python -m repro.bench run fig3 --scale 0.05 \
        --workload-size 10 --jobs 1 --report cli-report.json
    PYTHONPATH=src python scripts/server_smoke.py --scale 0.05 \
        --workload-size 10 --jobs 1 --compare cli-report.json

Exit status 0 on success; any failure (job error, schema mismatch,
parity break) exits non-zero with a message.
"""

import argparse
import contextlib
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs                                    # noqa: E402
from repro.server import TuningClient, TuningServer      # noqa: E402


@contextlib.contextmanager
def spawned_server(workers):
    """Boot the real ``python -m repro.server`` as a subprocess.

    Yields the base URL parsed from the server's startup line; the
    process is terminated on exit.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO_ROOT,
    )
    try:
        line = process.stdout.readline()
        if "listening on " not in line:
            raise RuntimeError(
                f"unexpected server startup output: {line!r}"
            )
        yield line.rsplit("listening on ", 1)[1].strip()
    finally:
        process.terminate()
        process.wait(timeout=10.0)


def canonical_bytes(report):
    """A report's canonical serialization (write_report layout)."""
    return (
        json.dumps(obs.canonicalize_run_report(report),
                   indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="fig3")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--workload-size", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="job-completion deadline in seconds")
    parser.add_argument("--report-out", default="served-report.json",
                        help="write the served (raw) report here")
    parser.add_argument("--compare", default=None, metavar="FILE",
                        help="CLI --report file to byte-compare "
                             "against (canonical forms)")
    parser.add_argument("--spawn", action="store_true",
                        help="boot the real 'python -m repro.server' "
                             "subprocess instead of an in-process "
                             "server")
    args = parser.parse_args(argv)

    if args.spawn:
        scope = spawned_server(workers=2)
    else:
        scope = TuningServer(port=0, workers=2)
    with scope as booted:
        base_url = booted if isinstance(booted, str) else booted.base_url
        print(f"server up at {base_url}"
              + (" (spawned subprocess)" if args.spawn else ""))
        client = TuningClient(base_url)
        session = client.create_session(
            "ci", scale=args.scale, workload_size=args.workload_size,
            jobs=args.jobs,
        )
        print(f"session {session['id']} (tenant {session['tenant']})")
        job = client.submit_experiment(session["id"], args.experiment)
        print(f"job {job} submitted; polling...")
        events = []
        final = client.wait(job, timeout=args.timeout,
                            on_event=lambda e: events.append(e))
        if final["status"] != "succeeded":
            print(f"FAIL: job {job} {final['status']}: "
                  f"{final['error']}", file=sys.stderr)
            return 1
        print(f"job {job} succeeded ({len(events)} progress events)")
        served_raw = client.fetch_report(job)
        served_canonical = client.fetch_report(job, canonical=True)

    document = json.loads(served_raw)
    obs.validate_run_report(document)
    pathlib.Path(args.report_out).write_bytes(served_raw)
    print(f"served report validated -> {args.report_out}")

    if canonical_bytes(document) != served_canonical:
        print("FAIL: served ?canonical=1 body does not match the "
              "canonicalization of the raw report", file=sys.stderr)
        return 1

    if args.compare:
        cli_report = json.loads(
            pathlib.Path(args.compare).read_text(encoding="utf-8")
        )
        expected = canonical_bytes(cli_report)
        if served_canonical != expected:
            print(f"FAIL: served canonical report differs from "
                  f"{args.compare}", file=sys.stderr)
            return 1
        print(f"canonical parity OK: served report is byte-identical "
              f"to {args.compare} ({len(expected)} bytes)")

    print("server smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
