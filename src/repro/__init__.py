"""repro — reproduction of *Goals and Benchmarks for Autonomic
Configuration Recommenders* (Consens, Barbosa, Teisanu, Mignet — SIGMOD
2005).

The package bundles:

* a self-contained relational engine (storage, B+-tree indexes,
  statistics, cost-based optimizer with what-if mode, vectorized executor
  under a virtual clock, materialized views);
* the paper's three benchmark databases (synthetic NREF, TPC-H uniform,
  TPC-H with Zipf skew) and five query families (NREF2J, NREF3J, SkTH3J,
  SkTH3Js, UnTH3J);
* AutoAdmin-style configuration recommenders parameterized as the paper's
  Systems A, B and C, plus the P and 1C reference configurations;
* the evaluation framework: cumulative frequency curves, performance
  goals, improvement ratios, and one experiment driver per table/figure;
* a measurement runtime (:mod:`repro.runtime`): parallel measurement
  sessions (``REPRO_JOBS``), fingerprint-keyed plan/estimate caching,
  and a persistent artifact store (``REPRO_CACHE_DIR``).
"""

from .catalog.catalog import Catalog
from .catalog.schema import ColumnDef, ForeignKey, TableSchema
from .engine.configuration import (
    Configuration,
    one_column_configuration,
    primary_configuration,
)
from .engine.database import Database, DEFAULT_TIMEOUT, QueryResult
from .engine.systems import by_name as system_by_name
from .engine.systems import system_a, system_b, system_c
from .index.definition import IndexDefinition
from .runtime import ArtifactCache, MeasurementSession
from .sql.parser import parse
from .storage.types import date, float_, integer, varchar

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "Catalog",
    "ColumnDef",
    "Configuration",
    "Database",
    "DEFAULT_TIMEOUT",
    "ForeignKey",
    "IndexDefinition",
    "MeasurementSession",
    "QueryResult",
    "TableSchema",
    "date",
    "float_",
    "integer",
    "one_column_configuration",
    "parse",
    "primary_configuration",
    "system_a",
    "system_b",
    "system_c",
    "system_by_name",
    "varchar",
]
