"""The paper's evaluation framework: curves, goals, ratios, reports."""

from .binning import Histogram, ratio_histogram, time_histogram
from .cfc import CumulativeFrequencyCurve, crossover, dominates, log_grid
from .goals import StepGoal, example2_goal, improvement_ratio
from .measurements import (
    WorkloadMeasurement,
    estimate_workload,
    measure_workload,
)
from .ratios import air, eir, hir, ratio_summary

__all__ = [
    "CumulativeFrequencyCurve", "Histogram", "StepGoal",
    "WorkloadMeasurement", "air", "crossover", "dominates", "eir",
    "estimate_workload", "example2_goal", "hir", "improvement_ratio",
    "log_grid", "measure_workload", "ratio_histogram", "ratio_summary",
    "time_histogram",
]
