"""Log-scale histogram binning with the paper's ``t_out`` bin.

Figures 1, 2 and 11 are histograms over logarithmic bins; queries that
hit the timeout are collected in a single trailing ``t_out`` bin.
"""

import math
from dataclasses import dataclass

import numpy as np

TIMEOUT_LABEL = "t_out"


@dataclass
class Histogram:
    """A log-binned histogram: edge labels, counts, cumulative fractions."""

    labels: list
    counts: np.ndarray
    total: int

    def cumulative(self):
        """Cumulative relative frequencies per bin (the figures' line)."""
        if self.total == 0:
            return np.zeros(len(self.counts))
        return np.cumsum(self.counts) / self.total

    def rows(self):
        """(label, count, cumulative%) rows for report tables."""
        cum = self.cumulative()
        return [
            (label, int(count), round(100 * c, 1))
            for label, count, c in zip(self.labels, self.counts, cum)
        ]


def _bin_label(exponent, per_decade):
    value = 10 ** (exponent / per_decade)
    if value >= 100 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.1f}"


def time_histogram(measurement, lo=1.0, per_decade=2):
    """Histogram of elapsed times in half-decade bins plus ``t_out``.

    The bin labeled ``x`` counts queries with elapsed time in
    ``(x / 10^(1/per_decade), x]``; the first bin is open below.
    """
    hi = measurement.timeout
    lo_e = int(math.floor(math.log10(lo) * per_decade))
    hi_e = int(math.ceil(math.log10(max(hi, lo * 10)) * per_decade))
    edges = [10 ** (e / per_decade) for e in range(lo_e, hi_e + 1)]
    labels = [_bin_label(e, per_decade) for e in range(lo_e, hi_e + 1)]

    done = measurement.elapsed[~measurement.timed_out]
    counts = np.zeros(len(edges) + 1, dtype=np.int64)
    idx = np.searchsorted(edges, done, side="left")
    for i in idx:
        counts[min(i, len(edges) - 1)] += 1
    counts[-1] = measurement.timeout_count
    return Histogram(
        labels=labels + [TIMEOUT_LABEL],
        counts=np.append(counts[: len(edges)], counts[-1]),
        total=len(measurement),
    )


def ratio_histogram(ratios, per_decade=1, lo_exp=-3, hi_exp=3):
    """Histogram of improvement ratios over decade bins (Figure 11).

    Ratios below ``10**lo_exp`` or above ``10**hi_exp`` clamp into the
    edge bins.
    """
    ratios = np.asarray(ratios, dtype=np.float64)
    ratios = ratios[np.isfinite(ratios) & (ratios > 0)]
    exps = np.clip(
        np.round(np.log10(ratios) * per_decade), lo_exp * per_decade,
        hi_exp * per_decade,
    ).astype(int)
    labels, counts = [], []
    for e in range(lo_exp * per_decade, hi_exp * per_decade + 1):
        labels.append(_bin_label(e, per_decade))
        counts.append(int(np.sum(exps == e)))
    return Histogram(labels=labels, counts=np.array(counts), total=len(ratios))
