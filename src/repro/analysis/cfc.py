"""Cumulative frequency curves (the paper's central analysis device).

``CFC_C(x) = |{q : A(q, C) < x}| / |W|`` — Section 2.2.  Configurations
are compared by their curves; a curve that sits above another everywhere
*first-order stochastically dominates* it (the paper's footnote on how
the curves support decision making).
"""

import numpy as np


class CumulativeFrequencyCurve:
    """The empirical CFC of one measurement.

    Weighted measurements (workloads as bags, Section 2.2) contribute
    each query's weight rather than a flat count.
    """

    def __init__(self, measurement):
        self.measurement = measurement
        done = ~measurement.timed_out
        order = np.argsort(measurement.elapsed[done])
        self._done_times = measurement.elapsed[done][order]
        self._done_cumweights = np.cumsum(
            measurement.weights[done][order]
        )
        self._total_weight = float(measurement.weights.sum())

    @property
    def name(self):
        return self.measurement.configuration

    def __call__(self, x):
        """Weighted fraction of queries with elapsed time below ``x``.

        Timed-out queries never count as completed below any ``x`` up to
        the timeout.
        """
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self._done_times, x, side="left")
        cum = np.concatenate(([0.0], self._done_cumweights))
        return cum[idx] / max(self._total_weight, 1e-12)

    def quantile(self, fraction):
        """Smallest time ``x`` with ``CFC(x) >= fraction`` (inf if never)."""
        if fraction <= 0:
            return 0.0
        target = fraction * self._total_weight
        idx = np.searchsorted(self._done_cumweights, target - 1e-12)
        if idx >= len(self._done_times):
            return float("inf")
        return float(self._done_times[idx])

    def series(self, grid):
        """``(grid, CFC(grid))`` pairs for plotting/reporting."""
        grid = np.asarray(grid, dtype=np.float64)
        return grid, self(grid)


def log_grid(lo=1.0, hi=1800.0, points_per_decade=2):
    """The paper's log-scale x grid (e.g. 10^0, 10^0.5, ..., timeout)."""
    decades = np.log10(hi / lo)
    n = int(np.ceil(decades * points_per_decade)) + 1
    return lo * 10 ** (np.arange(n) / points_per_decade)


def dominates(curve_a, curve_b, grid=None):
    """First-order stochastic dominance of ``curve_a`` over ``curve_b``.

    True when A's cumulative frequency is >= B's on the whole grid and
    strictly greater somewhere.
    """
    if grid is None:
        grid = log_grid()
    a = curve_a(grid)
    b = curve_b(grid)
    return bool(np.all(a >= b) and np.any(a > b))


def crossover(curve_a, curve_b, grid=None):
    """Grid points where the sign of (A - B) changes, if any."""
    if grid is None:
        grid = log_grid(points_per_decade=8)
    diff = curve_a(grid) - curve_b(grid)
    signs = np.sign(diff)
    crossings = []
    last_sign = 0
    for i, sign in enumerate(signs):
        if sign == 0:
            continue
        if last_sign != 0 and sign != last_sign:
            crossings.append(float(grid[i]))
        last_sign = sign
    return crossings
