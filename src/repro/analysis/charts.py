"""Plain-text renderings of the paper's figures.

The benchmark harness has no plotting dependency; every figure is emitted
as an aligned text table plus an ASCII chart, which is enough to read off
the quantities the paper discusses (quantiles, crossovers, timeout bins).
"""


def render_table(headers, rows, title=None):
    """A fixed-width text table."""
    columns = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(columns[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(histogram, title=None, width=40):
    """ASCII bar chart of a histogram with the cumulative line."""
    peak = max(1, int(max(histogram.counts)))
    lines = [title] if title else []
    for label, count, cum in histogram.rows():
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{label:>7}  {count:4d} {bar:<{width}} cum {cum:5.1f}%")
    return "\n".join(lines)


def render_cfc(curves, grid, title=None):
    """ASCII rendering of cumulative frequency curves on a shared grid.

    ``curves`` is a list of :class:`CumulativeFrequencyCurve`; one row per
    grid point, one column block per curve, plus a compact ">50%"
    strip chart per curve.
    """
    lines = [title] if title else []
    header = "x (s)".rjust(10) + "".join(
        f"  {c.name:>12}" for c in curves
    )
    lines.append(header)
    for x in grid:
        row = f"{x:10.1f}"
        for curve in curves:
            frac = float(curve([x])[0])
            row += f"  {100 * frac:11.1f}%"
        lines.append(row)
    lines.append("")
    for curve in curves:
        marks = "".join(
            "#" if float(curve([x])[0]) > 0.5 else "."
            for x in grid
        )
        lines.append(f"{curve.name:>10}  >50% at: {marks}")
    return "\n".join(lines)
