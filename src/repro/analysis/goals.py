"""Performance goals as constraints on the cumulative frequency curve.

The paper's Example 2: "10% of the queries complete in less than 10
seconds, 50% in less than one minute, 90% before a 30 minute timeout" is
the step function ``G`` with ``CFC_C > G`` as the satisfaction criterion;
any monotone function works as a goal.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StepGoal:
    """A right-continuous step function goal.

    ``steps`` is a tuple of ``(threshold_seconds, required_fraction)``
    pairs sorted by threshold: for ``x >= threshold`` the goal requires at
    least ``required_fraction`` of queries to have completed.
    """

    steps: tuple

    def __post_init__(self):
        thresholds = [t for t, _ in self.steps]
        fractions = [f for _, f in self.steps]
        if thresholds != sorted(thresholds):
            raise ValueError("goal thresholds must be sorted")
        if fractions != sorted(fractions):
            raise ValueError("a goal must be a monotone function")

    def __call__(self, x):
        """Required completed fraction at time ``x``."""
        x = np.asarray(x, dtype=np.float64)
        result = np.zeros_like(x)
        for threshold, fraction in self.steps:
            result = np.where(x >= threshold, fraction, result)
        return result

    def satisfied_by(self, curve, grid=None):
        """Whether ``CFC > G`` at every goal threshold (and grid point).

        Checking just above each threshold suffices for step goals; a
        finer grid may be supplied for composite checks.
        """
        points = np.array(
            [t for t, _ in self.steps], dtype=np.float64
        ) * (1 + 1e-9)
        if grid is not None:
            points = np.concatenate([points, np.asarray(grid)])
        return bool(np.all(curve(points) > self(points) - 1e-12))

    def margin(self, curve):
        """Worst-case slack ``min(CFC - G)`` over the goal thresholds."""
        points = np.array(
            [t for t, _ in self.steps], dtype=np.float64
        ) * (1 + 1e-9)
        return float(np.min(curve(points) - self(points)))


def example2_goal(timeout=1800.0):
    """The paper's Example 2 goal."""
    return StepGoal(steps=((10.0, 0.10), (60.0, 0.50), (timeout, 0.90)))


def improvement_ratio(measurement_before, measurement_after):
    """Workload-level improvement ratio ``IR = A(W, Ci) / A(W, Cj)``.

    Uses the timeout-aware lower bounds, as the paper's Section 4.3
    "conservative overall workload assessment" does.
    """
    before = measurement_before.lower_bound_total()
    after = measurement_after.lower_bound_total()
    if after <= 0:
        return float("inf")
    return before / after
