"""Workload measurements: the raw material of every figure and table.

A :class:`WorkloadMeasurement` holds one elapsed time per query of a
workload executed on one configuration, with timeouts clamped to the
timeout limit and flagged — matching how the paper reports the ``t_out``
bin and computes timeout-aware lower bounds (Section 4.3).
"""

from dataclasses import dataclass, field

import numpy as np

from ..engine.database import DEFAULT_TIMEOUT


@dataclass
class WorkloadMeasurement:
    """Per-query elapsed times of one (workload, configuration) run.

    ``weights`` carries the bag semantics of Section 2.2: a query with
    weight *w* counts as *w* repetitions in totals and frequency curves.
    """

    workload: str
    configuration: str
    elapsed: np.ndarray
    timed_out: np.ndarray
    timeout: float = DEFAULT_TIMEOUT
    sqls: list = field(default_factory=list)
    weights: np.ndarray = None

    def __post_init__(self):
        self.elapsed = np.asarray(self.elapsed, dtype=np.float64)
        self.timed_out = np.asarray(self.timed_out, dtype=bool)
        if len(self.elapsed) != len(self.timed_out):
            raise ValueError("elapsed/timed_out length mismatch")
        if self.weights is None:
            self.weights = np.ones(len(self.elapsed), dtype=np.float64)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if len(self.weights) != len(self.elapsed):
                raise ValueError("weights length mismatch")

    def __len__(self):
        return len(self.elapsed)

    @property
    def timeout_count(self):
        return int(self.timed_out.sum())

    def completed_total(self):
        """Weighted total elapsed time over queries that did not time out."""
        done = ~self.timed_out
        return float((self.elapsed[done] * self.weights[done]).sum())

    def lower_bound_total(self):
        """Timeout-aware lower bound on the workload's total time.

        The paper's Section 4.3 arithmetic: completed queries contribute
        their time, timed-out queries contribute at least the timeout
        (weighted by their repetition count).
        """
        timed = float(self.weights[self.timed_out].sum()) * self.timeout
        return self.completed_total() + timed


def measure_workload(database, workload, timeout=DEFAULT_TIMEOUT,
                     configuration=None, jobs=None):
    """Execute every query of a workload; returns a measurement.

    Thin wrapper over :class:`repro.runtime.MeasurementSession`: the
    workload fans out over ``jobs`` workers (default: the ``REPRO_JOBS``
    environment knob, serial when unset) with order-preserving,
    bit-identical-to-serial results.
    """
    from ..runtime.session import MeasurementSession

    with MeasurementSession(database, jobs=jobs) as session:
        return session.measure(
            workload, timeout=timeout, configuration=configuration
        )


def estimate_workload(database, workload, configuration=None,
                      hypothetical=None, jobs=None):
    """Per-query estimated (or hypothetical) costs for a workload.

    With ``hypothetical`` set to a configuration, returns ``H`` costs;
    otherwise ``E`` costs in the current configuration.  Wraps
    :class:`repro.runtime.MeasurementSession` like
    :func:`measure_workload`.
    """
    from ..runtime.session import MeasurementSession

    with MeasurementSession(database, jobs=jobs) as session:
        return session.estimate(
            workload,
            configuration=configuration,
            hypothetical=hypothetical,
        )
