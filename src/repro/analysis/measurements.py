"""Workload measurements: the raw material of every figure and table.

A :class:`WorkloadMeasurement` holds one elapsed time per query of a
workload executed on one configuration, with timeouts clamped to the
timeout limit and flagged — matching how the paper reports the ``t_out``
bin and computes timeout-aware lower bounds (Section 4.3).
"""

from dataclasses import dataclass, field

import numpy as np

from ..engine.database import DEFAULT_TIMEOUT


@dataclass
class WorkloadMeasurement:
    """Per-query elapsed times of one (workload, configuration) run.

    ``weights`` carries the bag semantics of Section 2.2: a query with
    weight *w* counts as *w* repetitions in totals and frequency curves.
    """

    workload: str
    configuration: str
    elapsed: np.ndarray
    timed_out: np.ndarray
    timeout: float = DEFAULT_TIMEOUT
    sqls: list = field(default_factory=list)
    weights: np.ndarray = None

    def __post_init__(self):
        self.elapsed = np.asarray(self.elapsed, dtype=np.float64)
        self.timed_out = np.asarray(self.timed_out, dtype=bool)
        if len(self.elapsed) != len(self.timed_out):
            raise ValueError("elapsed/timed_out length mismatch")
        if self.weights is None:
            self.weights = np.ones(len(self.elapsed), dtype=np.float64)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if len(self.weights) != len(self.elapsed):
                raise ValueError("weights length mismatch")

    def __len__(self):
        return len(self.elapsed)

    @property
    def timeout_count(self):
        return int(self.timed_out.sum())

    def completed_total(self):
        """Weighted total elapsed time over queries that did not time out."""
        done = ~self.timed_out
        return float((self.elapsed[done] * self.weights[done]).sum())

    def lower_bound_total(self):
        """Timeout-aware lower bound on the workload's total time.

        The paper's Section 4.3 arithmetic: completed queries contribute
        their time, timed-out queries contribute at least the timeout
        (weighted by their repetition count).
        """
        timed = float(self.weights[self.timed_out].sum()) * self.timeout
        return self.completed_total() + timed


def measure_workload(database, workload, timeout=DEFAULT_TIMEOUT,
                     configuration=None):
    """Execute every query of a workload; returns a measurement."""
    elapsed, timed_out, sqls, weights = [], [], [], []
    for query in workload:
        result = database.execute(query.sql, timeout=timeout)
        elapsed.append(result.elapsed)
        timed_out.append(result.timed_out)
        sqls.append(query.sql)
        weights.append(getattr(query, "weight", 1.0))
    return WorkloadMeasurement(
        workload=workload.name,
        configuration=configuration or database.configuration.name,
        elapsed=np.array(elapsed),
        timed_out=np.array(timed_out),
        timeout=timeout,
        sqls=sqls,
        weights=np.array(weights),
    )


def estimate_workload(database, workload, configuration=None,
                      hypothetical=None):
    """Per-query estimated (or hypothetical) costs for a workload.

    With ``hypothetical`` set to a configuration, returns ``H`` costs;
    otherwise ``E`` costs in the current configuration.
    """
    costs = []
    for query in workload:
        if hypothetical is not None:
            costs.append(
                database.estimate_hypothetical(query.sql, hypothetical)
            )
        else:
            costs.append(database.estimate(query.sql))
    return WorkloadMeasurement(
        workload=workload.name,
        configuration=configuration or (
            hypothetical.name if hypothetical is not None
            else database.configuration.name
        ),
        elapsed=np.array(costs),
        timed_out=np.zeros(len(costs), dtype=bool),
        timeout=float("inf"),
        sqls=[q.sql for q in workload],
    )
