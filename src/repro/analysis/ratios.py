"""Per-query improvement ratios (Section 5.2).

* ``AIR(q) = A(q, Ci) / A(q, Cj)`` — actual improvement;
* ``EIR(q) = E(q, Ci) / E(q, Cj)`` — estimated (each estimate taken in
  its own target configuration);
* ``HIR(q) = H(q, Ci, P) / H(q, Cj, P)`` — hypothetical (both estimates
  taken while the system sits in P).

The paper compares R against 1C: ratios above 1 mean R is worse.  As in
the paper, actual ratios involving timed-out queries are dropped.
"""

import numpy as np


def paired_ratios(numerator, denominator, drop_timeouts=True):
    """Element-wise ratio of two measurements over the same workload."""
    if len(numerator) != len(denominator):
        raise ValueError("measurements cover different workloads")
    num = numerator.elapsed.astype(np.float64)
    den = denominator.elapsed.astype(np.float64)
    mask = np.ones(len(num), dtype=bool)
    if drop_timeouts:
        mask &= ~numerator.timed_out
        mask &= ~denominator.timed_out
    den = np.where(den <= 0, np.nan, den)
    ratios = num / den
    return ratios[mask & np.isfinite(ratios)]


def air(actual_ci, actual_cj):
    """Actual improvement ratios ``A(q, Ci) / A(q, Cj)``."""
    return paired_ratios(actual_ci, actual_cj, drop_timeouts=True)


def eir(estimated_ci, estimated_cj):
    """Estimated improvement ratios ``E(q, Ci) / E(q, Cj)``."""
    return paired_ratios(estimated_ci, estimated_cj, drop_timeouts=False)


def hir(hypothetical_ci, hypothetical_cj):
    """Hypothetical improvement ratios ``H(q, Ci, P) / H(q, Cj, P)``."""
    return paired_ratios(hypothetical_ci, hypothetical_cj,
                         drop_timeouts=False)


def ratio_summary(ratios):
    """Counts of queries at >=100x, >=10x, no-change, and degradations.

    Mirrors how the paper reads Figure 11 ("31 queries are 10 times
    faster in 1C than in R, 17 queries 100 times faster, 33 show no
    improvement").
    """
    ratios = np.asarray(ratios)
    return {
        "x100_or_more": int(np.sum(ratios >= 100)),
        "x10_to_100": int(np.sum((ratios >= 10) & (ratios < 100))),
        "about_1": int(np.sum((ratios > 1 / 3) & (ratios < 3))),
        "degraded": int(np.sum(ratios <= 1 / 3)),
        "median": float(np.median(ratios)) if len(ratios) else float("nan"),
    }
