"""Experiment drivers: one per table/figure of the paper."""

from .context import BenchContext, BenchSettings, global_context
from .experiments import ALL_EXPERIMENTS, ExperimentResult

__all__ = [
    "ALL_EXPERIMENTS", "BenchContext", "BenchSettings",
    "ExperimentResult", "global_context",
]
