"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's published artifacts: they vary one knob at a
time to show *why* the paper's findings come out the way they do.

* **budget sweep** — the paper notes unlimited-budget recommendations
  "did exhibit better performance ... in some (but not in all) cases";
* **oracle statistics** — recommender quality with ideal what-if
  estimates, isolating the Section 5 estimation gap;
* **skew sweep** — recommender quality as the Zipf factor grows
  (generalizing the Figure 8 vs Figure 9 comparison);
* **workload-size sweep** — System A's candidate explosion as the
  workload grows (the paper got recommendations for 25/12/6/3-query
  NREF3J subsets but not for 100).

Ablations run at a reduced default scale (``REPRO_ABLATION_SCALE``,
default 0.25) so the whole set stays in the minutes.
"""

from ..analysis.measurements import measure_workload
from ..common import knobs
from ..common.errors import RecommenderGaveUp
from ..datagen.nref import load_nref_database
from ..datagen.tpch import load_tpch_database
from ..engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from ..engine.systems import system_a, system_b, system_c
from ..recommender.whatif import WhatIfRecommender
from ..workload.nref_families import generate_nref3j
from ..workload.sampling import sample_benchmark_workload
from ..workload.tpch_families import generate_skth3j
from ..analysis.charts import render_table
from .experiments import ExperimentResult


def _scale():
    return float(knobs.text("REPRO_ABLATION_SCALE", "0.25"))


def _workload_size():
    return int(knobs.text("REPRO_ABLATION_WORKLOAD", "25"))


def _budget(db):
    return (
        db.estimated_configuration_bytes(
            one_column_configuration(db.catalog)
        )
        - db.estimated_configuration_bytes(
            primary_configuration(db.catalog)
        )
    )


def _nref3j_setup(system):
    db = load_nref_database(system, scale=_scale())
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    family = generate_nref3j(db)
    workload = sample_benchmark_workload(db, family, size=_workload_size())
    return db, workload


def _measure_config(db, workload, config):
    db.apply_configuration(config)
    db.collect_statistics()
    return measure_workload(db, workload, configuration=config.name)


def ablation_budget():
    """Space-budget sweep on System B / NREF3J."""
    db, workload = _nref3j_setup(system_b())
    base_budget = _budget(db)
    rows, data = [], {}
    for label, factor in (("quarter", 0.25), ("paper", 1.0),
                          ("unlimited", 64.0)):
        db.apply_configuration(primary_configuration(db.catalog, name="P"))
        db.collect_statistics()
        recommender = WhatIfRecommender(db)
        report = recommender.recommend(
            workload, int(base_budget * factor), name=f"R_{label}"
        )
        measurement = _measure_config(db, workload, report.configuration)
        rows.append(
            (
                label,
                f"{report.used_bytes / 2**20:.0f}",
                len(report.configuration.secondary_indexes()),
                f"{measurement.lower_bound_total():.0f}",
                measurement.timeout_count,
            )
        )
        data[label] = measurement.lower_bound_total()
    text = render_table(
        ["budget", "used MB", "#indexes", "workload total (s)", "timeouts"],
        rows,
        title="Ablation: space-budget sweep (System B, NREF3J)",
    )
    return ExperimentResult("ablation-budget", "Space-budget sweep",
                            text, data)


def ablation_oracle_statistics():
    """Degraded vs oracle what-if statistics (System B / NREF3J)."""
    db, workload = _nref3j_setup(system_b())
    budget = _budget(db)
    rows, data = [], {}
    for label, oracle in (("degraded (real tools)", False),
                          ("oracle", True)):
        db.apply_configuration(primary_configuration(db.catalog, name="P"))
        db.collect_statistics()
        recommender = WhatIfRecommender(db, oracle=oracle)
        report = recommender.recommend(workload, budget, name=f"R_{label}")
        measurement = _measure_config(db, workload, report.configuration)
        rows.append(
            (
                label,
                len(report.configuration.secondary_indexes()),
                f"{report.estimated_improvement:.2f}",
                f"{measurement.lower_bound_total():.0f}",
            )
        )
        data[label] = measurement.lower_bound_total()
    one_c = _measure_config(
        db, workload, one_column_configuration(db.catalog, name="1C")
    )
    rows.append(("1C baseline", "-", "-",
                 f"{one_c.lower_bound_total():.0f}"))
    data["1C"] = one_c.lower_bound_total()
    text = render_table(
        ["what-if statistics", "#indexes", "est. improvement",
         "actual workload total (s)"],
        rows,
        title="Ablation: recommender quality vs what-if statistics "
              "fidelity (System B, NREF3J)",
    )
    return ExperimentResult(
        "ablation-oracle", "Oracle vs degraded what-if statistics",
        text, data,
    )


def ablation_skew():
    """Zipf-factor sweep on TPC-H (System C, SkTH3J template)."""
    rows, data = [], {}
    for z in (0.0, 0.5, 1.0):
        db = load_tpch_database(system_c(), scale=_scale(), zipf=z)
        db.apply_configuration(primary_configuration(db.catalog, name="P"))
        family = generate_skth3j(db)
        workload = sample_benchmark_workload(
            db, family, size=_workload_size()
        )
        recommender = WhatIfRecommender(db)
        report = recommender.recommend(workload, _budget(db), name="R")
        r_meas = _measure_config(db, workload, report.configuration)
        c_meas = _measure_config(
            db, workload, one_column_configuration(db.catalog, name="1C")
        )
        ratio = r_meas.lower_bound_total() / max(
            1e-9, c_meas.lower_bound_total()
        )
        rows.append(
            (
                f"z={z:g}",
                f"{r_meas.lower_bound_total():.0f}",
                f"{c_meas.lower_bound_total():.0f}",
                f"{ratio:.2f}",
            )
        )
        data[z] = ratio
    text = render_table(
        ["skew", "R total (s)", "1C total (s)", "R / 1C"],
        rows,
        title="Ablation: Zipf-factor sweep — the recommendation "
              "degrades relative to 1C as skew grows",
    )
    return ExperimentResult("ablation-skew", "Skew sweep", text, data)


def ablation_workload_size():
    """System A's NREF3J bail-out as the workload grows (Section 4.1.2)."""
    db, _ = _nref3j_setup(system_a())
    family = generate_nref3j(db)
    rows, data = [], {}
    for size in (3, 6, 12, 25, 100):
        workload = sample_benchmark_workload(db, family, size=size)
        recommender = WhatIfRecommender(db)
        try:
            report = recommender.recommend(workload, _budget(db))
        except RecommenderGaveUp:
            rows.append((size, "-", "GAVE UP"))
            data[size] = None
        else:
            rows.append(
                (size, report.candidate_count,
                 len(report.configuration.secondary_indexes()))
            )
            data[size] = report.candidate_count
    text = render_table(
        ["workload size", "candidates", "#indexes (or GAVE UP)"],
        rows,
        title="Ablation: System A on NREF3J — candidate explosion "
              "with workload size",
    )
    return ExperimentResult(
        "ablation-workload-size", "Workload-size bail-out sweep",
        text, data,
    )
