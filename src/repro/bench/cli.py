"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench run fig3 tab1
    python -m repro.bench run all --scale 0.25 --workload-size 25
    python -m repro.bench run fig3 --trace trace.jsonl --report report.json
    python -m repro.bench ablations

Results print to stdout and are written under ``results/``.  The
observability flags (``--trace``, ``--metrics``, ``--report``) collect
spans/metrics/structured reports *about* a run without changing a byte
of its results; see ``docs/cli.md`` for the full flag reference and
``docs/observability.md`` for the emitted schemas.
"""

import argparse
import pathlib
import sys
from contextlib import nullcontext

from . import ablations as ablation_module
from .. import obs
from ..runtime.artifacts import ArtifactCache
from .context import BenchContext, BenchSettings
from .experiments import ALL_EXPERIMENTS

ABLATIONS = {
    "ablation-budget": ablation_module.ablation_budget,
    "ablation-oracle": ablation_module.ablation_oracle_statistics,
    "ablation-skew": ablation_module.ablation_skew,
    "ablation-workload-size": ablation_module.ablation_workload_size,
}


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run = commands.add_parser("run", help="run experiments by id")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list') or 'all'",
    )
    run.add_argument("--scale", type=float, default=1.0,
                     help="data scale factor (default 1.0)")
    run.add_argument("--workload-size", type=int, default=100,
                     help="queries per sampled workload (default 100)")
    run.add_argument("--timeout", type=float, default=1800.0,
                     help="per-query virtual timeout seconds")
    run.add_argument("--results-dir", default="results",
                     help="directory for result files")
    run.add_argument("--jobs", type=int, default=0,
                     help="measurement worker-pool width "
                          "(default: REPRO_JOBS env, serial)")
    run.add_argument("--cache-dir", default=None,
                     help="persist built artifacts here "
                          "(default: REPRO_CACHE_DIR env, off)")
    run.add_argument("--stats", action="store_true",
                     help="print runtime cache/timing statistics "
                          "after the run")
    run.add_argument("--trace", default=None, metavar="FILE",
                     help="record tracing spans and write them as "
                          "JSONL to FILE")
    run.add_argument("--metrics", action="store_true",
                     help="collect engine/optimizer/cache metrics and "
                          "print them after the run")
    run.add_argument("--report", default=None, metavar="FILE",
                     help="write a structured JSON run report "
                          "(manifest, fingerprints, stage timings, "
                          "cache stats, per-query A/E/H costs) to FILE")

    commands.add_parser("ablations", help="run the ablation studies")

    summarize = commands.add_parser(
        "summarize", help="concatenate results/ into one report"
    )
    summarize.add_argument("--results-dir", default="results")
    summarize.add_argument("--output", default=None,
                           help="write to a file instead of stdout")
    return parser


def _run_experiments(args):
    settings = BenchSettings(
        scale=args.scale,
        workload_size=args.workload_size,
        timeout=args.timeout,
        jobs=args.jobs,
    )
    artifacts = None
    if args.cache_dir is not None:
        artifacts = ArtifactCache(args.cache_dir)
    context = BenchContext(settings, artifacts=artifacts)
    wanted = list(ALL_EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {unknown}; run 'list' to see ids"
        )
    results_dir = pathlib.Path(args.results_dir)
    results_dir.mkdir(exist_ok=True)
    # Observability is opt-in: without these flags the NullRecorder
    # stays installed and every instrumentation site is a no-op.
    observed = args.trace or args.report or args.metrics
    scope = obs.recording() if observed else nullcontext(None)
    with scope as recorder:
        for experiment_id in wanted:
            started = obs.perf_seconds()
            with obs.span("bench.experiment", experiment=experiment_id):
                result = ALL_EXPERIMENTS[experiment_id](context)
            elapsed = obs.perf_seconds() - started
            print(result)
            print(f"[{experiment_id} completed in {elapsed:.0f}s]\n")
            path = results_dir / f"{result.experiment}.txt"
            path.write_text(str(result) + "\n")
        if args.stats:
            print(context.stats_report())
    if args.metrics:
        print(obs.render_metrics(recorder.metrics.snapshot()))
    if args.trace:
        records = recorder.write_trace(args.trace)
        print(f"[trace: {records} records -> {args.trace}]")
    if args.report:
        report = context.run_report(recorder=recorder, experiments=wanted)
        obs.validate_run_report(report)
        obs.write_report(report, args.report)
        print(f"[report -> {args.report}]")


def _run_ablations():
    results_dir = pathlib.Path("results")
    results_dir.mkdir(exist_ok=True)
    for name, fn in ABLATIONS.items():
        result = fn()
        print(result)
        (results_dir / f"{name}.txt").write_text(str(result) + "\n")


def main(argv=None):
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in ALL_EXPERIMENTS:
            print(experiment_id)
        for name in ABLATIONS:
            print(name, "(via 'ablations')")
        return 0
    if args.command == "run":
        _run_experiments(args)
        return 0
    if args.command == "ablations":
        _run_ablations()
        return 0
    if args.command == "summarize":
        report = summarize_results(args.results_dir)
        if args.output:
            pathlib.Path(args.output).write_text(report)
        else:
            print(report)
        return 0
    return 1


_RESULT_ORDER = list(ALL_EXPERIMENTS) + list(ABLATIONS)


def summarize_results(results_dir="results"):
    """One concatenated report of every artifact under ``results_dir``."""
    directory = pathlib.Path(results_dir)
    if not directory.is_dir():
        return f"(no results directory at {directory})"
    sections = []
    seen = set()
    for experiment_id in _RESULT_ORDER:
        path = directory / f"{experiment_id}.txt"
        if path.exists():
            sections.append(path.read_text().rstrip())
            seen.add(path.name)
    for path in sorted(directory.glob("*.txt")):
        if path.name not in seen and path.name != "summary.txt":
            sections.append(path.read_text().rstrip())
    return "\n\n".join(sections) + "\n"


if __name__ == "__main__":
    sys.exit(main())
