"""Shared experiment context.

Building a database, sampling a 100-query workload, constructing P/1C,
obtaining a recommendation and measuring workloads are shared by every
figure and table; this module caches those steps per process so a full
benchmark run builds each artifact once.

Environment knobs:

* ``REPRO_SCALE``          — data scale factor (default 1.0);
* ``REPRO_WORKLOAD_SIZE``  — queries per sampled workload (default 100);
* ``REPRO_TIMEOUT``        — per-query virtual timeout in seconds
  (default 1800, the paper's 30 minutes).
"""

import os
from dataclasses import dataclass

from ..common.errors import RecommenderGaveUp
from ..datagen.nref import load_nref_database
from ..datagen.tpch import load_tpch_database
from ..engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from ..engine.systems import by_name as system_by_name
from ..recommender.whatif import WhatIfRecommender
from ..workload.nref_families import generate_nref2j, generate_nref3j
from ..workload.sampling import sample_benchmark_workload
from ..workload.tpch_families import (
    generate_skth3j,
    generate_skth3js,
    generate_unth3j,
)
from ..analysis.measurements import measure_workload

FAMILY_GENERATORS = {
    "NREF2J": generate_nref2j,
    "NREF3J": generate_nref3j,
    "SkTH3J": generate_skth3j,
    "SkTH3Js": generate_skth3js,
    "UnTH3J": generate_unth3j,
}

FAMILY_DATASET = {
    "NREF2J": "nref",
    "NREF3J": "nref",
    "SkTH3J": "skth",
    "SkTH3Js": "skth",
    "UnTH3J": "unth",
}


@dataclass(frozen=True)
class BenchSettings:
    """Scale and sampling knobs of one benchmark run."""

    scale: float = 1.0
    workload_size: int = 100
    timeout: float = 1800.0
    seed: int = 405

    @classmethod
    def from_env(cls):
        return cls(
            scale=float(os.environ.get("REPRO_SCALE", "1.0")),
            workload_size=int(os.environ.get("REPRO_WORKLOAD_SIZE", "100")),
            timeout=float(os.environ.get("REPRO_TIMEOUT", "1800")),
        )


class BenchContext:
    """Process-wide cache of databases, workloads, and measurements."""

    def __init__(self, settings=None):
        self.settings = settings or BenchSettings.from_env()
        self._databases = {}
        self._workloads = {}
        self._measurements = {}
        self._recommendations = {}
        self._build_reports = {}

    # ------------------------------------------------------------------
    # Databases and configurations

    def database(self, system_name, dataset):
        """A loaded database for ``(system, dataset)`` with P applied."""
        key = (system_name, dataset)
        if key not in self._databases:
            system = system_by_name(system_name)
            if dataset == "nref":
                db = load_nref_database(
                    system, scale=self.settings.scale, name="NREF"
                )
            elif dataset == "skth":
                db = load_tpch_database(
                    system, scale=self.settings.scale, zipf=1.0, name="SkTH"
                )
            elif dataset == "unth":
                db = load_tpch_database(
                    system, scale=self.settings.scale, zipf=0.0, name="UnTH"
                )
            else:
                raise ValueError(f"unknown dataset {dataset!r}")
            report = db.apply_configuration(
                primary_configuration(db.catalog, name="P")
            )
            self._databases[key] = db
            self._build_reports[(system_name, dataset, "P")] = report
        return self._databases[key]

    def p_configuration(self, database):
        return primary_configuration(database.catalog, name="P")

    def one_c_configuration(self, database):
        return one_column_configuration(database.catalog, name="1C")

    def space_budget(self, database):
        """The paper's budget: size(1C) minus size(P), estimated."""
        p_bytes = database.estimated_configuration_bytes(
            self.p_configuration(database)
        )
        one_c_bytes = database.estimated_configuration_bytes(
            self.one_c_configuration(database)
        )
        return max(0, one_c_bytes - p_bytes)

    # ------------------------------------------------------------------
    # Workloads

    def workload(self, system_name, family):
        """The sampled benchmark workload of a family (cached).

        Sampling needs estimated costs, which are taken in the P
        configuration — so the database is (re)set to P first.
        """
        key = (system_name, family)
        if key not in self._workloads:
            db = self.database(system_name, FAMILY_DATASET[family])
            self._ensure_configuration(db, system_name, "P")
            full = FAMILY_GENERATORS[family](db)
            sampled = sample_benchmark_workload(
                db,
                full,
                size=self.settings.workload_size,
                seed=self.settings.seed,
            )
            self._workloads[key] = (full, sampled)
        return self._workloads[key][1]

    def full_family(self, system_name, family):
        self.workload(system_name, family)
        return self._workloads[(system_name, family)][0]

    # ------------------------------------------------------------------
    # Recommendations

    def recommendation(self, system_name, family):
        """The recommended configuration for a family (None on bail-out).

        Returns ``(configuration_or_None, report_or_exception)``.
        """
        key = (system_name, family)
        if key not in self._recommendations:
            db = self.database(system_name, FAMILY_DATASET[family])
            workload = self.workload(system_name, family)
            self._ensure_configuration(db, system_name, "P")
            recommender = WhatIfRecommender(db)
            budget = self.space_budget(db)
            try:
                report = recommender.recommend(
                    workload, budget, name=f"{family}_R"
                )
            except RecommenderGaveUp as failure:
                self._recommendations[key] = (None, failure)
            else:
                self._recommendations[key] = (report.configuration, report)
        return self._recommendations[key]

    # ------------------------------------------------------------------
    # Measurements

    def measure(self, system_name, family, config_name):
        """Elapsed times of a family's workload on P / 1C / R (cached)."""
        key = (system_name, family, config_name)
        if key not in self._measurements:
            db = self.database(system_name, FAMILY_DATASET[family])
            workload = self.workload(system_name, family)
            config = self._resolve_config(db, system_name, family, config_name)
            if config is None:
                self._measurements[key] = None
            else:
                self._apply(db, system_name, family, config)
                self._measurements[key] = measure_workload(
                    db,
                    workload,
                    timeout=self.settings.timeout,
                    configuration=config_name,
                )
        return self._measurements[key]

    def build_report(self, system_name, dataset, config_name, family=None):
        """BuildReport for a configuration (builds it if needed)."""
        key = (system_name, dataset, config_name)
        if key not in self._build_reports:
            db = self.database(system_name, dataset)
            if config_name == "P":
                config = self.p_configuration(db)
            elif config_name == "1C":
                config = self.one_c_configuration(db)
            else:
                config, _ = self.recommendation(system_name, family)
                if config is None:
                    self._build_reports[key] = None
                    return None
            report = db.apply_configuration(config.renamed(config_name))
            db.collect_statistics()
            self._build_reports[key] = report
        return self._build_reports[key]

    # ------------------------------------------------------------------
    # Internals

    def _resolve_config(self, db, system_name, family, config_name):
        if config_name == "P":
            return self.p_configuration(db)
        if config_name == "1C":
            return self.one_c_configuration(db)
        if config_name == "R":
            config, _ = self.recommendation(system_name, family)
            return config
        raise ValueError(f"unknown configuration {config_name!r}")

    def _apply(self, db, system_name, family, config):
        del system_name, family
        current = db.configuration
        same_structures = (
            {ix.name for ix in current.indexes}
            == {ix.name for ix in config.indexes}
            and current.view_names() == config.view_names()
        )
        if current.name != config.name or not same_structures:
            db.apply_configuration(config)
            db.collect_statistics()

    def _ensure_configuration(self, db, system_name, config_name):
        if config_name == "P" and db.configuration.name != "P":
            db.apply_configuration(
                primary_configuration(db.catalog, name="P")
            )
            db.collect_statistics()


_GLOBAL_CONTEXT = None


def global_context():
    """The process-wide :class:`BenchContext` (created on first use)."""
    global _GLOBAL_CONTEXT
    if _GLOBAL_CONTEXT is None:
        _GLOBAL_CONTEXT = BenchContext()
    return _GLOBAL_CONTEXT
