"""Shared experiment context.

Building a database, sampling a 100-query workload, constructing P/1C,
obtaining a recommendation and measuring workloads are shared by every
figure and table; this module stores those artifacts in a
fingerprint-keyed :class:`~repro.runtime.ArtifactCache` so a full
benchmark run builds each artifact once — and, when ``REPRO_CACHE_DIR``
points at a directory, persists them so a *second* run skips the builds
entirely.

Environment knobs:

* ``REPRO_SCALE``          — data scale factor (default 1.0);
* ``REPRO_WORKLOAD_SIZE``  — queries per sampled workload (default 100);
* ``REPRO_TIMEOUT``        — per-query virtual timeout in seconds
  (default 1800, the paper's 30 minutes);
* ``REPRO_JOBS``           — measurement worker-pool width (default 1);
* ``REPRO_CACHE_DIR``      — artifact persistence directory (default
  off: artifacts live only in this process).

Every stage is timed (:meth:`BenchContext.stats_report` prints seconds
per phase, artifact-cache traffic, and each database's planner-cache hit
rates).
"""

from dataclasses import dataclass

from .. import obs
from ..common import knobs
from ..common.errors import RecommenderGaveUp
from ..datagen.nref import load_nref_database
from ..datagen.tpch import load_tpch_database
from ..engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from ..engine.systems import by_name as system_by_name
from ..recommender.whatif import WhatIfRecommender
from ..runtime.artifacts import ArtifactCache, StageTimings, artifact_key
from ..runtime.session import MeasurementSession, resolve_jobs
from ..storage.sharding import shard_count
from ..workload.nref_families import generate_nref2j, generate_nref3j
from ..workload.sampling import sample_benchmark_workload
from ..workload.tpch_families import (
    generate_skth3j,
    generate_skth3js,
    generate_unth3j,
)

FAMILY_GENERATORS = {
    "NREF2J": generate_nref2j,
    "NREF3J": generate_nref3j,
    "SkTH3J": generate_skth3j,
    "SkTH3Js": generate_skth3js,
    "UnTH3J": generate_unth3j,
}

FAMILY_DATASET = {
    "NREF2J": "nref",
    "NREF3J": "nref",
    "SkTH3J": "skth",
    "SkTH3Js": "skth",
    "UnTH3J": "unth",
}


@dataclass(frozen=True)
class BenchSettings:
    """Scale and sampling knobs of one benchmark run."""

    scale: float = 1.0
    workload_size: int = 100
    timeout: float = 1800.0
    seed: int = 405
    jobs: int = 0          # 0 = resolve from REPRO_JOBS (default serial)

    @classmethod
    def from_env(cls):
        return cls(
            scale=float(knobs.text("REPRO_SCALE", "1.0")),
            workload_size=int(knobs.text("REPRO_WORKLOAD_SIZE", "100")),
            timeout=float(knobs.text("REPRO_TIMEOUT", "1800")),
        )

    def content_key(self):
        """The settings fields that determine artifact content.

        ``jobs`` is deliberately excluded: parallel and serial runs
        produce bit-identical artifacts, so they share cache entries.
        """
        return (self.scale, self.workload_size, self.timeout, self.seed)


class BenchContext:
    """Fingerprint-keyed store of databases, workloads, and measurements."""

    def __init__(self, settings=None, artifacts=None, executor=None):
        self.settings = settings or BenchSettings.from_env()
        self.artifacts = artifacts or ArtifactCache()
        self.timings = StageTimings()
        self.jobs = resolve_jobs(self.settings.jobs or None)
        # Optional borrowed worker pool: measurement sessions created by
        # this context run on it instead of private pools (the tuning
        # server shares one executor across every tenant's context).
        self.executor = executor
        # Horizontal partitioning (REPRO_SHARDS; 0 = off).  Results are
        # byte-identical either way, but a *database* artifact holds
        # sharded (or unsharded) storage, so its key carries the count.
        self.shards = shard_count()
        # Databases are mutable (configurations get applied in place),
        # so the live instances are process-local; the artifact store
        # keeps the expensive *loaded + P-built* snapshot.
        self._live_databases = {}

    def _key(self, *parts):
        return artifact_key(*self.settings.content_key(), *parts)

    # ------------------------------------------------------------------
    # Databases and configurations

    def database(self, system_name, dataset):
        """A loaded database for ``(system, dataset)`` with P applied."""
        live_key = (system_name, dataset)
        if live_key not in self._live_databases:
            parts = ["database", system_name, dataset]
            if self.shards:
                parts += ["shards", self.shards]
            key = self._key(*parts)

            def build():
                with self.timings.stage("build_database"), obs.span(
                    "bench.build_database",
                    system=system_name, dataset=dataset,
                ):
                    system = system_by_name(system_name)
                    if dataset == "nref":
                        db = load_nref_database(
                            system, scale=self.settings.scale, name="NREF"
                        )
                    elif dataset == "skth":
                        db = load_tpch_database(
                            system, scale=self.settings.scale,
                            zipf=1.0, name="SkTH",
                        )
                    elif dataset == "unth":
                        db = load_tpch_database(
                            system, scale=self.settings.scale,
                            zipf=0.0, name="UnTH",
                        )
                    else:
                        raise ValueError(f"unknown dataset {dataset!r}")
                    report = db.apply_configuration(
                        primary_configuration(db.catalog, name="P")
                    )
                    return db, report

            db, report = self.artifacts.get_or_build(
                "database", key, build
            )
            self._live_databases[live_key] = db
            self.artifacts.put(
                "build_report",
                self._key("build_report", system_name, dataset, "P"),
                report,
            )
        return self._live_databases[live_key]

    def p_configuration(self, database):
        return primary_configuration(database.catalog, name="P")

    def one_c_configuration(self, database):
        return one_column_configuration(database.catalog, name="1C")

    def space_budget(self, database):
        """The paper's budget: size(1C) minus size(P), estimated."""
        p_bytes = database.estimated_configuration_bytes(
            self.p_configuration(database)
        )
        one_c_bytes = database.estimated_configuration_bytes(
            self.one_c_configuration(database)
        )
        return max(0, one_c_bytes - p_bytes)

    # ------------------------------------------------------------------
    # Workloads

    def workload(self, system_name, family):
        """The sampled benchmark workload of a family (cached).

        Sampling needs estimated costs, which are taken in the P
        configuration — so the database is (re)set to P first.
        """
        key = self._key("workload", system_name, family)

        def build():
            with self.timings.stage("sample_workload"), obs.span(
                "bench.sample_workload",
                system=system_name, family=family,
            ):
                db = self.database(system_name, FAMILY_DATASET[family])
                self._ensure_configuration(db, system_name, "P")
                full = FAMILY_GENERATORS[family](db)
                sampled = sample_benchmark_workload(
                    db,
                    full,
                    size=self.settings.workload_size,
                    seed=self.settings.seed,
                )
                return full, sampled

        return self.artifacts.get_or_build("workload", key, build)[1]

    def full_family(self, system_name, family):
        self.workload(system_name, family)
        key = self._key("workload", system_name, family)
        return self.artifacts.get("workload", key)[0]

    # ------------------------------------------------------------------
    # Recommendations

    def recommendation(self, system_name, family):
        """The recommended configuration for a family (None on bail-out).

        Returns ``(configuration_or_None, report_or_exception)``.
        """
        key = self._key("recommendation", system_name, family)

        def build():
            with self.timings.stage("recommend"), obs.span(
                "bench.recommend", system=system_name, family=family,
            ):
                db = self.database(system_name, FAMILY_DATASET[family])
                workload = self.workload(system_name, family)
                self._ensure_configuration(db, system_name, "P")
                recommender = WhatIfRecommender(db)
                budget = self.space_budget(db)
                try:
                    report = recommender.recommend(
                        workload, budget, name=f"{family}_R"
                    )
                except RecommenderGaveUp as failure:
                    return (None, failure)
                return (report.configuration, report)

        return self.artifacts.get_or_build("recommendation", key, build)

    # ------------------------------------------------------------------
    # Measurements

    def measure(self, system_name, family, config_name):
        """Elapsed times of a family's workload on P / 1C / R (cached)."""
        key = self._key("measurement", system_name, family, config_name)

        def build():
            db = self.database(system_name, FAMILY_DATASET[family])
            workload = self.workload(system_name, family)
            config = self._resolve_config(
                db, system_name, family, config_name
            )
            if config is None:
                return None
            self._apply(db, system_name, family, config)
            with self.timings.stage("measure_workload"), obs.span(
                "bench.measure_workload",
                system=system_name, family=family,
                configuration=config_name,
            ):
                with MeasurementSession(
                    db, jobs=self.jobs, executor=self.executor
                ) as session:
                    return session.measure(
                        workload,
                        timeout=self.settings.timeout,
                        configuration=config_name,
                    )

        return self.artifacts.get_or_build("measurement", key, build)

    def build_report(self, system_name, dataset, config_name, family=None):
        """BuildReport for a configuration (builds it if needed)."""
        key = self._key("build_report", system_name, dataset, config_name)

        def build():
            db = self.database(system_name, dataset)
            if config_name == "P":
                config = self.p_configuration(db)
            elif config_name == "1C":
                config = self.one_c_configuration(db)
            else:
                config, _ = self.recommendation(system_name, family)
                if config is None:
                    return None
            with self.timings.stage("build_configuration"), obs.span(
                "bench.build_configuration",
                system=system_name, dataset=dataset,
                configuration=config_name,
            ):
                report = db.apply_configuration(
                    config.renamed(config_name)
                )
                db.collect_statistics()
            return report

        return self.artifacts.get_or_build("build_report", key, build)

    # ------------------------------------------------------------------
    # Accounting

    def live_databases(self):
        """``((system, dataset), Database)`` pairs built by this context."""
        return list(self._live_databases.items())

    def run_report(self, recorder=None, experiments=None):
        """The structured run report of this context's work so far.

        Args:
            recorder: the run's :class:`~repro.obs.TraceRecorder`, when
                observability was on (adds metrics, fingerprints, and
                per-query measurement breakdowns).
            experiments: experiment ids for the manifest.

        Returns:
            A dict matching :data:`repro.obs.RUN_REPORT_SCHEMA`.
        """
        return obs.build_run_report(
            self, recorder=recorder, experiments=experiments
        )

    def stats_report(self):
        """Per-stage wall clock, artifact traffic, planner-cache rates.

        A console rendering of :meth:`run_report` (the ``--stats``
        output) — the printed numbers come from the same structured
        report that ``--report`` exports.
        """
        report = self.run_report(recorder=obs.get_recorder())
        return obs.render_text(report)

    # ------------------------------------------------------------------
    # Internals

    def _resolve_config(self, db, system_name, family, config_name):
        if config_name == "P":
            return self.p_configuration(db)
        if config_name == "1C":
            return self.one_c_configuration(db)
        if config_name == "R":
            config, _ = self.recommendation(system_name, family)
            return config
        raise ValueError(f"unknown configuration {config_name!r}")

    def _apply(self, db, system_name, family, config):
        del system_name, family
        current = db.configuration
        if (current.name != config.name
                or current.fingerprint != config.fingerprint):
            with self.timings.stage("build_configuration"), obs.span(
                "bench.build_configuration", configuration=config.name,
            ):
                db.apply_configuration(config)
                db.collect_statistics()

    def _ensure_configuration(self, db, system_name, config_name):
        if config_name == "P" and db.configuration.name != "P":
            with self.timings.stage("build_configuration"), obs.span(
                "bench.build_configuration", configuration="P",
            ):
                db.apply_configuration(
                    primary_configuration(db.catalog, name="P")
                )
                db.collect_statistics()


_GLOBAL_CONTEXT = None


def global_context():
    """The process-wide :class:`BenchContext` (created on first use)."""
    global _GLOBAL_CONTEXT
    if _GLOBAL_CONTEXT is None:
        _GLOBAL_CONTEXT = BenchContext()
    return _GLOBAL_CONTEXT
