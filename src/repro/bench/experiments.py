"""One driver per table and figure of the paper.

Every driver returns an :class:`ExperimentResult` whose ``text`` is a
self-contained report (tables + ASCII charts) and whose ``data`` holds
the raw series, so tests and EXPERIMENTS.md can both consume it.
"""

from dataclasses import dataclass, field

import numpy as np

from ..analysis.binning import ratio_histogram, time_histogram
from ..analysis.cfc import CumulativeFrequencyCurve, dominates, log_grid
from ..analysis.charts import render_cfc, render_histogram, render_table
from ..analysis.goals import example2_goal, improvement_ratio
from ..analysis.measurements import estimate_workload
from ..analysis.ratios import air, eir, hir, ratio_summary
from ..common.units import GIB, minutes
from .context import FAMILY_DATASET, global_context


@dataclass
class ExperimentResult:
    """A reproduced table/figure."""

    experiment: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self):
        return f"== {self.experiment}: {self.title} ==\n{self.text}"


# ----------------------------------------------------------------------
# Figures 1-2: histograms of NREF2J on System A (P vs recommended)

def figure_1_2(context=None):
    ctx = context or global_context()
    sections, data = [], {}
    for config in ("P", "R"):
        measurement = ctx.measure("A", "NREF2J", config)
        if measurement is None:
            sections.append(f"[{config}] no recommendation produced")
            continue
        histogram = time_histogram(measurement)
        label = "Figure 1 (P)" if config == "P" else "Figure 2 (R)"
        sections.append(
            render_histogram(
                histogram,
                title=f"{label}: System A, NREF2J, config {config} "
                      f"(seconds per bin, t_out = {measurement.timeout:.0f}s)",
            )
        )
        data[config] = {
            "histogram": histogram.rows(),
            "timeouts": measurement.timeout_count,
        }
    return ExperimentResult(
        experiment="fig1-2",
        title="Query time histograms, System A on NREF2J (P vs R)",
        text="\n\n".join(sections),
        data=data,
    )


# ----------------------------------------------------------------------
# Figures 3-9: cumulative frequency curves

_CFC_FIGURES = {
    "fig3": ("A", "NREF2J", "Behavior of System A on NREF2J"),
    "fig4": ("A", "NREF3J", "Behavior of System A on NREF3J "
                            "(no R: recommender gave up)"),
    "fig5": ("B", "NREF2J", "Behavior of System B on NREF2J"),
    "fig6": ("B", "NREF3J", "Behavior of System B on NREF3J"),
    "fig7": ("C", "SkTH3Js", "Behavior of System C on SkTH3Js"),
    "fig8": ("C", "SkTH3J", "Behavior of System C on SkTH3J"),
    "fig9": ("C", "UnTH3J", "Behavior of System C on UnTH3J"),
}


def figure_cfc(figure, context=None):
    """Any of the CFC figures (fig3..fig9)."""
    ctx = context or global_context()
    system, family, title = _CFC_FIGURES[figure]
    grid = log_grid(lo=1.0, hi=ctx.settings.timeout, points_per_decade=2)

    curves, data = [], {}
    for config in ("P", "1C", "R"):
        measurement = ctx.measure(system, family, config)
        if measurement is None:
            data[config] = None
            continue
        curve = CumulativeFrequencyCurve(measurement)
        curves.append(curve)
        data[config] = {
            "grid": grid.tolist(),
            "cfc": curve(grid).tolist(),
            "timeouts": measurement.timeout_count,
            "lower_bound_total": measurement.lower_bound_total(),
        }

    text = render_cfc(curves, grid, title=title)
    named = {c.name: c for c in curves}
    goal = example2_goal(ctx.settings.timeout)
    goal_rows = [
        (c.name, "yes" if goal.satisfied_by(c) else "no",
         f"{goal.margin(c):+.2f}")
        for c in curves
    ]
    text += "\n\n" + render_table(
        ["config", "satisfies Example-2 goal", "margin"],
        goal_rows,
        title="Performance goal check (Example 2)",
    )
    if "1C" in named and "P" in named:
        data["1C_dominates_P"] = dominates(named["1C"], named["P"], grid)
    if "1C" in named and "R" in named:
        data["1C_dominates_R"] = dominates(named["1C"], named["R"], grid)
    data["goal"] = {name: ok for name, ok, _ in goal_rows}
    return ExperimentResult(
        experiment=figure, title=title, text=text, data=data
    )


# ----------------------------------------------------------------------
# Figure 10: estimated and hypothetical cost curves, System B / NREF3J

def figure_10(context=None):
    ctx = context or global_context()
    system, family = "B", "NREF3J"
    db = ctx.database(system, FAMILY_DATASET[family])
    workload = ctx.workload(system, family)
    p_config = ctx.p_configuration(db)
    one_c = ctx.one_c_configuration(db)
    r_config, _ = ctx.recommendation(system, family)

    curves, data = [], {}

    # Hypothetical estimates are taken while the system sits in P.
    ctx.measure(system, family, "P")   # ensures P is built
    db.apply_configuration(p_config)
    db.collect_statistics()
    for label, config in (("EP", None), ("HR", r_config), ("H1C", one_c)):
        if label == "EP":
            m = estimate_workload(db, workload, configuration="EP")
        else:
            if config is None:
                continue
            m = estimate_workload(
                db, workload, configuration=label, hypothetical=config
            )
        curves.append(CumulativeFrequencyCurve(m))
        data[label] = m.elapsed.tolist()

    # Target-configuration estimates require the configuration built.
    for label, config in (("ER", r_config), ("E1C", one_c)):
        if config is None:
            continue
        db.apply_configuration(config)
        db.collect_statistics()
        m = estimate_workload(db, workload, configuration=label)
        curves.append(CumulativeFrequencyCurve(m))
        data[label] = m.elapsed.tolist()

    all_costs = np.concatenate(
        [np.asarray(v) for v in data.values() if v]
    )
    grid = log_grid(
        lo=max(0.1, float(all_costs.min())),
        hi=float(all_costs.max()) * 1.01,
        points_per_decade=2,
    )
    text = render_cfc(
        curves, grid,
        title="Figure 10: cumulative curves of optimizer estimates "
              "(E*) and hypothetical estimates (H*), System B, NREF3J",
    )
    return ExperimentResult(
        experiment="fig10",
        title="Estimate curves EP/ER/E1C vs hypothetical HR/H1C",
        text=text,
        data=data,
    )


# ----------------------------------------------------------------------
# Figure 11: improvement ratio histograms (R vs 1C), System B / NREF3J

def figure_11(context=None):
    ctx = context or global_context()
    system, family = "B", "NREF3J"
    db = ctx.database(system, FAMILY_DATASET[family])
    workload = ctx.workload(system, family)
    r_config, _ = ctx.recommendation(system, family)
    one_c = ctx.one_c_configuration(db)

    actual_r = ctx.measure(system, family, "R")
    actual_1c = ctx.measure(system, family, "1C")

    # Hypothetical estimates from P.
    db.apply_configuration(ctx.p_configuration(db))
    db.collect_statistics()
    h_r = estimate_workload(db, workload, "HR", hypothetical=r_config)
    h_1c = estimate_workload(db, workload, "H1C", hypothetical=one_c)

    # Estimates in the target configurations.
    db.apply_configuration(r_config)
    db.collect_statistics()
    e_r = estimate_workload(db, workload, "ER")
    db.apply_configuration(one_c)
    db.collect_statistics()
    e_1c = estimate_workload(db, workload, "E1C")

    ratios = {
        "AIR": air(actual_r, actual_1c),
        "EIR": eir(e_r, e_1c),
        "HIR": hir(h_r, h_1c),
    }
    sections, data = [], {}
    for label, values in ratios.items():
        histogram = ratio_histogram(values)
        sections.append(
            render_histogram(
                histogram,
                title=f"{label}: ratio of R to 1C "
                      f"(>1 means 1C is faster); n={len(values)}",
            )
        )
        data[label] = {
            "ratios": np.asarray(values).tolist(),
            "summary": ratio_summary(values),
        }
    return ExperimentResult(
        experiment="fig11",
        title="Improvement ratios AIR/EIR/HIR of R vs 1C "
              "(System B, NREF3J)",
        text="\n\n".join(sections),
        data=data,
    )


# ----------------------------------------------------------------------
# Table 1: sizes and build times of every configuration

TABLE1_ROWS = (
    ("A", "nref", "NREF", "P", None),
    ("A", "nref", "NREF2J", "R", "NREF2J"),
    ("A", "nref", "NREF", "1C", None),
    ("B", "nref", "NREF", "P", None),
    ("B", "nref", "NREF2J", "R", "NREF2J"),
    ("B", "nref", "NREF3J", "R", "NREF3J"),
    ("B", "nref", "NREF", "1C", None),
    ("C", "skth", "SkTH", "P", None),
    ("C", "skth", "SkTH3J", "R", "SkTH3J"),
    ("C", "skth", "SkTH3Js", "R", "SkTH3Js"),
    ("C", "skth", "SkTH", "1C", None),
    ("C", "unth", "UnTH", "P", None),
    ("C", "unth", "UnTH3J", "R", "UnTH3J"),
    ("C", "unth", "UnTH", "1C", None),
)


def table_1(context=None):
    ctx = context or global_context()
    rows, data = [], {}
    for system, dataset, label, config, family in TABLE1_ROWS:
        key = config if family is None else f"R:{family}"
        report = ctx.build_report(system, dataset, key, family=family)
        name = f"{system} {label} {config}"
        if report is None:
            rows.append((name, "-", "-"))
            data[name] = None
            continue
        rows.append(
            (
                name,
                f"{report.total_bytes / GIB:.3f}",
                f"{minutes(report.build_seconds):.0f}",
            )
        )
        data[name] = {
            "bytes": report.total_bytes,
            "build_seconds": report.build_seconds,
        }
    text = render_table(
        ["Configuration", "Size (GB)", "Build time (virtual min)"],
        rows,
        title="Table 1: sizes and build times of all configurations",
    )
    return ExperimentResult(
        experiment="tab1",
        title="Sizes and build times of all configurations",
        text=text,
        data=data,
    )


# ----------------------------------------------------------------------
# Tables 2-3: index width histograms of the recommendations

def _index_table(context, rows_spec, experiment, title):
    ctx = context or global_context()
    columns = {}
    all_targets = set()
    for system, family in rows_spec:
        config, _ = ctx.recommendation(system, family)
        label = f"{system} {family} R"
        if config is None:
            columns[label] = None
            continue
        histogram = config.index_width_histogram()
        columns[label] = histogram
        all_targets.update(histogram)
    targets = sorted(all_targets)
    headers = ["Table"] + [
        f"{label} {w}c" for label in columns for w in (1, 2, 3, 4)
    ]
    rows = []
    for target in targets:
        row = [target]
        for label, histogram in columns.items():
            counts = (histogram or {}).get(target, [0, 0, 0, 0])
            row.extend(counts)
        rows.append(row)
    totals = ["Totals"]
    for label, histogram in columns.items():
        sums = [0, 0, 0, 0]
        for counts in (histogram or {}).values():
            for i, c in enumerate(counts):
                sums[i] += c
        totals.extend(sums)
    rows.append(totals)
    text = render_table(headers, rows, title=title)
    for label, histogram in columns.items():
        if histogram is None:
            text += f"\n(no recommendation produced for {label})"
    return ExperimentResult(
        experiment=experiment,
        title=title,
        text=text,
        data={
            label: histogram for label, histogram in columns.items()
        },
    )


def table_2(context=None):
    return _index_table(
        context,
        (("A", "NREF2J"), ("B", "NREF2J"), ("B", "NREF3J")),
        "tab2",
        "Table 2: index widths per recommended configuration (NREF)",
    )


def table_3(context=None):
    return _index_table(
        context,
        (("C", "SkTH3Js"), ("C", "SkTH3J"), ("C", "UnTH3J")),
        "tab3",
        "Table 3: index widths per recommended configuration (TPC-H), "
        "including indexes on materialized views",
    )


# ----------------------------------------------------------------------
# Section 4.3: timeout-aware workload totals on SkTH3J

def section_4_3(context=None):
    ctx = context or global_context()
    rows, data = [], {}
    measurements = {}
    for config in ("P", "1C", "R"):
        measurement = ctx.measure("C", "SkTH3J", config)
        if measurement is None:
            continue
        measurements[config] = measurement
        rows.append(
            (
                config,
                f"{measurement.completed_total():.0f}",
                measurement.timeout_count,
                f"{measurement.lower_bound_total():.0f}",
            )
        )
        data[config] = {
            "completed_total": measurement.completed_total(),
            "timeouts": measurement.timeout_count,
            "lower_bound": measurement.lower_bound_total(),
        }
    text = render_table(
        ["config", "completed total (s)", "timeouts", "lower bound (s)"],
        rows,
        title="Section 4.3: SkTH3J workload totals (timeout-aware "
              "lower bounds)",
    )
    if "R" in measurements and "1C" in measurements:
        ratio = improvement_ratio(measurements["R"], measurements["1C"])
        text += f"\n1C vs R conservative improvement: {ratio:.1f}x"
        data["ratio_1c_vs_r"] = ratio
    if "P" in measurements and "1C" in measurements:
        ratio = improvement_ratio(measurements["P"], measurements["1C"])
        text += f"\n1C vs P conservative improvement: {ratio:.1f}x"
        data["ratio_1c_vs_p"] = ratio
    return ExperimentResult(
        experiment="sec43",
        title="Workload totals with timeout lower bounds (SkTH3J)",
        text=text,
        data=data,
    )


# ----------------------------------------------------------------------
# Section 4.4: the impact of insertions (break-even analysis)

def section_4_4(context=None, batches=(10_000, 40_000, 100_000)):
    """Insert cost per configuration plus the 1C-vs-R break-even point.

    Inserts go into Neighboring_seq ("both the widest and the largest
    relation"); insert costs are linear per configuration, and the
    break-even count is where 1C's faster queries pay for its slower
    inserts relative to R.
    """
    ctx = context or global_context()
    system, family = "A", "NREF2J"
    db = ctx.database(system, FAMILY_DATASET[family])
    workload_cost = {}
    insert_rate = {}
    for config_name in ("P", "R", "1C"):
        measurement = ctx.measure(system, family, config_name)
        if measurement is None:
            continue
        workload_cost[config_name] = measurement.lower_bound_total()
        # Per-tuple insert rate measured on a small probe batch, with the
        # configuration explicitly (re)built so its indexes are the ones
        # maintained by the insert.
        config = ctx._resolve_config(db, system, family, config_name)
        ctx._apply(db, system, family, config)
        probe = _insert_probe(db)
        seconds = db.insert_rows("neighboring_seq", probe)
        insert_rate[config_name] = seconds / _probe_size(probe)
    rows = []
    for config in ("P", "R", "1C"):
        if config not in insert_rate:
            continue
        per_tuple = insert_rate[config]
        rows.append(
            (config, f"{per_tuple * 1e3:.3f}",)
            + tuple(f"{per_tuple * n:.0f}" for n in batches)
        )
    text = render_table(
        ["config", "ms/tuple"] + [f"{n} tuples (s)" for n in batches],
        rows,
        title="Section 4.4: insertion cost into Neighboring_seq "
              "(linear in the batch size)",
    )
    data = {"insert_rate": insert_rate, "workload_cost": workload_cost}
    if {"R", "1C"} <= set(insert_rate):
        delta_rate = insert_rate["1C"] - insert_rate["R"]
        gain = workload_cost["R"] - workload_cost["1C"]
        if delta_rate > 0 and gain > 0:
            break_even = gain / delta_rate
            text += (
                f"\nBreak-even: inserting {break_even:,.0f} tuples makes "
                "1C (slower inserts, faster queries) equal to R "
                "(faster inserts, slower queries) on insertions + one "
                "workload execution."
            )
            data["break_even_tuples"] = break_even
    return ExperimentResult(
        experiment="sec44",
        title="Impact of insertions and the 1C-vs-R break-even",
        text=text,
        data=data,
    )


def _insert_probe(db, size=1000):
    import numpy as np

    table = db.table("neighboring_seq")
    n = table.row_count
    idx = np.arange(size) % n
    return {
        name: table.column(name)[idx]
        for name in table.column_names()
    }


def _probe_size(probe):
    return len(next(iter(probe.values())))


ALL_EXPERIMENTS = {
    "fig1-2": figure_1_2,
    "fig3": lambda ctx=None: figure_cfc("fig3", ctx),
    "fig4": lambda ctx=None: figure_cfc("fig4", ctx),
    "fig5": lambda ctx=None: figure_cfc("fig5", ctx),
    "fig6": lambda ctx=None: figure_cfc("fig6", ctx),
    "fig7": lambda ctx=None: figure_cfc("fig7", ctx),
    "fig8": lambda ctx=None: figure_cfc("fig8", ctx),
    "fig9": lambda ctx=None: figure_cfc("fig9", ctx),
    "fig10": figure_10,
    "fig11": figure_11,
    "tab1": table_1,
    "tab2": table_2,
    "tab3": table_3,
    "sec43": section_4_3,
    "sec44": section_4_4,
}
