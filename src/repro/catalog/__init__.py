"""Relational schemas and the catalog."""

from .catalog import Catalog
from .schema import ColumnDef, ForeignKey, TableSchema

__all__ = ["Catalog", "ColumnDef", "ForeignKey", "TableSchema"]
