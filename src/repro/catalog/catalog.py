"""The catalog: the set of table schemas of one database."""

from ..common.errors import CatalogError


class Catalog:
    """Name -> :class:`TableSchema` map with domain-aware helpers."""

    def __init__(self, schemas=()):
        self._tables = {}
        for schema in schemas:
            self.add_table(schema)

    def add_table(self, schema):
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already in catalog")
        self._tables[schema.name] = schema

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r} in catalog") from None

    def has_table(self, name):
        return name in self._tables

    @property
    def table_names(self):
        return list(self._tables)

    def tables(self):
        return list(self._tables.values())

    def domains(self):
        """All non-empty domain labels appearing in the catalog."""
        labels = set()
        for schema in self._tables.values():
            for col in schema.columns:
                if col.domain:
                    labels.add(col.domain)
        return sorted(labels)

    def columns_in_domain(self, domain):
        """All ``(table_name, column_name)`` pairs in a given domain."""
        pairs = []
        for schema in self._tables.values():
            for col in schema.columns_in_domain(domain):
                pairs.append((schema.name, col.name))
        return pairs

    def join_pairs(self, same_table=False):
        """Domain-compatible joinable column pairs across the catalog.

        Returns ``(table_a, col_a, table_b, col_b)`` tuples; with
        ``same_table=True`` self-join pairs (same table, same column) are
        included, as required by the NREF3J family.
        """
        pairs = []
        for domain in self.domains():
            cols = self.columns_in_domain(domain)
            for i, (ta, ca) in enumerate(cols):
                for tb, cb in cols[i:]:
                    if ta == tb and ca == cb:
                        if same_table:
                            pairs.append((ta, ca, tb, cb))
                        continue
                    pairs.append((ta, ca, tb, cb))
        return pairs
