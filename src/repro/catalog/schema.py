"""Relational schema objects: columns, tables, and key constraints.

Beyond the usual DDL information, every column carries a *domain* label.
The paper's query families only join columns "in the same domain" so that
generated queries have a meaningful interpretation (Section 3.2.2); the
workload generators read these labels.  Columns can also be flagged
non-indexable (e.g., the long ``sequence`` blobs of NREF), which both the
1C configuration and the families respect.
"""

from dataclasses import dataclass, field

from ..common.errors import CatalogError
from ..storage.types import SQLType


@dataclass(frozen=True)
class ColumnDef:
    """One column of a table schema."""

    name: str
    sql_type: SQLType
    domain: str = ""
    indexable: bool = True

    @property
    def width(self):
        return self.sql_type.width


@dataclass(frozen=True)
class ForeignKey:
    """A FK constraint ``table(columns) -> ref_table(ref_columns)``."""

    columns: tuple
    ref_table: str
    ref_columns: tuple


@dataclass
class TableSchema:
    """Schema of one table: ordered columns, primary key, foreign keys."""

    name: str
    columns: list
    primary_key: tuple = ()
    foreign_keys: list = field(default_factory=list)

    def __post_init__(self):
        seen = set()
        for col in self.columns:
            if col.name in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(col.name)
        for pk_col in self.primary_key:
            if pk_col not in seen:
                raise CatalogError(
                    f"primary key column {pk_col!r} missing from {self.name!r}"
                )
        for fk in self.foreign_keys:
            for fk_col in fk.columns:
                if fk_col not in seen:
                    raise CatalogError(
                        f"foreign key column {fk_col!r} missing from {self.name!r}"
                    )

    def column(self, name):
        """Look up a column definition by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name):
        return any(col.name == name for col in self.columns)

    @property
    def column_names(self):
        return [col.name for col in self.columns]

    def indexable_columns(self):
        """Columns eligible for the 1C configuration and for query templates."""
        return [col for col in self.columns if col.indexable]

    def row_width(self):
        """Average stored row width in bytes (plus a small per-row header)."""
        return sum(col.width for col in self.columns) + 8

    def columns_in_domain(self, domain):
        """Indexable columns whose domain label equals ``domain``."""
        return [
            col
            for col in self.columns
            if col.indexable and col.domain == domain and domain
        ]
