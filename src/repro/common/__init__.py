"""Shared basics: errors, units, RNG, hardware model."""

from .errors import (
    BindError,
    CatalogError,
    ConfigurationError,
    ExecutionError,
    ParseError,
    PlanError,
    QueryTimeout,
    RecommenderError,
    RecommenderGaveUp,
    ReproError,
)
from .hardware import PAGE_SIZE, HardwareProfile, desktop_2004

__all__ = [
    "BindError", "CatalogError", "ConfigurationError", "ExecutionError",
    "ParseError", "PlanError", "QueryTimeout", "RecommenderError",
    "RecommenderGaveUp", "ReproError", "PAGE_SIZE", "HardwareProfile",
    "desktop_2004",
]
