"""Exception hierarchy shared across the repro packages."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """Schema or catalog inconsistency (unknown table/column, duplicate name, ...)."""


class ParseError(ReproError):
    """The SQL text does not belong to the supported benchmark subset."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindError(ReproError):
    """A parsed query references names that do not resolve against the catalog."""


class PlanError(ReproError):
    """The optimizer could not produce a plan for a (bound) query."""


class ExecutionError(ReproError):
    """A physical operator failed while executing a plan."""


class QueryTimeout(ReproError):
    """The virtual clock exceeded the configured timeout during execution.

    Mirrors the paper's 30-minute per-query timeout: queries that raise this
    are reported in the ``t_out`` bin of the histograms.
    """

    def __init__(self, limit_seconds, charged_seconds):
        self.limit_seconds = limit_seconds
        self.charged_seconds = charged_seconds
        super().__init__(
            f"query exceeded the {limit_seconds:g}s timeout "
            f"(virtual clock at {charged_seconds:g}s)"
        )


class RecommenderError(ReproError):
    """The recommender could not run at all (bad inputs, empty workload, ...)."""


class RecommenderGaveUp(RecommenderError):
    """The recommender bailed out without producing any configuration.

    This reproduces the paper's Section 4.1.2 observation that System A's
    recommender "did not output any recommended configuration at all" for
    the 100-query NREF3J workload.
    """

    def __init__(self, reason):
        self.reason = reason
        super().__init__(f"recommender gave up: {reason}")


class ConfigurationError(ReproError):
    """An invalid configuration change was requested (duplicate index, ...)."""
