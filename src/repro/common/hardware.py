"""Virtual hardware model.

The paper measured wall-clock elapsed times on Pentium-4 desktop PCs whose
main memory was an order of magnitude smaller than the raw data.  We run at
a reduced data scale, so instead of wall clock we use a *virtual clock*: the
executor runs plans for real (true cardinalities) and charges this
deterministic cost model.  The optimizer's estimator uses the *same*
formulas with estimated cardinalities, so — exactly as the paper's Section 5
argues — every gap between estimated and actual cost is a cardinality
estimation error.

The constants are tuned so that, at the default benchmark scale, the
interesting dynamics of the paper appear: selective index plans land around
1-10 virtual seconds, full scans of the largest tables land in the minutes,
and plans with large intermediate results exceed the 1800 s timeout.
"""

from dataclasses import dataclass, replace

PAGE_SIZE = 8192
"""Bytes per page; all page math in the library uses this size."""


@dataclass(frozen=True)
class HardwareProfile:
    """Cost constants for one virtual machine.

    The paper used four different desktop PCs; accordingly each "system"
    (A, B, C) carries its own profile, which is why Table 1 shows different
    build times for identical configurations on different systems.
    """

    name: str
    seq_page_read_s: float    # sequential page read
    random_page_read_s: float  # random page read (index descents, heap fetches)
    page_write_s: float        # page write (index builds, spills)
    cpu_row_s: float           # per-row CPU (predicates, projections, output)
    hash_row_s: float          # per-row hash-table build/probe surcharge
    sort_row_s: float          # per-comparison sort CPU
    work_mem_bytes: int        # memory for hashes/sorts before spilling
    buffer_pool_bytes: int     # reserved knob for buffer-cache modeling

    def scaled(self, factor, name=None):
        """A profile with all time constants multiplied by ``factor``."""
        return replace(
            self,
            name=name or f"{self.name}*{factor:g}",
            seq_page_read_s=self.seq_page_read_s * factor,
            random_page_read_s=self.random_page_read_s * factor,
            page_write_s=self.page_write_s * factor,
            cpu_row_s=self.cpu_row_s * factor,
            hash_row_s=self.hash_row_s * factor,
            sort_row_s=self.sort_row_s * factor,
        )


def desktop_2004(name="desktop-2004"):
    """The reference virtual desktop; see module docstring for tuning goals."""
    return HardwareProfile(
        name=name,
        seq_page_read_s=0.1,
        random_page_read_s=0.3,
        page_write_s=0.12,
        cpu_row_s=2.0e-5,
        hash_row_s=2.0e-5,
        sort_row_s=4.0e-6,
        work_mem_bytes=16 * 1024 * 1024,
        buffer_pool_bytes=4 * 1024 * 1024,
    )


def pages_for_bytes(n_bytes):
    """Number of pages needed to hold ``n_bytes`` (at least 1)."""
    return max(1, -(-int(n_bytes) // PAGE_SIZE))
