"""The ``REPRO_*`` environment-knob registry — the one place the
environment enters the system.

Every behavioural environment variable of the reproduction (cache
switches, pool widths, shard layout, server limits, bench scale) is
*declared* here with its type, default, and one-line contract, and every
read of one goes through :func:`text` / :func:`flag` — never through a
bare ``os.environ`` lookup.  The lint rule ``KNB001`` machine-checks the
contract project-wide: a ``REPRO_*`` read outside this module, a knob
referenced but not registered, a registered knob without a row in
``docs/cli.md``, or one no test under ``tests/`` names, each fail CI.
The registry is what makes "which knobs exist and what do they do"
answerable from one file instead of a grep.

Knob *semantics* (clamping, error messages, on/off vocabularies) stay
with their owning modules — ``repro.storage.sharding`` still decides
that a shard count below zero clamps to zero — so registering a knob
changes no behaviour; it only centralizes the environment access and
the declaration.  See "Registering a knob" in ``docs/static-analysis.md``.
"""

import os
from dataclasses import dataclass, field

#: Values that turn a boolean knob off (case-insensitive); anything
#: else, including the empty string and absence, leaves it at its
#: declared default.  Shared by every flag knob so the vocabulary
#: cannot drift between caches.
FLAG_DISABLED = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class Knob:
    """One registered environment knob."""

    name: str           #: the ``REPRO_*`` environment variable
    kind: str           #: ``flag`` | ``int`` | ``float`` | ``str``
    default: object     #: value used when the variable is unset
    description: str    #: one-line contract (mirrored in docs/cli.md)
    choices: tuple = field(default=())

    def to_json(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "default": self.default,
            "description": self.description,
            **({"choices": list(self.choices)} if self.choices else {}),
        }


_REGISTRY = {}


def register(name, kind="str", default=None, description="", choices=()):
    """Declare a knob; returns the :class:`Knob`.

    Registration is idempotent for identical declarations (module
    reloads) but conflicting re-registration is a programming error.

    Raises:
        ValueError: ``name`` is not ``REPRO_*`` upper-case, or the knob
            is already registered with a different declaration.
    """
    if not name.startswith("REPRO_") or name != name.upper():
        raise ValueError(f"knob name {name!r} must be upper-case REPRO_*")
    knob = Knob(name, kind, default, description, tuple(choices))
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing != knob:
            raise ValueError(f"conflicting re-registration of {name!r}")
        return existing
    _REGISTRY[name] = knob
    return knob


def is_registered(name):
    """Whether ``name`` is a declared knob."""
    return name in _REGISTRY


def get(name):
    """The :class:`Knob` declared under ``name``.

    Raises:
        KeyError: the knob was never registered.
    """
    return _REGISTRY[name]


def registered():
    """Every declared knob, sorted by name (a stable tuple)."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def text(name, default=None):
    """The raw environment text of a registered knob.

    This is the single sanctioned ``os.environ`` access for ``REPRO_*``
    variables; owning modules parse/clamp the returned text themselves
    so their error messages and semantics are unchanged by the registry.

    Args:
        name: a registered knob name.
        default: returned when the variable is unset (``None`` by
            default — callers distinguish "unset" from any set value).

    Raises:
        KeyError: the knob was never registered — an unregistered read
            is exactly what ``KNB001`` exists to prevent, so the
            registry refuses it at runtime too.
    """
    knob = _REGISTRY[name]
    raw = os.environ.get(knob.name)
    return default if raw is None else raw


def flag(name, override=None):
    """A boolean knob: ``override`` wins, else the environment decides.

    The off-vocabulary is :data:`FLAG_DISABLED`; unset means the knob's
    declared default.

    Raises:
        KeyError: the knob was never registered.
    """
    if override is not None:
        return bool(override)
    knob = _REGISTRY[name]
    raw = os.environ.get(knob.name)
    if raw is None:
        return bool(knob.default)
    return raw.strip().lower() not in FLAG_DISABLED


# ----------------------------------------------------------------------
# The declarations.  One block per subsystem, mirroring the environment
# table in docs/cli.md (KNB001 cross-checks name-for-name).

# Runtime
register(
    "REPRO_JOBS", "int", 1,
    "measurement worker-pool width (1 = serial; parallel output is "
    "byte-identical to serial)",
)
register(
    "REPRO_CACHE_DIR", "str", None,
    "artifact-store persistence directory (unset = memory only)",
)

# Bench scale (BenchSettings.from_env and the benchmarks/ drivers)
register("REPRO_SCALE", "float", 1.0, "data scale factor")
register(
    "REPRO_WORKLOAD_SIZE", "int", 100, "queries per sampled workload",
)
register(
    "REPRO_TIMEOUT", "float", 1800.0,
    "per-query virtual timeout in seconds",
)
register(
    "REPRO_ABLATION_SCALE", "float", 0.25,
    "reduced data scale for the ablation studies",
)
register(
    "REPRO_ABLATION_WORKLOAD", "int", 25,
    "reduced workload size for the ablation studies",
)

# Caches (all byte-identical on/off — the repo's core contract)
register(
    "REPRO_WHATIF_CACHE", "flag", True,
    "what-if cost service memoization (off = serial per-candidate loop)",
)
register(
    "REPRO_DICT_CACHE", "flag", True,
    "per-database column-dictionary cache (off = per-consumer "
    "np.unique/np.lexsort)",
)
register(
    "REPRO_PLAN_TEMPLATES", "flag", True,
    "cross-query bind/plan template caches (off = per-query "
    "parse/bind/enumerate)",
)
register(
    "REPRO_SUBPLAN_CACHE", "flag", True,
    "cross-query subplan cache: semijoin pairs, filter masks, join "
    "domains (off = recompute per query)",
)

# Storage layout and intra-query execution
register(
    "REPRO_SHARDS", "int", 0,
    "horizontal shard count per table (0 = contiguous storage)",
)
register(
    "REPRO_SHARD_SCHEME", "str", "hash",
    "shard partitioning scheme", choices=("hash", "range"),
)
register(
    "REPRO_SHARD_JOBS", "int", 1,
    "shard worker processes (1 = serial in-process)",
)
register(
    "REPRO_MORSEL_ROWS", "int", 0,
    "morsel size in rows for morsel-parallel kernels (0 = off; "
    "positive values clamp up to the 1024-row minimum)",
)
register(
    "REPRO_LATE_MAT", "flag", True,
    "late-materialization executor: selection-vector batches, plan-time "
    "column pruning, and fused predicate kernels (figures are "
    "byte-identical either way)",
)

# Tuning server (python -m repro.server flag fallbacks)
register("REPRO_SERVER_HOST", "str", "127.0.0.1", "server bind address")
register("REPRO_SERVER_PORT", "int", 8451, "server TCP port")
register(
    "REPRO_SERVER_WORKERS", "int", 2, "tuning-server job worker threads",
)
register(
    "REPRO_SERVER_QUEUE", "int", 8, "tuning-server pending-job bound",
)
register(
    "REPRO_SERVER_MAX_SESSIONS", "int", 8,
    "tuning-server resident-session cap",
)
register(
    "REPRO_SERVER_SESSION_TTL", "float", 3600.0,
    "tuning-server idle session expiry in seconds",
)
