"""Deterministic random-number helpers.

Every stochastic component (data generators, query-family constant
selection, workload sampling) takes an explicit seed so experiments are
exactly reproducible.  Child streams are derived with ``spawn`` so that
independent components never share a stream.
"""

import numpy as np


def make_rng(seed):
    """Create a numpy Generator from an integer seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng, label):
    """Derive an independent child generator keyed by a string label.

    The label is hashed into the child seed so that adding a new consumer
    does not perturb the streams of existing consumers.
    """
    digest = np.frombuffer(label.encode("utf-8"), dtype=np.uint8)
    salt = int(digest.sum()) + 1000003 * len(label)
    child_seed = int(rng.integers(0, 2**32 - 1)) ^ salt
    return np.random.default_rng(child_seed)


def zipf_weights(n, z):
    """Zipfian weight vector ``w_i ∝ 1 / i**z`` over ranks 1..n, normalized.

    ``z = 0`` degenerates to the uniform distribution; the paper's skewed
    TPC-H database uses ``z = 1`` (Chaudhuri & Narasayya's generator).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(z))
    return weights / weights.sum()


def zipf_choice(rng, values, size, z):
    """Sample ``size`` items from ``values`` with Zipfian rank weights."""
    weights = zipf_weights(len(values), z)
    idx = rng.choice(len(values), size=size, p=weights)
    return np.asarray(values)[idx]
