"""Byte and time unit helpers used in cost accounting and reports."""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def format_bytes(n):
    """Render a byte count the way the paper's Table 1 does (GB with 1 decimal).

    >>> format_bytes(13.5 * GIB)
    '13.5 GB'
    """
    if n >= GIB:
        return f"{n / GIB:.1f} GB"
    if n >= MIB:
        return f"{n / MIB:.1f} MB"
    if n >= KIB:
        return f"{n / KIB:.1f} KB"
    return f"{int(n)} B"


def format_seconds(seconds):
    """Render a duration compactly (s / min / h) for report tables."""
    if seconds < 120:
        return f"{seconds:.1f} s"
    minutes = seconds / 60.0
    if minutes < 180:
        return f"{minutes:.0f} min"
    return f"{minutes / 60.0:.1f} h"


def minutes(seconds):
    """Convert seconds to minutes (Table 1 reports build times in minutes)."""
    return seconds / 60.0
