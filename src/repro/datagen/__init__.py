"""Benchmark data generators."""

from .nref import generate_nref, load_nref_database, nref_catalog
from .tpch import generate_tpch, load_tpch_database, tpch_catalog

__all__ = [
    "generate_nref", "generate_tpch", "load_nref_database",
    "load_tpch_database", "nref_catalog", "tpch_catalog",
]
