"""Synthetic NREF database generator.

The real NREF release 1.34 (17 GB of XML, 6.5 GB raw relational) is not
redistributable, so this generator synthesizes a database with the same
six-table schema, the paper's relative table cardinalities
(Protein : Source : Taxonomy : Organism : Neighboring_seq : Identical_seq
≈ 1.1M : 3M : 15.1M : 1.2M : 78.7M : 0.5M), shared value domains across
columns (so the query families can form meaningful joins), and heavily
skewed value-frequency distributions (so the families' constant-selection
rules — k1/k2/k3 frequencies an order of magnitude apart, "values
occurring fewer than 4 times" — are all satisfiable).

``scale=1.0`` is 1/100 of the paper's row counts, sized so that the
virtual hardware model puts full scans of Neighboring_seq in the minutes
and selective index plans in the seconds, mirroring the paper's regime.
"""

from dataclasses import dataclass

import numpy as np

from ..catalog.catalog import Catalog
from ..catalog.schema import ColumnDef, ForeignKey, TableSchema
from ..common.rng import make_rng, spawn
from ..engine.database import Database
from ..storage.types import date, float_, integer, varchar
from .text import name_pool, sequence_strings, zipf_column

PAPER_ROWS = {
    "protein": 1_100_000,
    "source": 3_000_000,
    "taxonomy": 15_100_000,
    "organism": 1_200_000,
    "neighboring_seq": 78_700_000,
    "identical_seq": 500_000,
}

BASE_DIVISOR = 100
SOURCE_DATABASES = [
    "SwissProt", "PIR-PSD", "TrEMBL", "RefSeq", "GenPept", "PDB",
]


@dataclass(frozen=True)
class NrefScale:
    """Row counts for one generated instance."""

    protein: int
    source: int
    taxonomy: int
    organism: int
    neighboring_seq: int
    identical_seq: int

    @classmethod
    def of(cls, scale):
        """Scale relative to the default benchmark instance."""
        return cls(
            **{
                name: max(20, int(rows / BASE_DIVISOR * scale))
                for name, rows in PAPER_ROWS.items()
            }
        )


def nref_catalog():
    """The NREF relational schema of Section 1.1 (PKs underlined there)."""
    protein = TableSchema(
        "protein",
        [
            ColumnDef("nref_id", varchar(11), "nref"),
            ColumnDef("p_name", varchar(24), "name"),
            ColumnDef("last_updated", date(), "date"),
            ColumnDef("sequence", varchar(280), "", indexable=False),
            ColumnDef("length", integer(), "length"),
        ],
        primary_key=("nref_id",),
    )
    source = TableSchema(
        "source",
        [
            ColumnDef("nref_id", varchar(11), "nref"),
            ColumnDef("p_id", varchar(12), "accession"),
            ColumnDef("taxon_id", integer(), "taxon"),
            ColumnDef("accession", varchar(12), "accession"),
            ColumnDef("p_name", varchar(24), "name"),
            ColumnDef("source", varchar(10), "dbname"),
        ],
        primary_key=("nref_id", "p_id"),
        foreign_keys=[ForeignKey(("nref_id",), "protein", ("nref_id",))],
    )
    taxonomy = TableSchema(
        "taxonomy",
        [
            ColumnDef("nref_id", varchar(11), "nref"),
            ColumnDef("taxon_id", integer(), "taxon"),
            ColumnDef("lineage", varchar(64), "lineage"),
            ColumnDef("species_name", varchar(28), "name"),
            ColumnDef("common_name", varchar(28), "name"),
        ],
        primary_key=("nref_id", "taxon_id"),
        foreign_keys=[ForeignKey(("nref_id",), "protein", ("nref_id",))],
    )
    organism = TableSchema(
        "organism",
        [
            ColumnDef("nref_id", varchar(11), "nref"),
            ColumnDef("ordinal", integer(), ""),
            ColumnDef("taxon_id", integer(), "taxon"),
            ColumnDef("name", varchar(28), "name"),
        ],
        primary_key=("nref_id", "ordinal"),
        foreign_keys=[ForeignKey(("nref_id",), "protein", ("nref_id",))],
    )
    neighboring = TableSchema(
        "neighboring_seq",
        [
            ColumnDef("nref_id_1", varchar(11), "nref"),
            ColumnDef("ordinal", integer(), ""),
            ColumnDef("nref_id_2", varchar(11), "nref"),
            ColumnDef("taxon_id_2", integer(), "taxon"),
            ColumnDef("length_2", integer(), "length"),
            ColumnDef("score", float_(), ""),
            ColumnDef("overlap_length", integer(), "length"),
            ColumnDef("start_1", integer(), ""),
            ColumnDef("start_2", integer(), ""),
            ColumnDef("end_1", integer(), ""),
            ColumnDef("end_2", integer(), ""),
        ],
        primary_key=("nref_id_1", "ordinal"),
        foreign_keys=[ForeignKey(("nref_id_1",), "protein", ("nref_id",))],
    )
    identical = TableSchema(
        "identical_seq",
        [
            ColumnDef("nref_id_1", varchar(11), "nref"),
            ColumnDef("ordinal", integer(), ""),
            ColumnDef("nref_id_2", varchar(11), "nref"),
            ColumnDef("taxon_id", integer(), "taxon"),
        ],
        primary_key=("nref_id_1", "ordinal"),
        foreign_keys=[ForeignKey(("nref_id_1",), "protein", ("nref_id",))],
    )
    return Catalog(
        [protein, source, taxonomy, organism, neighboring, identical]
    )


def _group_ordinals(keys):
    """1-based running ordinal within each key group (for composite PKs)."""
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    change = np.ones(len(keys), dtype=bool)
    change[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group_start = np.maximum.accumulate(
        np.where(change, np.arange(len(keys)), 0)
    )
    ordinals_sorted = np.arange(len(keys)) - group_start + 1
    ordinals = np.empty(len(keys), dtype=np.int64)
    ordinals[order] = ordinals_sorted
    return ordinals


def generate_nref(scale=1.0, seed=1405):
    """Generate all six tables; returns ``{table: {column: array}}``."""
    sizes = scale if isinstance(scale, NrefScale) else NrefScale.of(scale)
    rng = make_rng(seed)

    nref_ids = np.array(
        [f"NF{i:08d}" for i in range(sizes.protein)], dtype=object
    )
    n_names = max(8, sizes.protein // 6)
    names = name_pool(spawn(rng, "names"), n_names, "protein")
    n_species = max(8, sizes.taxonomy // 40)
    species = name_pool(spawn(rng, "species"), n_species, "species")
    n_lineages = max(6, sizes.taxonomy // 75)
    lineages = name_pool(spawn(rng, "lineages"), n_lineages, "lineage")
    n_taxa = max(10, sizes.taxonomy // 25)
    taxa = np.arange(1, n_taxa + 1) * 7 + 13

    r = spawn(rng, "protein")
    protein = {
        "nref_id": nref_ids,
        "p_name": zipf_column(r, names, sizes.protein, 0.9),
        "last_updated": r.integers(11000, 12800, sizes.protein),
        "sequence": sequence_strings(r, sizes.protein),
        "length": np.asarray(
            (r.lognormal(5.6, 0.6, sizes.protein)).astype(np.int64)
        ).clip(30, 5000),
    }

    r = spawn(rng, "source")
    src_nref = zipf_column(r, nref_ids, sizes.source, 0.5)
    source = {
        "nref_id": src_nref,
        "p_id": np.array(
            [f"P{i:09d}" for i in range(sizes.source)], dtype=object
        ),
        "taxon_id": zipf_column(r, taxa, sizes.source, 1.0),
        "accession": np.array(
            [f"A{r.integers(0, sizes.source * 2):09d}"
             for _ in range(sizes.source)],
            dtype=object,
        ),
        "p_name": zipf_column(r, names, sizes.source, 1.1),
        "source": zipf_column(
            r, np.array(SOURCE_DATABASES, dtype=object), sizes.source, 0.6
        ),
    }

    r = spawn(rng, "taxonomy")
    tax_lineage = zipf_column(r, lineages, sizes.taxonomy, 1.05)
    taxonomy = {
        "nref_id": zipf_column(r, nref_ids, sizes.taxonomy, 0.4),
        "taxon_id": zipf_column(r, taxa, sizes.taxonomy, 1.0),
        "lineage": tax_lineage,
        "species_name": zipf_column(r, species, sizes.taxonomy, 1.0),
        "common_name": zipf_column(r, species, sizes.taxonomy, 1.2),
    }

    r = spawn(rng, "organism")
    organism = {
        "nref_id": zipf_column(r, nref_ids, sizes.organism, 0.3),
        "ordinal": None,
        "taxon_id": zipf_column(r, taxa, sizes.organism, 1.0),
        "name": zipf_column(r, species, sizes.organism, 1.0),
    }

    r = spawn(rng, "neighboring")
    n = sizes.neighboring_seq
    starts = r.integers(1, 900, n)
    spans = r.integers(20, 700, n)
    neighboring = {
        "nref_id_1": zipf_column(r, nref_ids, n, 0.7),
        "ordinal": None,
        "nref_id_2": zipf_column(r, nref_ids, n, 0.5),
        "taxon_id_2": zipf_column(r, taxa, n, 1.0),
        "length_2": (r.lognormal(5.6, 0.6, n)).astype(np.int64).clip(30, 5000),
        "score": np.round(r.uniform(10.0, 2000.0, n), 1),
        "overlap_length": (spans * r.uniform(0.4, 1.0, n)).astype(np.int64),
        "start_1": starts,
        "start_2": r.integers(1, 900, n),
        "end_1": starts + spans,
        "end_2": r.integers(900, 1800, n),
    }

    r = spawn(rng, "identical")
    m = sizes.identical_seq
    identical = {
        "nref_id_1": zipf_column(r, nref_ids, m, 0.4),
        "ordinal": None,
        "nref_id_2": zipf_column(r, nref_ids, m, 0.4),
        "taxon_id": zipf_column(r, taxa, m, 1.0),
    }

    organism["ordinal"] = _group_ordinals(organism["nref_id"])
    neighboring["ordinal"] = _group_ordinals(neighboring["nref_id_1"])
    identical["ordinal"] = _group_ordinals(identical["nref_id_1"])

    return {
        "protein": protein,
        "source": source,
        "taxonomy": taxonomy,
        "organism": organism,
        "neighboring_seq": neighboring,
        "identical_seq": identical,
    }


def load_nref_database(system, scale=1.0, seed=1405, name="nref"):
    """Generate NREF and load it into a fresh :class:`Database`."""
    catalog = nref_catalog()
    database = Database(catalog, system, name=name)
    for table, columns in generate_nref(scale, seed).items():
        database.load_table(table, columns)
    database.collect_statistics()
    return database
