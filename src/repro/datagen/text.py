"""Text/value pool helpers shared by the data generators."""

import numpy as np

from ..common.rng import zipf_weights

GREEK = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
    "iota", "kappa", "lambda", "mu", "nu", "xi", "omicron", "pi", "rho",
    "sigma", "tau", "upsilon", "phi", "chi", "psi", "omega",
]

PROTEIN_ROLES = [
    "kinase", "polymerase", "receptor", "transferase", "hydrolase",
    "ligase", "isomerase", "oxidase", "reductase", "synthase", "protease",
    "phosphatase", "transporter", "channel", "repressor", "activator",
]

ORGANISM_STEMS = [
    "Homo", "Mus", "Rattus", "Danio", "Drosophila", "Caenorhabditis",
    "Saccharomyces", "Escherichia", "Bacillus", "Arabidopsis", "Oryza",
    "Gallus", "Bos", "Sus", "Canis", "Macaca", "Pan", "Xenopus",
]

ORGANISM_EPITHETS = [
    "sapiens", "musculus", "norvegicus", "rerio", "melanogaster",
    "elegans", "cerevisiae", "coli", "subtilis", "thaliana", "sativa",
    "gallus", "taurus", "scrofa", "familiaris", "mulatta", "troglodytes",
    "laevis",
]

LINEAGE_ROOTS = [
    "Eukaryota; Metazoa; Chordata",
    "Eukaryota; Metazoa; Arthropoda",
    "Eukaryota; Fungi; Ascomycota",
    "Eukaryota; Viridiplantae; Streptophyta",
    "Bacteria; Proteobacteria",
    "Bacteria; Firmicutes",
    "Archaea; Euryarchaeota",
    "Viruses; dsDNA viruses; Polyomaviridae",
    "Viruses; ssRNA viruses; Retroviridae",
]


def name_pool(rng, size, kind="protein"):
    """A pool of ``size`` human-readable names of the given kind."""
    names = []
    if kind == "protein":
        for i in range(size):
            greek = GREEK[int(rng.integers(len(GREEK)))]
            role = PROTEIN_ROLES[int(rng.integers(len(PROTEIN_ROLES)))]
            names.append(f"{greek}-{role} {i % 97 + 1}")
    elif kind == "species":
        for i in range(size):
            stem = ORGANISM_STEMS[i % len(ORGANISM_STEMS)]
            epithet = ORGANISM_EPITHETS[int(rng.integers(len(ORGANISM_EPITHETS)))]
            names.append(f"{stem} {epithet} {i // len(ORGANISM_STEMS) + 1}")
    elif kind == "lineage":
        for i in range(size):
            root = LINEAGE_ROOTS[i % len(LINEAGE_ROOTS)]
            names.append(f"{root}; clade-{i + 1}")
    else:
        raise ValueError(f"unknown pool kind {kind!r}")
    return np.array(names, dtype=object)


def zipf_column(rng, pool, size, z):
    """Sample a column of ``size`` values from ``pool`` with Zipf(z) weights.

    The pool is shuffled first so that rank order does not correlate with
    pool construction order.
    """
    pool = np.asarray(pool)
    order = rng.permutation(len(pool))
    weights = zipf_weights(len(pool), z)
    idx = rng.choice(len(pool), size=size, p=weights)
    return pool[order][idx]


def sequence_strings(rng, size, mean_length=40):
    """Fake amino-acid sequences (non-indexable payload data)."""
    alphabet = np.array(list("ACDEFGHIKLMNPQRSTVWY"), dtype=object)
    lengths = rng.poisson(mean_length, size).clip(10, 4 * mean_length)
    return np.array(
        ["".join(rng.choice(alphabet, int(n))) for n in lengths],
        dtype=object,
    )
