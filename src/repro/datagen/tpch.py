"""TPC-H database generator (uniform and skewed).

A scaled-down dbgen: all eight tables with the standard schema (wide
comment columns omitted to keep rows at realistic-but-modest widths) and
standard PK/FK relationships.  ``zipf=0.0`` produces the usual uniform
value distributions; ``zipf=1.0`` reproduces the paper's skewed database,
generated "with a Zipfian factor of 1" using Chaudhuri & Narasayya's
skewed TPC-D generator — here the same Zipf weighting is applied to every
attribute-value and foreign-key choice.

``scale=1.0`` yields a 240k-row lineitem (1/250 of the paper's 10 GB
databases), matching the NREF instance's virtual-hardware regime.
"""

import numpy as np

from ..catalog.catalog import Catalog
from ..catalog.schema import ColumnDef, ForeignKey, TableSchema
from ..common.rng import make_rng, spawn
from ..engine.database import Database
from ..storage.types import date, float_, integer, varchar
from .text import zipf_column

BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 400,
    "customer": 6_000,
    "part": 8_000,
    "partsupp": 32_000,
    "orders": 60_000,
    "lineitem": 240_000,
}

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
CONTAINERS = [
    f"{a} {b}"
    for a in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]
NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# o_orderdate range in day numbers: 1992-01-01 .. 1998-08-02.
DATE_LO, DATE_HI = 8036, 10440


def tpch_catalog():
    """The TPC-H schema (rev 1.3.0) minus the wide comment columns."""
    region = TableSchema(
        "region",
        [
            ColumnDef("r_regionkey", integer(), "regionkey"),
            ColumnDef("r_name", varchar(12), "region_name"),
        ],
        primary_key=("r_regionkey",),
    )
    nation = TableSchema(
        "nation",
        [
            ColumnDef("n_nationkey", integer(), "nationkey"),
            ColumnDef("n_name", varchar(16), "nation_name"),
            ColumnDef("n_regionkey", integer(), "regionkey"),
        ],
        primary_key=("n_nationkey",),
        foreign_keys=[ForeignKey(("n_regionkey",), "region", ("r_regionkey",))],
    )
    supplier = TableSchema(
        "supplier",
        [
            ColumnDef("s_suppkey", integer(), "suppkey"),
            ColumnDef("s_name", varchar(18), ""),
            ColumnDef("s_nationkey", integer(), "nationkey"),
            ColumnDef("s_acctbal", float_(), "balance"),
            ColumnDef("s_phone", varchar(15), "", indexable=False),
        ],
        primary_key=("s_suppkey",),
        foreign_keys=[
            ForeignKey(("s_nationkey",), "nation", ("n_nationkey",))
        ],
    )
    customer = TableSchema(
        "customer",
        [
            ColumnDef("c_custkey", integer(), "custkey"),
            ColumnDef("c_name", varchar(18), ""),
            ColumnDef("c_nationkey", integer(), "nationkey"),
            ColumnDef("c_acctbal", float_(), "balance"),
            ColumnDef("c_mktsegment", varchar(10), "segment"),
        ],
        primary_key=("c_custkey",),
        foreign_keys=[
            ForeignKey(("c_nationkey",), "nation", ("n_nationkey",))
        ],
    )
    part = TableSchema(
        "part",
        [
            ColumnDef("p_partkey", integer(), "partkey"),
            ColumnDef("p_name", varchar(30), "", indexable=False),
            ColumnDef("p_brand", varchar(10), "brand"),
            ColumnDef("p_type", varchar(24), "ptype"),
            ColumnDef("p_size", integer(), "size"),
            ColumnDef("p_container", varchar(10), "container"),
            ColumnDef("p_retailprice", float_(), "price"),
        ],
        primary_key=("p_partkey",),
    )
    partsupp = TableSchema(
        "partsupp",
        [
            ColumnDef("ps_partkey", integer(), "partkey"),
            ColumnDef("ps_suppkey", integer(), "suppkey"),
            ColumnDef("ps_availqty", integer(), "quantity"),
            ColumnDef("ps_supplycost", float_(), "price"),
        ],
        primary_key=("ps_partkey", "ps_suppkey"),
        foreign_keys=[
            ForeignKey(("ps_partkey",), "part", ("p_partkey",)),
            ForeignKey(("ps_suppkey",), "supplier", ("s_suppkey",)),
        ],
    )
    orders = TableSchema(
        "orders",
        [
            ColumnDef("o_orderkey", integer(), "orderkey"),
            ColumnDef("o_custkey", integer(), "custkey"),
            ColumnDef("o_orderstatus", varchar(1), "status"),
            ColumnDef("o_totalprice", float_(), "price"),
            ColumnDef("o_orderdate", date(), "date"),
            ColumnDef("o_orderpriority", varchar(15), "priority"),
            ColumnDef("o_shippriority", integer(), ""),
        ],
        primary_key=("o_orderkey",),
        foreign_keys=[
            ForeignKey(("o_custkey",), "customer", ("c_custkey",))
        ],
    )
    lineitem = TableSchema(
        "lineitem",
        [
            ColumnDef("l_orderkey", integer(), "orderkey"),
            ColumnDef("l_linenumber", integer(), ""),
            ColumnDef("l_partkey", integer(), "partkey"),
            ColumnDef("l_suppkey", integer(), "suppkey"),
            ColumnDef("l_quantity", integer(), "quantity"),
            ColumnDef("l_extendedprice", float_(), "price"),
            ColumnDef("l_discount", float_(), ""),
            ColumnDef("l_tax", float_(), ""),
            ColumnDef("l_returnflag", varchar(1), "status"),
            ColumnDef("l_linestatus", varchar(1), "status"),
            ColumnDef("l_shipdate", date(), "date"),
            ColumnDef("l_commitdate", date(), "date"),
            ColumnDef("l_receiptdate", date(), "date"),
            ColumnDef("l_shipmode", varchar(10), "shipmode"),
        ],
        primary_key=("l_orderkey", "l_linenumber"),
        foreign_keys=[
            ForeignKey(("l_orderkey",), "orders", ("o_orderkey",)),
            ForeignKey(("l_partkey",), "part", ("p_partkey",)),
            ForeignKey(("l_suppkey",), "supplier", ("s_suppkey",)),
            ForeignKey(
                ("l_partkey", "l_suppkey"),
                "partsupp",
                ("ps_partkey", "ps_suppkey"),
            ),
        ],
    )
    return Catalog(
        [region, nation, supplier, customer, part, partsupp, orders, lineitem]
    )


def _pick(rng, pool, size, z):
    """Value choice helper: uniform when z == 0, Zipfian otherwise."""
    pool = np.asarray(pool, dtype=object if isinstance(pool[0], str) else None)
    if z <= 0:
        idx = rng.integers(0, len(pool), size)
        return pool[idx]
    return zipf_column(rng, pool, size, z)


def generate_tpch(scale=1.0, zipf=0.0, seed=1992):
    """Generate all eight tables; returns ``{table: {column: array}}``."""
    rows = {
        name: max(5, int(count * scale)) if name not in ("region", "nation")
        else count
        for name, count in BASE_ROWS.items()
    }
    rng = make_rng(seed)
    z = float(zipf)

    region = {
        "r_regionkey": np.arange(rows["region"]),
        "r_name": np.array(REGIONS[: rows["region"]], dtype=object),
    }
    nation = {
        "n_nationkey": np.arange(rows["nation"]),
        "n_name": np.array(NATIONS[: rows["nation"]], dtype=object),
        "n_regionkey": np.arange(rows["nation"]) % rows["region"],
    }

    r = spawn(rng, "supplier")
    n = rows["supplier"]
    supplier = {
        "s_suppkey": np.arange(1, n + 1),
        "s_name": np.array(
            [f"Supplier#{i:09d}" for i in range(1, n + 1)], dtype=object
        ),
        "s_nationkey": _pick(r, np.arange(rows["nation"]), n, z),
        "s_acctbal": np.round(r.uniform(-999.99, 9999.99, n), 2),
        "s_phone": np.array(
            [f"{r.integers(10, 35)}-{r.integers(100, 999)}-"
             f"{r.integers(100, 999)}-{r.integers(1000, 9999)}"
             for _ in range(n)],
            dtype=object,
        ),
    }

    r = spawn(rng, "customer")
    n = rows["customer"]
    customer = {
        "c_custkey": np.arange(1, n + 1),
        "c_name": np.array(
            [f"Customer#{i:09d}" for i in range(1, n + 1)], dtype=object
        ),
        "c_nationkey": _pick(r, np.arange(rows["nation"]), n, z),
        "c_acctbal": np.round(r.uniform(-999.99, 9999.99, n), 2),
        "c_mktsegment": _pick(r, SEGMENTS, n, z),
    }

    r = spawn(rng, "part")
    n = rows["part"]
    part = {
        "p_partkey": np.arange(1, n + 1),
        "p_name": np.array(
            [f"part {i} shade {i % 91}" for i in range(1, n + 1)],
            dtype=object,
        ),
        "p_brand": _pick(r, BRANDS, n, z),
        "p_type": _pick(r, TYPES, n, z),
        "p_size": _pick(r, np.arange(1, 51), n, z).astype(np.int64),
        "p_container": _pick(r, CONTAINERS, n, z),
        "p_retailprice": np.round(
            900.0 + (np.arange(1, n + 1) % 1000) / 10.0
            + 100.0 * (np.arange(1, n + 1) % 10),
            2,
        ),
    }

    r = spawn(rng, "partsupp")
    n = rows["partsupp"]
    suppliers_per_part = max(1, n // rows["part"])
    ps_partkey = np.repeat(
        np.arange(1, rows["part"] + 1), suppliers_per_part
    )[:n]
    ps_suppkey = (
        (ps_partkey * 7 + np.arange(n) % suppliers_per_part * 13)
        % rows["supplier"] + 1
    )
    partsupp = {
        "ps_partkey": ps_partkey,
        "ps_suppkey": ps_suppkey,
        "ps_availqty": _pick(r, np.arange(1, 10_000, 7), n, z).astype(np.int64),
        "ps_supplycost": np.round(
            _pick(r, np.round(np.linspace(1.0, 1000.0, 500), 2), n, z)
            .astype(np.float64),
            2,
        ),
    }

    r = spawn(rng, "orders")
    n = rows["orders"]
    orders = {
        "o_orderkey": np.arange(1, n + 1),
        "o_custkey": _pick(
            r, np.arange(1, rows["customer"] + 1), n, z
        ).astype(np.int64),
        "o_orderstatus": _pick(r, ["F", "O", "P"], n, z),
        "o_totalprice": np.round(
            _pick(r, np.round(np.linspace(850.0, 450_000.0, 2000), 2), n, z)
            .astype(np.float64),
            2,
        ),
        "o_orderdate": _pick(
            r, np.arange(DATE_LO, DATE_HI), n, z
        ).astype(np.int64),
        "o_orderpriority": _pick(r, PRIORITIES, n, z),
        "o_shippriority": np.zeros(n, dtype=np.int64),
    }

    r = spawn(rng, "lineitem")
    n = rows["lineitem"]
    l_orderkey = _pick(
        r, np.arange(1, rows["orders"] + 1), n, z
    ).astype(np.int64)
    order = np.argsort(l_orderkey, kind="stable")
    l_orderkey = l_orderkey[order]
    linenumber = np.ones(n, dtype=np.int64)
    same = np.zeros(n, dtype=bool)
    same[1:] = l_orderkey[1:] == l_orderkey[:-1]
    run = np.arange(n)
    start = np.maximum.accumulate(np.where(~same, run, 0))
    linenumber = run - start + 1
    shipdate = (
        orders["o_orderdate"][l_orderkey - 1]
        + r.integers(1, 121, n)
    )
    # Pick (partkey, suppkey) pairs from partsupp so the composite FK
    # lineitem -> partsupp actually holds.
    ps_idx = _pick(r, np.arange(rows["partsupp"]), n, z).astype(np.int64)
    lineitem = {
        "l_orderkey": l_orderkey,
        "l_linenumber": linenumber,
        "l_partkey": partsupp["ps_partkey"][ps_idx].astype(np.int64),
        "l_suppkey": partsupp["ps_suppkey"][ps_idx].astype(np.int64),
        "l_quantity": _pick(r, np.arange(1, 51), n, z).astype(np.int64),
        "l_extendedprice": np.round(
            _pick(r, np.round(np.linspace(900.0, 105_000.0, 2000), 2), n, z)
            .astype(np.float64),
            2,
        ),
        "l_discount": np.round(
            _pick(r, np.arange(0, 11) / 100.0, n, z).astype(np.float64), 2
        ),
        "l_tax": np.round(
            _pick(r, np.arange(0, 9) / 100.0, n, z).astype(np.float64), 2
        ),
        "l_returnflag": _pick(r, ["A", "N", "R"], n, z),
        "l_linestatus": _pick(r, ["F", "O"], n, z),
        "l_shipdate": shipdate.astype(np.int64),
        "l_commitdate": (shipdate + r.integers(-30, 31, n)).astype(np.int64),
        "l_receiptdate": (shipdate + r.integers(1, 31, n)).astype(np.int64),
        "l_shipmode": _pick(r, SHIPMODES, n, z),
    }

    return {
        "region": region,
        "nation": nation,
        "supplier": supplier,
        "customer": customer,
        "part": part,
        "partsupp": partsupp,
        "orders": orders,
        "lineitem": lineitem,
    }


def load_tpch_database(system, scale=1.0, zipf=0.0, seed=1992, name=None):
    """Generate TPC-H and load it into a fresh :class:`Database`."""
    catalog = tpch_catalog()
    if name is None:
        name = "skth" if zipf > 0 else "unth"
    database = Database(catalog, system, name=name)
    for table, columns in generate_tpch(scale, zipf, seed).items():
        database.load_table(table, columns)
    database.collect_statistics()
    return database
