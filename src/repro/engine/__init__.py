"""The database facade, configurations, and system profiles."""

from .configuration import (
    Configuration,
    one_column_configuration,
    primary_configuration,
)
from .database import BuildReport, Database, QueryResult
from .systems import SystemProfile, system_a, system_b, system_c

__all__ = [
    "BuildReport", "Configuration", "Database", "QueryResult",
    "SystemProfile", "one_column_configuration", "primary_configuration",
    "system_a", "system_b", "system_c",
]
