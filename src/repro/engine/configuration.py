"""Configurations: the unit the paper's benchmark compares.

A configuration is a named set of index definitions (over base tables or
materialized views) plus materialized view definitions.  The canonical
configurations of the benchmark:

* **P** — primary-key indexes only (the initial configuration);
* **1C** — P plus one single-column index per indexable column (the
  paper's reference configuration);
* **R** — whatever a recommender produced.

Configurations carry a stable **content fingerprint** — a hash of the
structures they contain, independent of the display name — which the
runtime layer uses to key plan/estimate caches and the artifact store
(see :mod:`repro.runtime`).
"""

import hashlib
from dataclasses import dataclass

from ..common.errors import ConfigurationError
from ..index.definition import IndexDefinition


def content_fingerprint(*parts):
    """A short stable hash of an arbitrary (reprable) content tuple.

    Used for configuration identity, plan-cache keys, and artifact-store
    file names.  Only the *content* matters: two objects with equal
    canonical parts share a fingerprint across processes.
    """
    digest = hashlib.sha1(repr(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def index_content_key(ix):
    """Canonical content tuple of an :class:`IndexDefinition`."""
    return ("ix", ix.table, tuple(ix.columns), bool(ix.is_primary))


def view_content_key(view):
    """Canonical content tuple of a :class:`MatViewDefinition`."""
    return (
        "mv",
        tuple(view.tables),
        view.join_pred,
        tuple((c.table, c.column) for c in view.group_columns),
    )


@dataclass(frozen=True)
class Configuration:
    """An immutable set of indexes and materialized views.

    ``shards`` records the horizontal partitioning the configuration
    was built for (0 = unsharded).  It participates in the fingerprint
    only when nonzero, so every pre-sharding fingerprint — and every
    cache artifact keyed by one — is unchanged.
    """

    name: str
    indexes: tuple = ()
    views: tuple = ()
    shards: int = 0

    def __post_init__(self):
        names = [ix.name for ix in self.indexes]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"configuration {self.name!r} has duplicate indexes"
            )
        view_names = [v.name for v in self.views]
        if len(set(view_names)) != len(view_names):
            raise ConfigurationError(
                f"configuration {self.name!r} has duplicate views"
            )

    @property
    def fingerprint(self):
        """Stable content hash of the configuration's structures.

        Excludes the display name: ``P`` renamed to ``initial`` is the
        same physical configuration.  Order-insensitive over indexes and
        views.  Cached on first access (the dataclass is frozen, so the
        content can never change afterwards).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            parts = [
                tuple(sorted(index_content_key(ix) for ix in self.indexes)),
                tuple(sorted(
                    repr(view_content_key(v)) for v in self.views
                )),
            ]
            if self.shards:
                parts.append(("shards", self.shards))
            cached = content_fingerprint(*parts)
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def with_indexes(self, new_indexes, name=None):
        """A new configuration extended with ``new_indexes`` (deduplicated)."""
        existing = {ix.name for ix in self.indexes}
        added = tuple(
            ix for ix in new_indexes if ix.name not in existing
        )
        return Configuration(
            name=name or self.name,
            indexes=self.indexes + added,
            views=self.views,
            shards=self.shards,
        )

    def with_views(self, new_views, name=None):
        existing = {v.name for v in self.views}
        added = tuple(v for v in new_views if v.name not in existing)
        return Configuration(
            name=name or self.name,
            indexes=self.indexes,
            views=self.views + added,
            shards=self.shards,
        )

    def with_shards(self, shards):
        """The same configuration tagged with a shard count."""
        return Configuration(name=self.name, indexes=self.indexes,
                             views=self.views, shards=int(shards))

    def renamed(self, name):
        return Configuration(name=name, indexes=self.indexes,
                             views=self.views, shards=self.shards)

    def has_index(self, definition):
        return any(ix.name == definition.name for ix in self.indexes)

    def secondary_indexes(self):
        """All non-primary-key indexes."""
        return [ix for ix in self.indexes if not ix.is_primary]

    def view_names(self):
        return {v.name for v in self.views}

    def indexes_on_views(self):
        names = self.view_names()
        return [ix for ix in self.indexes if ix.table in names]

    def indexes_on_tables(self):
        names = self.view_names()
        return [ix for ix in self.indexes if ix.table not in names]

    def index_width_histogram(self, max_width=4):
        """``{target: [count of 1-col, 2-col, ...]}`` over secondary indexes.

        This is the summary reported in the paper's Tables 2 and 3.
        """
        histogram = {}
        for ix in self.secondary_indexes():
            row = histogram.setdefault(ix.table, [0] * max_width)
            if ix.width <= max_width:
                row[ix.width - 1] += 1
        return histogram


def primary_configuration(catalog, name="P"):
    """The paper's initial configuration: primary-key indexes only."""
    indexes = []
    for schema in catalog.tables():
        if schema.primary_key:
            indexes.append(
                IndexDefinition(
                    table=schema.name,
                    columns=tuple(schema.primary_key),
                    is_primary=True,
                )
            )
    return Configuration(name=name, indexes=tuple(indexes))


def one_column_configuration(catalog, name="1C"):
    """The paper's reference configuration: P plus every single-column index.

    One index per indexable column in the schema (Section 3.2.3).
    """
    base = primary_configuration(catalog, name=name)
    singles = []
    for schema in catalog.tables():
        for col in schema.indexable_columns():
            singles.append(
                IndexDefinition(table=schema.name, columns=(col.name,))
            )
    return base.with_indexes(singles)
