"""The database facade: one simulated RDBMS instance.

A :class:`Database` owns the catalog, the loaded tables, the collected
statistics, and the currently-applied :class:`Configuration` (built
indexes and materialized views).  It exposes the three cost measures of
the paper's framework:

* ``execute(sql)``                    → actual cost  ``A(q, C)``
* ``estimate(sql)``                   → estimated cost ``E(q, C)``
* ``estimate_hypothetical(sql, Ch)``  → hypothetical cost ``H(q, Ch, C)``

plus ``apply_configuration`` (the transition whose cost/size Table 1
reports) and the insert path of Section 4.4.

Planning is memoized through two fingerprint-keyed caches from the
runtime layer (:mod:`repro.runtime`):

* a **plan/estimate cache** keyed by
  ``(sql, config_fingerprint, hypothetical_fingerprint, flags)`` — so
  ``A``, ``E`` and repeated ``H`` calls on the same SQL under unchanged
  physical state plan once;
* an **environment cache** keyed by configuration fingerprint — so a
  recommender probing one candidate configuration against many queries
  derives the what-if metadata once;
* a **what-if cache** serving the recommenders' cost service
  (:mod:`repro.recommender.costservice`): atomic ``H(q, ·)`` costs keyed
  by the fingerprint of the *relevant subset* of hypothetical
  structures, plus memoized what-if configuration sizes.

All three are explicitly invalidated by every state transition that can
change a plan or a cost: :meth:`Database.apply_configuration`,
:meth:`Database.insert_rows`, :meth:`Database.collect_statistics`, and
:meth:`Database.load_table`.  Parse+bind results are memoized separately
(they depend only on the catalog) so front-end work survives those
invalidations.

What-if environments additionally support an *incremental* build: when
a trial configuration extends a configuration whose environment is
already cached (the greedy recommenders probe ``current + one
candidate`` hundreds of times per round), the new environment is
derived from the cached one plus the delta structures instead of being
rebuilt from scratch (see :meth:`Database.hypothetical_env`).
"""

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..runtime.cache import BoundedCache, CacheStats

from ..common.errors import CatalogError, QueryTimeout
from ..executor.engine import Executor
from ..executor.morsels import MorselPool
from ..executor.kernels import KernelCache, late_mat_enabled
from ..executor.subplan import SubplanCache, subplan_cache_enabled
from ..index.data import IndexData
from ..index.definition import estimate_index_size
from ..optimizer import cost_model as cm
from ..optimizer.environment import IndexInfo, PlannerEnv, ViewInfo
from ..optimizer.estimator import Estimator
from ..optimizer.planner import Planner
from ..optimizer.templates import (
    PlanTemplate,
    TemplatePlanner,
    template_key,
    templates_enabled,
)
from ..sql.binder import Binder, BoundQuery
from ..sql.parser import parse
from ..sql.templates import BindTemplates
from ..stats.table_stats import StatisticsCatalog, TableStats
from ..storage.encoding import (
    ColumnDictionary,
    DictionaryCache,
    dict_cache_enabled,
)
from ..storage.sharding import (
    ShardedTable,
    ShardRuntime,
    shard_count,
    shard_scheme,
)
from ..storage.table import Table
from ..views.matview import build_view
from .configuration import (
    Configuration,
    content_fingerprint,
    index_content_key,
    primary_configuration,
    view_content_key,
)

DEFAULT_TIMEOUT = 1800.0


@dataclass
class BuildReport:
    """Cost and size of applying a configuration (the paper's Table 1)."""

    configuration: str
    build_seconds: float
    heap_bytes: int
    index_bytes: int
    view_bytes: int

    @property
    def total_bytes(self):
        return self.heap_bytes + self.index_bytes + self.view_bytes


@dataclass
class QueryResult:
    """Outcome of executing one query."""

    sql: str
    elapsed: float
    timed_out: bool
    plan: object
    batch: object = None

    def rows(self):
        """Result rows as a list of tuples (None after a timeout)."""
        if self.batch is None:
            return None
        keys = list(self.batch.columns)
        arrays = [self.batch.columns[k] for k in keys]
        return list(zip(*(a.tolist() for a in arrays))) if arrays else []


@dataclass
class _BuiltState:
    configuration: Configuration
    index_data: dict = field(default_factory=dict)   # name -> IndexData
    view_tables: dict = field(default_factory=dict)  # view name -> Table


class Database:
    """One simulated RDBMS instance under a system profile."""

    PLAN_CACHE_SIZE = 8192
    ENV_CACHE_SIZE = 128
    WHATIF_CACHE_SIZE = 65536
    TEMPLATE_CACHE_SIZE = 4096

    def __init__(self, catalog, system, name="db"):
        self.catalog = catalog
        self.system = system
        self.name = name
        self.tables = {}
        self.statistics = StatisticsCatalog()
        self._view_stats = StatisticsCatalog()
        self._built = None
        self._bound_cache = {}
        self._view_size_cache = {}
        self._init_runtime_caches()

    def _init_runtime_caches(self):
        self._plan_cache = BoundedCache("plan_cache", self.PLAN_CACHE_SIZE)
        self._env_cache = BoundedCache("env_cache", self.ENV_CACHE_SIZE)
        self._whatif_cache = BoundedCache(
            "whatif_cache", self.WHATIF_CACHE_SIZE
        )
        self._dict_cache = DictionaryCache()
        self._bind_stats = CacheStats("bind_cache")
        # Cross-query optimization state (REPRO_PLAN_TEMPLATES /
        # REPRO_SUBPLAN_CACHE / REPRO_MORSEL_ROWS): plan templates keyed
        # by (environment token, structural template key), bind templates
        # keyed by SQL skeleton, shared subplan results handed to every
        # executor, and the lazily-started morsel thread pool.
        self._template_cache = BoundedCache(
            "template_cache", self.TEMPLATE_CACHE_SIZE
        )
        self._bind_templates = BindTemplates(self.catalog)
        self._subplan_cache = SubplanCache()
        # Fused-predicate kernels (REPRO_LATE_MAT): compiled conjunctive
        # filter callables shared by every executor of this database.
        self._kernel_cache = KernelCache()
        self._morsels = MorselPool.from_env()
        self._current_fingerprint = None
        # Horizontal partitioning (REPRO_SHARDS; 0 = off).  The shard
        # runtime owns the worker pool and shared-memory segments; the
        # dictionary cache builds sharded tables' dictionaries from
        # per-shard sketches through it.
        self._shards = shard_count()
        self._shard_runtime = ShardRuntime() if self._shards else None
        if self._shard_runtime is not None:
            self._dict_cache.attach_sharding(self._shard_runtime)

    # ------------------------------------------------------------------
    # Pickling (the artifact store persists built databases to disk):
    # caches hold locks and are cheap to rebuild, so they are dropped.

    def __getstate__(self):
        state = self.__dict__.copy()
        for transient in ("_plan_cache", "_env_cache", "_whatif_cache",
                          "_dict_cache", "_bind_stats",
                          "_template_cache", "_bind_templates",
                          "_subplan_cache", "_kernel_cache", "_morsels",
                          "_current_fingerprint", "_bound_cache",
                          "_shards", "_shard_runtime"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._bound_cache = {}
        self._init_runtime_caches()

    # ------------------------------------------------------------------
    # Cache invalidation

    def invalidate_caches(self):
        """Drop every plan/estimate/environment cache entry.

        Called by every state transition after which a cached plan or
        cost could be stale: configuration changes, row inserts, table
        (re)loads, and statistics collection.  Bound queries survive —
        binding depends only on the catalog.
        """
        self._plan_cache.invalidate()
        self._env_cache.invalidate()
        self._whatif_cache.invalidate()
        self._dict_cache.invalidate()
        self._template_cache.invalidate()
        self._subplan_cache.invalidate()
        self._kernel_cache.invalidate()
        if self._shard_runtime is not None:
            self._shard_runtime.invalidate()
        self._current_fingerprint = None

    @property
    def whatif_cache(self):
        """The what-if cost-service cache (atomic H costs and sizes).

        Owned by the database so its entries are dropped by the same
        :meth:`invalidate_caches` path as every other derived result.
        """
        return self._whatif_cache

    def cache_stats(self):
        """Hit/miss snapshots of the plan, environment, what-if and bind
        caches."""
        return {
            "plan_cache": self._plan_cache.stats.snapshot(),
            "env_cache": self._env_cache.stats.snapshot(),
            "whatif_cache": self._whatif_cache.stats.snapshot(),
            "dict_cache": self._dict_cache.stats.snapshot(),
            "bind_cache": self._bind_stats.snapshot(),
            "template_cache": self._template_cache.stats.snapshot(),
            "subplan_cache": self._subplan_cache.stats.snapshot(),
            "kernel_cache": self._kernel_cache.stats.snapshot(),
        }

    def _dict_encodings(self):
        """The dictionary cache when enabled (``REPRO_DICT_CACHE``), else None.

        Every consumer takes this as its ``encodings`` argument; None
        routes it to the legacy ``np.unique``/``np.lexsort`` paths.
        """
        return self._dict_cache if dict_cache_enabled() else None

    def column_dictionary(self, table_name, column):
        """The shared :class:`ColumnDictionary` of a loaded table's column.

        This is the entry point the workload generators use for the
        constant-selection ladders.  With the cache disabled a fresh
        (uncached) dictionary is built, preserving legacy cost parity.
        """
        table = self.table(table_name)
        if dict_cache_enabled():
            return self._dict_cache.dictionary(table, column)
        return ColumnDictionary(table.column(column))

    # ------------------------------------------------------------------
    # Loading and statistics

    def load_table(self, name, columns):
        schema = self.catalog.table(name)
        if self._shards:
            self.tables[name] = ShardedTable(
                schema, columns, shards=self._shards, scheme=shard_scheme()
            )
        else:
            self.tables[name] = Table(schema, columns)
        self._bound_cache.clear()
        self._bind_templates.clear()
        self._view_size_cache.clear()
        self.invalidate_caches()

    def table(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} is not loaded") from None

    def collect_statistics(self):
        """Collect full statistics for every loaded table (and built view).

        Sharded tables are collected per shard and merged — exact
        sketch merging keeps the result byte-identical to unsharded
        collection (views are plain tables and collect directly).
        """
        encodings = self._dict_encodings()
        for table in self.tables.values():
            self.statistics.put(self._collect_table_stats(table, encodings))
        if self._built is not None:
            for view_table in self._built.view_tables.values():
                self._view_stats.put(
                    TableStats.collect(view_table, encodings)
                )
        self.invalidate_caches()

    def _collect_table_stats(self, table, encodings):
        if isinstance(table, ShardedTable) and table.shards > 1:
            return TableStats.collect_sharded(
                table, runtime=self._shard_runtime
            )
        return TableStats.collect(table, encodings)

    # ------------------------------------------------------------------
    # Configurations

    @property
    def configuration(self):
        if self._built is None:
            return primary_configuration(self.catalog)
        return self._built.configuration

    @property
    def configuration_fingerprint(self):
        """Content fingerprint of the currently-built configuration.

        With sharding on, the shard count is mixed in: plans, what-if
        environments, and cost-service entries keyed by this value can
        never be shared between sharded and unsharded instances of the
        same logical configuration.
        """
        if self._current_fingerprint is None:
            fingerprint = self.configuration.fingerprint
            if self._shards and not self.configuration.shards:
                fingerprint = content_fingerprint(
                    fingerprint, ("shards", self._shards)
                )
            self._current_fingerprint = fingerprint
        return self._current_fingerprint

    def apply_configuration(self, config):
        """Build ``config`` from scratch; returns a :class:`BuildReport`.

        The build time covers loading the heaps, materializing the views,
        and creating every index — mirroring how the paper's Table 1
        reports per-configuration build times.
        """
        with obs.span(
            "db.apply_configuration",
            database=self.name,
            configuration=config.name,
        ) as obs_span:
            report = self._apply_configuration(config)
            obs_span.set(
                virtual_s=report.build_seconds,
                total_bytes=report.total_bytes,
            )
        obs.counter_add("engine.configurations_built")
        obs.event(
            "configuration",
            database=self.name,
            configuration=config.name,
            fingerprint=config.fingerprint,
        )
        return report

    def _apply_configuration(self, config):
        hw = self.system.hardware
        seconds = 0.0
        heap_bytes = 0
        for table in self.tables.values():
            pages = table.page_count()
            seconds += pages * hw.page_write_s + table.row_count * hw.cpu_row_s
            heap_bytes += int(table.byte_size() * self.system.heap_overhead)

        state = _BuiltState(configuration=config)
        view_bytes = 0
        for view_def in config.views:
            view_table, _input_rows = build_view(
                view_def, self.tables, self.catalog
            )
            state.view_tables[view_def.name] = view_table
            input_cost = self._view_input_cost(view_def)
            seconds += cm.build_view(
                hw,
                input_cost,
                view_table.row_count,
                view_table.schema.row_width(),
            )
            view_bytes += int(
                view_table.byte_size() * self.system.heap_overhead
            )

        index_bytes = 0
        for ix in config.indexes:
            target = self._index_target(ix, state)
            data = IndexData(
                ix, target, self.system.index_overhead,
                encodings=self._dict_encodings(),
            )
            state.index_data[ix.name] = data
            key_width = sum(
                target.schema.column(c).width for c in ix.columns
            )
            pages = cm.bytes_to_pages(data.size.byte_size)
            seconds += cm.build_index(
                hw,
                target.page_count(),
                target.row_count,
                key_width,
                pages,
            )
            index_bytes += data.size.byte_size

        self._built = state
        self._view_stats = StatisticsCatalog()
        for view_table in state.view_tables.values():
            self._view_stats.put(
                TableStats.collect(view_table, self._dict_encodings())
            )
        self.invalidate_caches()
        return BuildReport(
            configuration=config.name,
            build_seconds=seconds,
            heap_bytes=heap_bytes,
            index_bytes=index_bytes,
            view_bytes=view_bytes,
        )

    def _index_target(self, ix, state):
        if ix.table in state.view_tables:
            return state.view_tables[ix.table]
        return self.table(ix.table)

    def _view_input_cost(self, view_def):
        hw = self.system.hardware
        cost = 0.0
        for name in view_def.tables:
            table = self.table(name)
            cost += cm.seq_scan(hw, table.page_count(), table.row_count)
        if view_def.is_join_view:
            (t1, _), (t2, _) = view_def.join_pred
            small = min(
                self.table(t1).row_count, self.table(t2).row_count
            )
            big = max(self.table(t1).row_count, self.table(t2).row_count)
            cost += cm.hash_build(hw, small, 32) + cm.hash_probe(hw, big)
        return cost

    def estimated_configuration_bytes(self, config):
        """Size of a configuration *without building it* (what-if sizing).

        This is what the recommender's space-budget arithmetic uses.
        Memoized per configuration fingerprint in the what-if cache (the
        greedy recommenders re-size every surviving trial configuration
        each round); invalidated with every other derived result.
        """
        key = ("bytes", config.fingerprint)
        return self._whatif_cache.get_or_build(
            key, lambda: self._estimated_configuration_bytes(config)
        )

    def _estimated_configuration_bytes(self, config):
        index_bytes = 0
        for ix in config.indexes:
            if ix.table in config.view_names():
                rows, key_width = self._hypothetical_view_geometry(
                    config, ix.table, ix.columns
                )
            else:
                stats = self.statistics.table(ix.table)
                rows = stats.row_count
                schema = self.catalog.table(ix.table)
                key_width = sum(
                    schema.column(c).width for c in ix.columns
                )
            index_bytes += estimate_index_size(
                rows, key_width, self.system.index_overhead
            ).byte_size
        view_bytes = 0
        for view_def in config.views:
            rows, width = self._hypothetical_view_size(view_def)
            view_bytes += int(rows * width * self.system.heap_overhead)
        return index_bytes + view_bytes

    # ------------------------------------------------------------------
    # Planning and execution

    def bind(self, sql):
        if isinstance(sql, BoundQuery):
            return sql
        if sql not in self._bound_cache:
            self._bind_stats.misses += 1
            bound = None
            if templates_enabled():
                # Skeleton templates: parse+bind one representative per
                # SQL shape, rebind later members' constants into a
                # clone.  None means the skeleton is not template-safe;
                # the ordinary path then surfaces its own errors.
                bound = self._bind_templates.bind(sql)
            if bound is None:
                bound = Binder(self.catalog).bind(parse(sql))
            self._bound_cache[sql] = bound
        else:
            self._bind_stats.hits += 1
        return self._bound_cache[sql]

    def planner_env(self):
        """Environment describing the *current built* configuration.

        Memoized per configuration fingerprint; invalidated with the
        plan cache.
        """
        key = ("real", self.configuration_fingerprint)
        return self._env_cache.get_or_build(key, self._build_planner_env)

    def _build_planner_env(self):
        estimator = Estimator(self._merged_stats(), self.system.policy)
        indexes, views = {}, []
        if self._built is not None:
            view_names = self._built.configuration.view_names()
            view_indexes = {}
            for ix in self._built.configuration.indexes:
                data = self._built.index_data[ix.name]
                info = IndexInfo.from_data(data)
                if ix.table in view_names:
                    view_indexes.setdefault(ix.table, []).append(info)
                else:
                    indexes.setdefault(ix.table, []).append(info)
            for view_def in self._built.configuration.views:
                view_table = self._built.view_tables[view_def.name]
                views.append(
                    ViewInfo(
                        definition=view_def,
                        rows=view_table.row_count,
                        page_count=view_table.page_count(),
                        row_width=view_table.schema.row_width(),
                        indexes=view_indexes.get(view_def.name, []),
                        hypothetical=False,
                        data=view_table,
                    )
                )
        return PlannerEnv(
            catalog=self.catalog,
            estimator=estimator,
            hardware=self.system.hardware,
            indexes=indexes,
            views=views,
        )

    def hypothetical_env(self, config, force_hypothetical=False,
                         oracle=False, base=None):
        """What-if environment for a configuration that is *not* built.

        Memoized per ``(config fingerprint, flags)``: a recommender
        probing one candidate configuration against a whole workload
        derives the hypothetical metadata once.  The environment is
        read-only after construction (the planner never mutates it), so
        sharing it across queries — and session worker threads — is
        safe.

        Args:
            config: the hypothetical :class:`Configuration`.
            force_hypothetical: estimate under the degraded what-if
                policy even for built structures.
            oracle: full-fidelity what-if statistics (ablation knob).
            base: optional configuration that ``config`` extends.  When
                the base's environment is resident in the cache, the new
                environment is derived incrementally from it — only the
                delta structures get their geometry computed — instead
                of being rebuilt from scratch.  Purely an optimization:
                the incremental environment is equivalent to a full
                build.
        """
        key = (
            "hypo",
            self.configuration_fingerprint,
            config.fingerprint,
            bool(force_hypothetical),
            bool(oracle),
        )

        def build():
            if base is not None:
                env = self._extend_hypothetical_env(
                    base, config, force_hypothetical, oracle
                )
                if env is not None:
                    return env
            return self._build_hypothetical_env(
                config, force_hypothetical, oracle
            )

        return self._env_cache.get_or_build(key, build)

    def _extend_hypothetical_env(self, base, config, force_hypothetical,
                                 oracle):
        """Derive the env of ``config`` from the cached env of ``base``.

        Returns ``None`` when the incremental path does not apply — the
        base environment is not resident, ``config`` is not a pure
        extension of ``base``, a delta view is actually built (its
        statistics would have to enter the estimator), or
        ``force_hypothetical`` is off (an extension could then flip the
        whole environment from the full-fidelity to the degraded
        estimator policy, which only a full build tracks).

        Shared :class:`IndexInfo`/:class:`ViewInfo` objects from the
        base environment are reused as-is — they are read-only — and
        anything the delta must touch (a view gaining an index) is
        copied first, so the base environment is never mutated.
        """
        if not force_hypothetical:
            return None
        base_key = (
            "hypo",
            self.configuration_fingerprint,
            base.fingerprint,
            True,
            bool(oracle),
        )
        base_env = self._env_cache.peek(base_key)
        if base_env is None:
            return None
        base_ix = {index_content_key(ix) for ix in base.indexes}
        base_mv = {view_content_key(v) for v in base.views}
        trial_ix = [(index_content_key(ix), ix) for ix in config.indexes]
        trial_mv = [(view_content_key(v), v) for v in config.views]
        if not (base_ix <= {k for k, _ in trial_ix}
                and base_mv <= {k for k, _ in trial_mv}):
            return None
        delta_views = [v for k, v in trial_mv if k not in base_mv]
        delta_indexes = [ix for k, ix in trial_ix if k not in base_ix]
        built_views = set(
            self._built.view_tables
        ) if self._built is not None else set()
        if any(v.name in built_views for v in delta_views):
            return None

        obs.counter_add("optimizer.env_delta_builds")
        view_infos = {v.definition.name: v for v in base_env.views}
        shared_views = set(view_infos)
        for view_def in delta_views:
            rows, width = self._hypothetical_view_size(view_def)
            view_infos[view_def.name] = ViewInfo(
                definition=view_def,
                rows=int(rows),
                page_count=cm.bytes_to_pages(rows * width),
                row_width=width,
                hypothetical=True,
            )

        indexes = {t: list(infos) for t, infos in base_env.indexes.items()}
        built_by_name = {}
        if self._built is not None:
            built_by_name = dict(self._built.index_data)
        view_names = set(view_infos)
        for ix in delta_indexes:
            on_view = ix.table in view_names
            if ix.name in built_by_name and not on_view:
                info = IndexInfo.from_data(built_by_name[ix.name])
            else:
                if on_view:
                    rows = view_infos[ix.table].rows
                    _, key_width = self._hypothetical_view_geometry(
                        config, ix.table, ix.columns
                    )
                else:
                    stats = self.statistics.table(ix.table)
                    rows = stats.row_count
                    schema = self.catalog.table(ix.table)
                    key_width = sum(
                        schema.column(c).width for c in ix.columns
                    )
                info = IndexInfo.hypothetical_on(
                    ix, rows, key_width, self.system.index_overhead
                )
                obs.counter_add("optimizer.hypothetical_index_probes")
                if oracle and not on_view:
                    info.cluster_factor = 0.25
            if on_view:
                vinfo = view_infos[ix.table]
                if ix.table in shared_views:
                    vinfo = ViewInfo(
                        definition=vinfo.definition,
                        rows=vinfo.rows,
                        page_count=vinfo.page_count,
                        row_width=vinfo.row_width,
                        indexes=list(vinfo.indexes),
                        hypothetical=vinfo.hypothetical,
                        data=vinfo.data,
                    )
                    view_infos[ix.table] = vinfo
                    shared_views.discard(ix.table)
                vinfo.indexes.append(info)
            else:
                indexes.setdefault(ix.table, []).append(info)
        return PlannerEnv(
            catalog=self.catalog,
            estimator=base_env.estimator,
            hardware=base_env.hardware,
            indexes=indexes,
            views=list(view_infos.values()),
        )

    def _build_hypothetical_env(self, config, force_hypothetical, oracle):
        """Uncached construction of a what-if environment.

        Indexes that happen to exist in the current built configuration
        keep their measured metadata; everything else is derived, and the
        estimator runs under the degraded hypothetical policy.  With
        ``force_hypothetical`` the degraded policy applies even when every
        structure is built — recommenders compare candidate configurations
        against the current one inside the same what-if session, so both
        sides must be estimated at the same fidelity.

        ``oracle`` keeps the full-fidelity estimator policy and assumes
        well-clustered hypothetical indexes; it models a recommender with
        ideal what-if statistics and exists for the ablation study of the
        estimation gap Section 5 of the paper identifies.
        """
        obs.counter_add("optimizer.hypothetical_env_builds")
        built_by_name = {}
        if self._built is not None:
            built_by_name = dict(self._built.index_data)
        any_hypothetical = bool(force_hypothetical)

        view_infos = {}
        for view_def in config.views:
            if self._built is not None and \
                    view_def.name in self._built.view_tables:
                view_table = self._built.view_tables[view_def.name]
                view_infos[view_def.name] = ViewInfo(
                    definition=view_def,
                    rows=view_table.row_count,
                    page_count=view_table.page_count(),
                    row_width=view_table.schema.row_width(),
                    data=view_table,
                )
            else:
                any_hypothetical = True
                rows, width = self._hypothetical_view_size(view_def)
                view_infos[view_def.name] = ViewInfo(
                    definition=view_def,
                    rows=int(rows),
                    page_count=cm.bytes_to_pages(rows * width),
                    row_width=width,
                    hypothetical=True,
                )

        indexes = {}
        view_names = set(view_infos)
        for ix in config.indexes:
            if ix.name in built_by_name and ix.table not in view_names:
                info = IndexInfo.from_data(built_by_name[ix.name])
            else:
                any_hypothetical = True
                if ix.table in view_names:
                    vinfo = view_infos[ix.table]
                    rows = vinfo.rows
                    _, key_width = self._hypothetical_view_geometry(
                        config, ix.table, ix.columns
                    )
                else:
                    stats = self.statistics.table(ix.table)
                    rows = stats.row_count
                    schema = self.catalog.table(ix.table)
                    key_width = sum(
                        schema.column(c).width for c in ix.columns
                    )
                info = IndexInfo.hypothetical_on(
                    ix, rows, key_width, self.system.index_overhead
                )
                obs.counter_add("optimizer.hypothetical_index_probes")
            if ix.table in view_names:
                view_infos[ix.table].indexes.append(info)
            else:
                indexes.setdefault(ix.table, []).append(info)

        policy = self.system.policy
        if any_hypothetical and not oracle:
            policy = policy.as_hypothetical()
        if oracle:
            for infos in indexes.values():
                for info in infos:
                    if info.hypothetical:
                        info.cluster_factor = 0.25
        estimator = Estimator(self._hypo_stats(view_infos), policy)
        return PlannerEnv(
            catalog=self.catalog,
            estimator=estimator,
            hardware=self.system.hardware,
            indexes=indexes,
            views=list(view_infos.values()),
        )

    def plan(self, sql):
        """Optimize a query in the current configuration (memoized).

        The cached plan is immutable and is shared by ``estimate`` and
        ``execute`` — the ``A`` and ``E`` measures of one query under an
        unchanged configuration plan exactly once.
        """
        bound = self.bind(sql)
        key = ("plan", bound.sql, self.configuration_fingerprint)

        def build():
            obs.counter_add("optimizer.plan_builds")
            return self._plan_query(bound, self.planner_env())

        return self._plan_cache.get_or_build(key, build)

    def _plan_query(self, bound, env):
        """Plan ``bound`` under ``env``, through the template cache.

        With ``REPRO_PLAN_TEMPLATES`` on and the query inside the
        template-safe subset, the structural key resolves to a shared
        :class:`PlanTemplate`: its first member runs the full
        enumeration and records the DP join program, later members
        replay it — producing a bit-identical plan while skipping the
        structure discovery.  The recipe is purely structural (replay
        recomputes every selectivity, semijoin source and cost against
        ``env``), so one template serves the real environment and every
        what-if candidate a recommender probes; the cache is dropped
        with the other derived caches on each state transition.
        """
        if templates_enabled():
            key = template_key(bound, env)
            if key is not None:
                template = self._template_cache.get_or_build(
                    key, PlanTemplate
                )
                return TemplatePlanner(env).plan_with_template(
                    bound, template
                )
            obs.counter_add("template.fallbacks")
        return Planner(env).plan(bound)

    def estimate(self, sql):
        """Estimated cost ``E(q, C)`` in the current configuration."""
        return self.plan(sql).est.cost

    def estimate_hypothetical(self, sql, config, force_hypothetical=False,
                              oracle=False, base=None):
        """Hypothetical cost ``H(q, config, current)`` (memoized).

        Keyed by ``(sql, current fingerprint, candidate fingerprint,
        flags)``, so a greedy recommender re-probing the same candidate
        across iterations pays for one optimizer call.  ``base`` is
        forwarded to :meth:`hypothetical_env` to enable the incremental
        environment build when ``config`` extends it.
        """
        obs.counter_add("optimizer.what_if_calls")
        bound = self.bind(sql)
        key = (
            "what_if",
            bound.sql,
            self.configuration_fingerprint,
            config.fingerprint,
            bool(force_hypothetical),
            bool(oracle),
        )

        def build():
            obs.counter_add("optimizer.what_if_plan_builds")
            env = self.hypothetical_env(
                config, force_hypothetical, oracle, base=base
            )
            return self._plan_query(bound, env).est.cost

        return self._plan_cache.get_or_build(key, build)

    def execute(self, sql, timeout=DEFAULT_TIMEOUT):
        """Plan and run a query; returns a :class:`QueryResult`.

        A query that exceeds the (virtual) timeout is reported with
        ``timed_out=True`` and ``elapsed`` clamped to the timeout, exactly
        as the paper reports its ``t_out`` bin.
        """
        bound = self.bind(sql)
        with obs.span("db.execute", database=self.name) as span:
            plan = self.plan(bound)
            executor = Executor(
                self._exec_tables(), self.system.hardware, timeout,
                encodings=self._dict_encodings(),
                sharding=self._shard_runtime,
                subplans=(self._subplan_cache
                          if subplan_cache_enabled() else None),
                morsels=self._morsels,
                kernels=(self._kernel_cache
                         if late_mat_enabled() else None),
                late=late_mat_enabled(),
            )
            try:
                outcome = executor.run(plan)
            except QueryTimeout:
                span.set(virtual_s=float(timeout), timed_out=True)
                obs.counter_add("engine.queries_executed")
                obs.counter_add("engine.query_timeouts")
                obs.observe("engine.query_seconds", float(timeout))
                return QueryResult(
                    sql=bound.sql,
                    elapsed=float(timeout),
                    timed_out=True,
                    plan=plan,
                )
            span.set(virtual_s=outcome.elapsed, timed_out=False)
        obs.counter_add("engine.queries_executed")
        obs.observe("engine.query_seconds", outcome.elapsed)
        return QueryResult(
            sql=bound.sql,
            elapsed=outcome.elapsed,
            timed_out=False,
            plan=plan,
            batch=outcome.batch,
        )

    # ------------------------------------------------------------------
    # Inserts (Section 4.4)

    def insert_rows(self, table_name, columns):
        """Append rows; returns the virtual seconds the insert cost.

        The charge covers the heap append plus maintenance of every index
        on the table in the current configuration; built index data and
        dependent views are refreshed so later queries stay correct.
        """
        table = self.table(table_name)
        appended = table.append_rows(columns)
        obs.counter_add("engine.rows_inserted", appended)
        self._view_size_cache.clear()
        self.invalidate_caches()
        heights = []
        if self._built is not None:
            for ix in self._built.configuration.indexes:
                if ix.table == table_name:
                    heights.append(
                        self._built.index_data[ix.name].size.height
                    )
            for ix in self._built.configuration.indexes:
                if ix.table == table_name:
                    self._built.index_data[ix.name] = IndexData(
                        ix, table, self.system.index_overhead,
                        encodings=self._dict_encodings(),
                    )
            for view_def in self._built.configuration.views:
                if table_name in view_def.tables:
                    view_table, _ = build_view(
                        view_def, self.tables, self.catalog
                    )
                    self._built.view_tables[view_def.name] = view_table
        return cm.insert_rows(
            self.system.hardware,
            appended,
            table.schema.row_width(),
            heights,
        )

    # ------------------------------------------------------------------
    # Internals

    def _exec_tables(self):
        tables = dict(self.tables)
        if self._built is not None:
            tables.update(self._built.view_tables)
        return tables

    def _merged_stats(self):
        merged = StatisticsCatalog()
        for name in self.statistics.table_names():
            merged.put(self.statistics.table(name))
        for name in self._view_stats.table_names():
            merged.put(self._view_stats.table(name))
        return merged

    def _hypo_stats(self, view_infos):
        merged = StatisticsCatalog()
        for name in self.statistics.table_names():
            merged.put(self.statistics.table(name))
        for name, vinfo in view_infos.items():
            if vinfo.data is not None:
                merged.put(
                    TableStats.collect(vinfo.data, self._dict_encodings())
                )
        return merged

    def _hypothetical_view_size(self, view_def):
        """(rows, row_width) estimate for an unbuilt view.

        Single-table views are sized from the data itself (the exact
        joint distinct count — the stand-in for the sampling pass the
        commercial advisors run when sizing candidate views); join views
        fall back to the estimator's damped distinct-product, which is
        why join-view candidates only survive when the statistics make
        the compression visible.
        """
        width = sum(
            self.catalog.table(vc.table).column(vc.column).width
            for vc in view_def.group_columns
        ) + 8 + cm.ROW_OVERHEAD
        if not view_def.is_join_view:
            cached = self._view_size_cache.get(view_def.name)
            if cached is None:
                table = self.table(view_def.tables[0])
                encodings = self._dict_encodings()
                arrays = [
                    table.column(vc.column)
                    for vc in view_def.group_columns
                ]
                if table.row_count == 0:
                    distinct = 0
                elif len(arrays) == 1:
                    if encodings is not None:
                        distinct = encodings.dictionary(
                            table, view_def.group_columns[0].column
                        ).n_distinct
                    else:
                        distinct = len(np.unique(arrays[0]))
                else:
                    if encodings is not None:
                        order = encodings.lexsort(
                            table,
                            tuple(vc.column
                                  for vc in view_def.group_columns),
                        )
                    else:
                        order = np.lexsort(tuple(reversed(arrays)))
                    change = np.zeros(table.row_count, dtype=bool)
                    change[0] = True
                    for arr in arrays:
                        sorted_arr = arr[order]
                        change[1:] |= sorted_arr[1:] != sorted_arr[:-1]
                    distinct = int(change.sum())
                cached = max(1, distinct)
                self._view_size_cache[view_def.name] = cached
            return cached, width

        estimator = Estimator(self.statistics, self.system.policy)
        (t1, c1), (t2, c2) = view_def.join_pred
        sel = estimator.join_selectivity(t1, c1, t2, c2)
        input_rows = estimator.join_rows(
            estimator.table_rows(t1), estimator.table_rows(t2), sel
        )
        ndvs = [
            estimator.n_distinct(vc.table, vc.column)
            for vc in view_def.group_columns
        ]
        rows = estimator.group_count(input_rows, ndvs)
        return rows, width

    def _hypothetical_view_geometry(self, config, view_name, columns):
        view_def = next(v for v in config.views if v.name == view_name)
        rows, _ = self._hypothetical_view_size(view_def)
        schema = view_def.view_schema(self.catalog)
        key_width = sum(schema.column(c).width for c in columns)
        return int(rows), key_width
