"""System profiles.

The paper benchmarks two commercial RDBMSs on NREF ("System A" and
"System B") and one of them on TPC-H ("System C").  A
:class:`SystemProfile` captures everything that made those systems behave
differently: the machine they ran on (Table 1 shows different build times
for identical configurations), their storage overheads (A's NREF 1C was
35.7 GB where B's was 17.1 GB), their optimizer's estimation fidelity, and
their recommender's heuristics (System A's recommender failed outright on
NREF3J; System C's recommends materialized views).
"""

from dataclasses import dataclass

from ..common.hardware import desktop_2004
from ..optimizer.policy import EstimatorPolicy
from ..recommender.profiles import RecommenderProfile


@dataclass(frozen=True)
class SystemProfile:
    """One simulated commercial RDBMS."""

    name: str
    hardware: object                  # HardwareProfile
    policy: EstimatorPolicy
    recommender: RecommenderProfile
    index_overhead: float = 1.0       # index storage inflation factor
    heap_overhead: float = 1.2        # table storage inflation factor


def system_a():
    """System A: faster machine, bulky index format, candidate-limited
    recommender that collapses on workloads with too many candidate
    structures (reproducing the NREF3J failure)."""
    return SystemProfile(
        name="A",
        hardware=desktop_2004("sysA-p4-2.6GHz"),
        policy=EstimatorPolicy(),
        recommender=RecommenderProfile(
            name="A",
            leading_strategy="selective-first",
            max_candidates=64,
            consider_views=False,
            min_improvement=0.01,
        ),
        index_overhead=2.1,
        heap_overhead=1.25,
    )


def system_b():
    """System B: slower machine, compact indexes, and a recommender that
    leads composite indexes with grouping columns — which is why its
    NREF2J recommendation barely improves on P (Figure 5)."""
    return SystemProfile(
        name="B",
        hardware=desktop_2004("sysB-p4-2.0GHz").scaled(1.6, "sysB-p4-2.0GHz"),
        policy=EstimatorPolicy(groupby_damping=0.9),
        recommender=RecommenderProfile(
            name="B",
            leading_strategy="groupby-first",
            max_candidates=None,
            consider_views=False,
            min_improvement=0.05,
        ),
        index_overhead=1.0,
        heap_overhead=1.1,
    )


def system_c():
    """System C: the system used for the TPC-H experiments; its
    recommender also proposes (indexed) materialized views (Table 3)."""
    return SystemProfile(
        name="C",
        hardware=desktop_2004("sysC-p4-2.4GHz").scaled(1.2, "sysC-p4-2.4GHz"),
        policy=EstimatorPolicy(),
        recommender=RecommenderProfile(
            name="C",
            leading_strategy="selective-first",
            max_candidates=None,
            consider_views=True,
            min_improvement=0.003,
        ),
        index_overhead=1.3,
        heap_overhead=1.2,
    )


def by_name(name):
    """Look up a built-in system profile by its letter."""
    systems = {"A": system_a, "B": system_b, "C": system_c}
    try:
        return systems[name.upper()]()
    except KeyError:
        raise ValueError(f"unknown system {name!r}") from None
