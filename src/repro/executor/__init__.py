"""Vectorized plan execution under the virtual clock."""

from .batch import Batch
from .engine import Executor, ExecutionResult, VirtualClock

__all__ = ["Batch", "Executor", "ExecutionResult", "VirtualClock"]
