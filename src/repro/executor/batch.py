"""Execution batches: the materialized output of a physical operator."""

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Batch:
    """Columnar intermediate result.

    ``columns`` maps batch keys (``"alias.column"`` or output labels) to
    arrays of equal length.  ``weights`` (optional) carries the row
    multiplicity introduced by pre-aggregated view rewrites; ``widths``
    tracks per-key byte widths for spill accounting.
    """

    columns: dict
    widths: dict = field(default_factory=dict)
    weights: np.ndarray = None

    @property
    def rows(self):
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def row_width(self):
        return sum(self.widths.values()) + 8

    def mask(self, keep):
        """A new batch with rows where ``keep`` is True."""
        return Batch(
            columns={k: v[keep] for k, v in self.columns.items()},
            widths=dict(self.widths),
            weights=None if self.weights is None else self.weights[keep],
        )

    def take(self, positions):
        """A new batch gathered at integer positions (with repetition)."""
        return Batch(
            columns={k: v[positions] for k, v in self.columns.items()},
            widths=dict(self.widths),
            weights=None if self.weights is None else self.weights[positions],
        )

    def weight_array(self):
        """Weights as floats, defaulting to all-ones."""
        if self.weights is None:
            return np.ones(self.rows, dtype=np.float64)
        return self.weights.astype(np.float64)


def factorize(values):
    """Dense integer codes for an array (group/join key encoding)."""
    _, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64)


def combine_codes(code_arrays):
    """Combine multiple per-column code arrays into one code per row."""
    if len(code_arrays) == 1:
        return code_arrays[0]
    combined = code_arrays[0].copy()
    for codes in code_arrays[1:]:
        span = int(codes.max()) + 1 if len(codes) else 1
        combined = combined * span + codes
    # Re-densify to keep magnitudes bounded for further combining.
    return factorize(combined)


def join_codes(left_arrays, right_arrays):
    """Comparable integer codes for join keys across two batches.

    Columns are factorized jointly so equal values on either side get the
    same code.
    """
    left_codes, right_codes = [], []
    for larr, rarr in zip(left_arrays, right_arrays):
        both = np.concatenate([larr, rarr])
        codes = factorize(both)
        left_codes.append(codes[: len(larr)])
        right_codes.append(codes[len(larr):])
    if len(left_codes) == 1:
        return left_codes[0], right_codes[0]
    combined = combine_codes(
        [np.concatenate([l, r]) for l, r in zip(left_codes, right_codes)]
    )
    n_left = len(left_codes[0])
    return combined[:n_left], combined[n_left:]
