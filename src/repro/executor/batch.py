"""Execution batches: the materialized output of a physical operator.

Batches optionally carry per-column *encodings* — lazy references to
the owning database's cached :class:`~repro.storage.encoding.ColumnDictionary`
objects.  When present, :func:`factorize` and :func:`join_codes` skip
the ``np.unique`` full sort and derive dense codes from the cached
sorted dictionary instead (``searchsorted`` + a presence scan), with
byte-identical results.  Columns without an encoding (aggregate
outputs, derived labels) always take the legacy sort path.
"""

from dataclasses import dataclass, field

import numpy as np

_INT64_MAX = np.iinfo(np.int64).max


@dataclass
class Batch:
    """Columnar intermediate result.

    ``columns`` maps batch keys (``"alias.column"`` or output labels) to
    arrays of equal length.  ``weights`` (optional) carries the row
    multiplicity introduced by pre-aggregated view rewrites; ``widths``
    tracks per-key byte widths for spill accounting.  ``encodings``
    (optional) maps a subset of batch keys to dictionary handles for
    sort-free factorization; an entry is only valid while the column's
    values remain drawn from the encoded base column, which every
    subsetting operation (mask/take) preserves.  ``codes`` (optional)
    carries the dictionary codes of a further subset of the encoded
    keys *through* the operators: scans attach the base column's cached
    codes and mask/take subset them in lockstep with the values, so a
    downstream join or aggregation factorizes without re-encoding
    (``codes[key][i]`` is always the dictionary code of
    ``columns[key][i]``).
    """

    columns: dict
    widths: dict = field(default_factory=dict)
    weights: np.ndarray = None
    encodings: dict = field(default_factory=dict)
    codes: dict = field(default_factory=dict)

    @property
    def rows(self):
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def row_width(self):
        return sum(self.widths.values()) + 8

    def mask(self, keep):
        """A new batch with rows where ``keep`` is True."""
        return Batch(
            columns={k: v[keep] for k, v in self.columns.items()},
            widths=dict(self.widths),
            weights=None if self.weights is None else self.weights[keep],
            encodings=dict(self.encodings),
            codes={k: v[keep] for k, v in self.codes.items()},
        )

    def take(self, positions):
        """A new batch gathered at integer positions (with repetition)."""
        return Batch(
            columns={k: v[positions] for k, v in self.columns.items()},
            widths=dict(self.widths),
            weights=None if self.weights is None else self.weights[positions],
            encodings=dict(self.encodings),
            codes={k: v[positions] for k, v in self.codes.items()},
        )

    def weight_array(self):
        """Weights as floats, defaulting to all-ones."""
        if self.weights is None:
            return np.ones(self.rows, dtype=np.float64)
        return self.weights.astype(np.float64)


def _resolve_encoding(encoding):
    """The :class:`ColumnDictionary` behind an encoding, or ``None``.

    Accepts a lazy :class:`~repro.storage.encoding.ColumnHandle` (the
    usual batch payload), an already-resolved dictionary, or ``None``.
    """
    if encoding is None:
        return None
    resolve = getattr(encoding, "dictionary", None)
    if callable(resolve):
        return resolve()
    return encoding


def _densify_dict_codes(codes, domain_size):
    """Dense ranks of dictionary-domain codes.

    ``codes`` index into a sorted dictionary of ``domain_size`` values;
    the dense rank of a row is the number of *present* dictionary
    values at or below its own — exactly the inverse that
    ``np.unique(values, return_inverse=True)`` assigns, computed with a
    presence scan instead of a sort.
    """
    present = np.zeros(domain_size, dtype=bool)
    present[codes] = True
    remap = np.cumsum(present) - 1
    return remap[codes].astype(np.int64)


# Presence arrays beyond this many slots stop paying for themselves;
# fall back to the sorting path instead of allocating them.
_DENSIFY_PRESENCE_CAP = 1 << 23


def _densify_ints(codes):
    """Dense ranks of a non-negative int array (``== factorize``).

    Sort-free (presence scan) while the value range stays small
    relative to the array; otherwise the ``np.unique`` path.  Both
    assign ranks in ascending value order, so the output is identical.
    """
    if not len(codes):
        return codes.astype(np.int64)
    top = int(codes.max())
    if top < min(max(65536, 4 * len(codes)), _DENSIFY_PRESENCE_CAP):
        return _densify_dict_codes(codes, top + 1)
    _, dense = np.unique(codes, return_inverse=True)
    return dense.astype(np.int64)


def factorize(values, encoding=None, carried=None):
    """Dense integer codes for an array (group/join key encoding).

    With an ``encoding`` whose dictionary covers ``values`` (the base
    column itself or any subset of it), codes come from the cached
    dictionary: the base column's pre-computed dense codes directly, a
    subset via ``searchsorted`` into the sorted dictionary plus a
    presence-scan densification.  ``carried`` — the subset's dictionary
    codes carried through the operators on ``Batch.codes`` — skips even
    the ``searchsorted``: carried codes equal
    ``dictionary.encode(values)`` elementwise by construction (the base
    codes were gathered in lockstep with the values), so only the
    densification remains.  Without an encoding, ``np.unique`` as
    before.  All paths produce the identical array.
    """
    dictionary = _resolve_encoding(encoding)
    if dictionary is not None:
        if values is dictionary.base:
            return dictionary.encode(values)  # the cached dense codes
        if carried is not None:
            return _densify_dict_codes(carried, dictionary.n_distinct)
        return _densify_dict_codes(
            dictionary.encode(values), dictionary.n_distinct
        )
    _, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64)


def combine_codes(code_arrays):
    """Combine multiple per-column code arrays into one code per row."""
    if len(code_arrays) == 1:
        return code_arrays[0]
    combined = code_arrays[0].copy()
    for codes in code_arrays[1:]:
        span = int(codes.max()) + 1 if len(codes) else 1
        cmax = int(combined.max()) if len(combined) else 0
        if span > 1 and cmax > (_INT64_MAX - (span - 1)) // span:
            # combined * span + codes would wrap int64 (three dense key
            # columns at a few million rows each already exceed 2**63).
            # Re-densifying caps the magnitude at the row count, after
            # which the product fits again.
            combined = _densify_ints(combined)
        combined = combined * span + codes
    # Re-densify to keep magnitudes bounded for further combining.
    return _densify_ints(combined)


def _merged_domain(left_dict, right_dict):
    """``(size, left map, right map)`` of two dictionaries' union."""
    merged = np.union1d(left_dict.values, right_dict.values)
    return (
        len(merged),
        np.searchsorted(merged, left_dict.values),
        np.searchsorted(merged, right_dict.values),
    )


def _join_pair_codes(left, right, left_encoding, right_encoding,
                     left_carried=None, right_carried=None,
                     domains=None):
    """Sort-free joint codes for one join-key column pair, or ``None``.

    Both sides must carry an encoding.  Their dictionaries (one shared
    dictionary for a self-join, otherwise the ``union1d`` of the two
    sorted value sets) define a merged sorted domain; each side maps in
    through its own cached codes, and one presence scan over the merged
    domain assigns the same dense ranks the legacy concatenate-and-sort
    path would.  A side whose dictionary codes were carried through the
    operators (``Batch.codes``) maps in without re-encoding — the
    carried array equals ``encode()``'s output elementwise.  ``domains``
    (a :class:`~repro.executor.subplan.SubplanCache`) memoizes the
    merged domain across queries joining the same dictionary pair.
    """
    left_dict = _resolve_encoding(left_encoding)
    right_dict = _resolve_encoding(right_encoding)
    if left_dict is None or right_dict is None:
        return None
    if left_carried is None:
        left_carried = left_dict.encode(left)
    if right_carried is None:
        right_carried = right_dict.encode(right)
    if left_dict is right_dict:
        domain = left_dict.n_distinct
        left_codes = left_carried
        right_codes = right_carried
    else:
        if domains is not None:
            domain, left_map, right_map = domains.join_domain(
                (id(left_dict), id(right_dict)),
                (left_dict.values, right_dict.values),
                lambda: _merged_domain(left_dict, right_dict),
            )
        else:
            domain, left_map, right_map = _merged_domain(
                left_dict, right_dict
            )
        left_codes = left_map[left_carried]
        right_codes = right_map[right_carried]
    present = np.zeros(domain, dtype=bool)
    present[left_codes] = True
    present[right_codes] = True
    remap = np.cumsum(present) - 1
    return (
        remap[left_codes].astype(np.int64),
        remap[right_codes].astype(np.int64),
    )


def join_codes(left_arrays, right_arrays,
               left_encodings=None, right_encodings=None,
               left_carried=None, right_carried=None,
               domains=None):
    """Comparable integer codes for join keys across two batches.

    Columns are factorized jointly so equal values on either side get the
    same code.  Key columns encoded on *both* sides take the sort-free
    merged-dictionary path (skipping even the per-side re-encode when
    carried dictionary codes are supplied); any other column is
    concatenated and factorized as before.  The codes are identical
    either way.
    """
    left_codes, right_codes = [], []
    for position, (larr, rarr) in enumerate(zip(left_arrays, right_arrays)):
        pair = _join_pair_codes(
            larr, rarr,
            left_encodings[position] if left_encodings else None,
            right_encodings[position] if right_encodings else None,
            left_carried[position] if left_carried else None,
            right_carried[position] if right_carried else None,
            domains=domains,
        )
        if pair is None:
            both = np.concatenate([larr, rarr])
            codes = factorize(both)
            pair = codes[: len(larr)], codes[len(larr):]
        left_codes.append(pair[0])
        right_codes.append(pair[1])
    if len(left_codes) == 1:
        return left_codes[0], right_codes[0]
    combined = combine_codes(
        [np.concatenate([l, r]) for l, r in zip(left_codes, right_codes)]
    )
    n_left = len(left_codes[0])
    return combined[:n_left], combined[n_left:]
