"""Execution batches: the (optionally late-materialized) output of a
physical operator.

Batches optionally carry per-column *encodings* — lazy references to
the owning database's cached :class:`~repro.storage.encoding.ColumnDictionary`
objects.  When present, :func:`factorize` and :func:`join_codes` skip
the ``np.unique`` full sort and derive dense codes from the cached
sorted dictionary instead (``searchsorted`` + a presence scan), with
byte-identical results.  Columns without an encoding (aggregate
outputs, derived labels) always take the legacy sort path.

Under ``REPRO_LATE_MAT`` batches are *views*: a lazy batch carries base
arrays plus per-key ``sels`` selection vectors (int64 row ids into the
stored array), and ``mask``/``take`` compose selection vectors
(``sel = sel[positions]``) without touching payload columns.  Values
are gathered only when an operator actually reads them
(:meth:`Batch.column`), with dictionary ``codes`` subset lazily in
lockstep.  With the knob off every batch is eager (``lazy=False``) and
``mask``/``take`` copy as before.
"""

import threading
from dataclasses import dataclass, field

import numpy as np

from .. import obs

_INT64_MAX = np.iinfo(np.int64).max


class _OnesPool:
    """Shared read-only all-ones float64 array for default weights.

    ``Batch.weight_array`` sits in the aggregate hot loop and used to
    allocate a fresh ones array per call; every consumer treats the
    default weights as read-only (bincount inputs, elementwise
    multiplies), so one shared immutable buffer serves them all.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._ones = np.ones(0, dtype=np.float64)
        self._ones.setflags(write=False)

    def get(self, n):
        with self._lock:
            ones = self._ones
        if len(ones) < n:
            ones = np.ones(max(n, 2 * len(ones)), dtype=np.float64)
            ones.setflags(write=False)
            with self._lock:
                if len(ones) > len(self._ones):
                    self._ones = ones
            obs.counter_add("executor.ones_allocations")
        return ones[:n]


_ONES = _OnesPool()


@dataclass
class Batch:
    """Columnar intermediate result.

    ``columns`` maps batch keys (``"alias.column"`` or output labels) to
    arrays; in an eager batch they all have ``rows`` entries, in a lazy
    batch a key listed in ``sels`` maps to its *base* array and
    ``sels[key]`` holds the row ids selecting from it.  ``weights``
    (optional) carries the row multiplicity introduced by
    pre-aggregated view rewrites; ``widths`` tracks per-key byte widths
    for spill accounting (and stays complete even when column pruning
    leaves a key unattached, so cost charges are representation-
    independent).  ``encodings`` (optional) maps a subset of batch keys
    to dictionary handles for sort-free factorization; an entry is only
    valid while the column's values remain drawn from the encoded base
    column, which every subsetting operation (mask/take) preserves.
    ``codes`` (optional) carries the dictionary codes of a further
    subset of the encoded keys *through* the operators: scans attach
    the base column's cached codes and mask/take subset them in
    lockstep with the values, so a downstream join or aggregation
    factorizes without re-encoding (``codes[key]`` is aligned with
    ``columns[key]`` under the same ``sels`` entry, so after gathering,
    ``codes[key][i]`` is always the dictionary code of
    ``columns[key][i]``).
    """

    columns: dict
    widths: dict = field(default_factory=dict)
    weights: np.ndarray = None
    encodings: dict = field(default_factory=dict)
    codes: dict = field(default_factory=dict)
    sels: dict = field(default_factory=dict)
    lazy: bool = False
    length: int = None

    @property
    def rows(self):
        if self.length is not None:
            return self.length
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def row_width(self):
        return sum(self.widths.values()) + 8

    def mask(self, keep):
        """A new batch with rows where ``keep`` is True."""
        if not self.lazy:
            return Batch(
                columns={k: v[keep] for k, v in self.columns.items()},
                widths=dict(self.widths),
                weights=None if self.weights is None else self.weights[keep],
                encodings=dict(self.encodings),
                codes={k: v[keep] for k, v in self.codes.items()},
            )
        return self._select(np.flatnonzero(keep), keep=keep)

    def take(self, positions):
        """A new batch gathered at integer positions (with repetition)."""
        if not self.lazy:
            return Batch(
                columns={k: v[positions] for k, v in self.columns.items()},
                widths=dict(self.widths),
                weights=(
                    None if self.weights is None else self.weights[positions]
                ),
                encodings=dict(self.encodings),
                codes={k: v[positions] for k, v in self.codes.items()},
            )
        return self._select(np.asarray(positions, dtype=np.int64))

    def _select(self, positions, keep=None):
        """Compose ``positions`` into every selection vector, copying
        nothing but the vectors themselves (and eager weights)."""
        composed = {}
        sels = {}
        deferred = 0
        avoided = 0
        out_rows = len(positions)
        for key in self.columns:
            sel = self.sels.get(key)
            if sel is None:
                sels[key] = positions
            else:
                new = composed.get(id(sel))
                if new is None:
                    new = sel[positions]
                    composed[id(sel)] = new
                sels[key] = new
            deferred += 1
            avoided += out_rows * self.widths.get(key, 8)
        if deferred:
            obs.counter_add("executor.gathers_deferred", deferred)
            obs.counter_add("executor.gather_bytes_avoided", avoided)
        if self.weights is None:
            weights = None
        elif keep is not None:
            weights = self.weights[keep]
        else:
            weights = self.weights[positions]
        return Batch(
            columns=dict(self.columns),
            widths=dict(self.widths),
            weights=weights,
            encodings=dict(self.encodings),
            codes=dict(self.codes),
            sels=sels,
            lazy=True,
            length=out_rows,
        )

    def selected(self, key):
        """Does ``key`` still sit behind an ungathered selection vector?"""
        return key in self.sels

    def column(self, key):
        """The materialized values of ``key``, gathering (memoized) if a
        selection vector is pending; codes gather in lockstep."""
        sel = self.sels.get(key)
        values = self.columns[key]
        if sel is None:
            return values
        values = values[sel]
        self.columns[key] = values
        carried = self.codes.get(key)
        if carried is not None:
            self.codes[key] = carried[sel]
        del self.sels[key]
        return values

    def gather(self, key, positions):
        """Values of ``key`` at row ``positions`` without materializing
        the whole column (aggregate outputs read one value per group)."""
        sel = self.sels.get(key)
        values = self.columns[key]
        if sel is None:
            return values[positions]
        return values[sel[positions]]

    def carried_codes(self, key):
        """The carried dictionary codes of ``key`` aligned to this
        batch's rows, or ``None``; never memoizes (a values/codes pair
        must only be cached together, in :meth:`column`)."""
        carried = self.codes.get(key)
        if carried is None:
            return None
        sel = self.sels.get(key)
        if sel is None:
            return carried
        return carried[sel]

    def materialize(self):
        """Gather every pending column in place; the result has plain
        equal-length arrays like an eager batch."""
        for key in list(self.sels):
            self.column(key)
        self.lazy = False
        return self

    def weight_array(self):
        """Weights as floats, defaulting to a shared read-only ones view."""
        if self.weights is None:
            return _ONES.get(self.rows)
        return self.weights.astype(np.float64)


def _resolve_encoding(encoding):
    """The :class:`ColumnDictionary` behind an encoding, or ``None``.

    Accepts a lazy :class:`~repro.storage.encoding.ColumnHandle` (the
    usual batch payload), an already-resolved dictionary, or ``None``.
    """
    if encoding is None:
        return None
    resolve = getattr(encoding, "dictionary", None)
    if callable(resolve):
        return resolve()
    return encoding


def _densify_dict_codes(codes, domain_size):
    """Dense ranks of dictionary-domain codes.

    ``codes`` index into a sorted dictionary of ``domain_size`` values;
    the dense rank of a row is the number of *present* dictionary
    values at or below its own — exactly the inverse that
    ``np.unique(values, return_inverse=True)`` assigns, computed with a
    presence scan instead of a sort.
    """
    present = np.zeros(domain_size, dtype=bool)
    present[codes] = True
    remap = np.cumsum(present) - 1
    return remap[codes].astype(np.int64)


# Presence arrays beyond this many slots stop paying for themselves;
# fall back to the sorting path instead of allocating them.
_DENSIFY_PRESENCE_CAP = 1 << 23


def _densify_ints(codes):
    """Dense ranks of a non-negative int array (``== factorize``).

    Sort-free (presence scan) while the value range stays small
    relative to the array; otherwise the ``np.unique`` path.  Both
    assign ranks in ascending value order, so the output is identical.
    """
    if not len(codes):
        return codes.astype(np.int64)
    top = int(codes.max())
    if top < min(max(65536, 4 * len(codes)), _DENSIFY_PRESENCE_CAP):
        return _densify_dict_codes(codes, top + 1)
    _, dense = np.unique(codes, return_inverse=True)
    return dense.astype(np.int64)


def factorize(values, encoding=None, carried=None):
    """Dense integer codes for an array (group/join key encoding).

    With an ``encoding`` whose dictionary covers ``values`` (the base
    column itself or any subset of it), codes come from the cached
    dictionary: the base column's pre-computed dense codes directly, a
    subset via ``searchsorted`` into the sorted dictionary plus a
    presence-scan densification.  ``carried`` — the subset's dictionary
    codes carried through the operators on ``Batch.codes`` — skips even
    the ``searchsorted``: carried codes equal
    ``dictionary.encode(values)`` elementwise by construction (the base
    codes were gathered in lockstep with the values), so only the
    densification remains.  Without an encoding, ``np.unique`` as
    before.  All paths produce the identical array.
    """
    dictionary = _resolve_encoding(encoding)
    if dictionary is not None:
        if values is dictionary.base:
            return dictionary.encode(values)  # the cached dense codes
        if carried is not None:
            return _densify_dict_codes(carried, dictionary.n_distinct)
        return _densify_dict_codes(
            dictionary.encode(values), dictionary.n_distinct
        )
    _, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64)


def combine_codes(code_arrays):
    """Combine multiple per-column code arrays into one code per row."""
    if len(code_arrays) == 1:
        return code_arrays[0]
    combined = code_arrays[0].copy()
    for codes in code_arrays[1:]:
        span = int(codes.max()) + 1 if len(codes) else 1
        cmax = int(combined.max()) if len(combined) else 0
        if span > 1 and cmax > (_INT64_MAX - (span - 1)) // span:
            # combined * span + codes would wrap int64 (three dense key
            # columns at a few million rows each already exceed 2**63).
            # Re-densifying caps the magnitude at the row count, after
            # which the product fits again.
            combined = _densify_ints(combined)
        combined = combined * span + codes
    # Re-densify to keep magnitudes bounded for further combining.
    return _densify_ints(combined)


def _merged_domain(left_dict, right_dict):
    """``(size, left map, right map)`` of two dictionaries' union."""
    merged = np.union1d(left_dict.values, right_dict.values)
    return (
        len(merged),
        np.searchsorted(merged, left_dict.values),
        np.searchsorted(merged, right_dict.values),
    )


def _join_pair_codes(left, right, left_encoding, right_encoding,
                     left_carried=None, right_carried=None,
                     domains=None):
    """Sort-free joint codes for one join-key column pair, or ``None``.

    Both sides must carry an encoding.  Their dictionaries (one shared
    dictionary for a self-join, otherwise the ``union1d`` of the two
    sorted value sets) define a merged sorted domain; each side maps in
    through its own cached codes, and one presence scan over the merged
    domain assigns the same dense ranks the legacy concatenate-and-sort
    path would.  A side whose dictionary codes were carried through the
    operators (``Batch.codes``) maps in without re-encoding — the
    carried array equals ``encode()``'s output elementwise.  ``domains``
    (a :class:`~repro.executor.subplan.SubplanCache`) memoizes the
    merged domain across queries joining the same dictionary pair.
    """
    left_dict = _resolve_encoding(left_encoding)
    right_dict = _resolve_encoding(right_encoding)
    if left_dict is None or right_dict is None:
        return None
    if left_carried is None:
        left_carried = left_dict.encode(left)
    if right_carried is None:
        right_carried = right_dict.encode(right)
    if left_dict is right_dict:
        domain = left_dict.n_distinct
        left_codes = left_carried
        right_codes = right_carried
    else:
        if domains is not None:
            domain, left_map, right_map = domains.join_domain(
                (id(left_dict), id(right_dict)),
                (left_dict.values, right_dict.values),
                lambda: _merged_domain(left_dict, right_dict),
            )
        else:
            domain, left_map, right_map = _merged_domain(
                left_dict, right_dict
            )
        left_codes = left_map[left_carried]
        right_codes = right_map[right_carried]
    present = np.zeros(domain, dtype=bool)
    present[left_codes] = True
    present[right_codes] = True
    remap = np.cumsum(present) - 1
    return (
        remap[left_codes].astype(np.int64),
        remap[right_codes].astype(np.int64),
    )


def join_codes(left_arrays, right_arrays,
               left_encodings=None, right_encodings=None,
               left_carried=None, right_carried=None,
               domains=None):
    """Comparable integer codes for join keys across two batches.

    Columns are factorized jointly so equal values on either side get the
    same code.  Key columns encoded on *both* sides take the sort-free
    merged-dictionary path (skipping even the per-side re-encode when
    carried dictionary codes are supplied); any other column is
    concatenated and factorized as before.  The codes are identical
    either way.
    """
    left_codes, right_codes = [], []
    for position, (larr, rarr) in enumerate(zip(left_arrays, right_arrays)):
        pair = _join_pair_codes(
            larr, rarr,
            left_encodings[position] if left_encodings else None,
            right_encodings[position] if right_encodings else None,
            left_carried[position] if left_carried else None,
            right_carried[position] if right_carried else None,
            domains=domains,
        )
        if pair is None:
            both = np.concatenate([larr, rarr])
            codes = factorize(both)
            pair = codes[: len(larr)], codes[len(larr):]
        left_codes.append(pair[0])
        right_codes.append(pair[1])
    if len(left_codes) == 1:
        return left_codes[0], right_codes[0]
    combined = combine_codes(
        [np.concatenate([l, r]) for l, r in zip(left_codes, right_codes)]
    )
    n_left = len(left_codes[0])
    return combined[:n_left], combined[n_left:]
