"""Plan execution against the virtual clock.

The executor runs physical plans *for real* over the columnar tables —
all intermediate cardinalities are exact — while charging the shared cost
model (:mod:`repro.optimizer.cost_model`) with those actual counts.  The
accumulated charge is the query's **actual cost** ``A(q, C)`` in the
paper's terminology.  A query whose charge crosses the timeout raises
:class:`~repro.common.errors.QueryTimeout` *before* materializing the
offending intermediate, so runaway plans (the paper's ``t_out`` bin) are
cheap to detect.

Scans, probes, and joins additionally feed the ``engine.*`` counters of
the observability layer (rows scanned, pages read, index probes, join
output rows); with no recorder installed those calls are no-ops and the
virtual clock is untouched either way.

With a :class:`~repro.storage.sharding.ShardRuntime` attached, scans of
sharded tables evaluate filter predicates and semijoin membership per
shard — optionally on the runtime's process pool over shared-memory
arrays — and scatter the per-shard masks back in deterministic shard
order.  The cost charge comes from
:func:`~repro.optimizer.cost_model.sharded_seq_scan`, which conserves
table totals, so both the result batch and the virtual clock are
byte-identical with sharding on or off.
"""

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..common.errors import ExecutionError, QueryTimeout
from ..optimizer import cost_model as cm
from ..optimizer.plans import (
    HashAggregate,
    HashJoin,
    IndexNLJoin,
    IndexScan,
    Project,
    SemiIndexScan,
    SeqScan,
    ViewScan,
)
from ..storage.sharding import ShardedTable, ValueCountSketch
from ..views.matview import COUNT_COLUMN
from .batch import Batch, combine_codes, factorize, join_codes

MAX_MATERIALIZED_ROWS = 8_000_000


class VirtualClock:
    """Accumulates virtual seconds; enforces the per-query timeout."""

    def __init__(self, timeout=None):
        self.elapsed = 0.0
        self.timeout = timeout

    def charge(self, seconds):
        self.elapsed += seconds
        if self.timeout is not None and self.elapsed > self.timeout:
            raise QueryTimeout(self.timeout, self.elapsed)


@dataclass
class ExecutionResult:
    """Outcome of running one plan."""

    batch: Batch
    elapsed: float
    plan: object


class Executor:
    """Executes plans over built tables, indexes, and views."""

    def __init__(self, tables, hardware, timeout=None, encodings=None,
                 sharding=None):
        self._tables = tables
        self._hw = hardware
        self._timeout = timeout
        # Optional DictionaryCache: scans attach lazy per-column
        # dictionary handles to their batches so factorize/join_codes
        # can take the sort-free paths.  None = legacy behaviour.
        self._encodings = encodings
        # Optional ShardRuntime: scans of sharded tables evaluate
        # filters/semijoins per shard (process pool when configured).
        self._sharding = sharding

    def run(self, plan):
        """Execute a plan; returns an :class:`ExecutionResult`.

        Raises :class:`QueryTimeout` when the virtual clock exceeds the
        timeout (the charge so far is available on the exception).
        """
        clock = VirtualClock(self._timeout)
        batch = self._exec(plan, clock)
        return ExecutionResult(batch=batch, elapsed=clock.elapsed, plan=plan)

    # ------------------------------------------------------------------

    def _exec(self, node, clock):
        if isinstance(node, SeqScan):
            return self._seq_scan(node, clock)
        if isinstance(node, IndexScan):
            return self._index_scan(node, clock)
        if isinstance(node, SemiIndexScan):
            return self._semi_index_scan(node, clock)
        if isinstance(node, ViewScan):
            return self._view_scan(node, clock)
        if isinstance(node, HashJoin):
            return self._hash_join(node, clock)
        if isinstance(node, IndexNLJoin):
            return self._inl_join(node, clock)
        if isinstance(node, HashAggregate):
            return self._aggregate(node, clock)
        if isinstance(node, Project):
            child = self._exec(node.child, clock)
            clock.charge(cm.filter_rows(self._hw, child.rows))
            return Batch(
                columns={k: child.columns[k] for k in node.keys},
                widths={k: child.widths[k] for k in node.keys},
                weights=child.weights,
                encodings={
                    k: child.encodings[k]
                    for k in node.keys if k in child.encodings
                },
            )
        raise ExecutionError(f"no executor for node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Scans

    def _table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError(f"table {name!r} is not loaded") from None

    def _base_batch(self, alias, table, columns):
        widths = {
            f"{alias}.{c}": table.schema.column(c).width for c in columns
        }
        return Batch(
            columns={
                f"{alias}.{c}": table.column(c) for c in columns
            },
            widths=widths,
            encodings=self._column_handles(alias, table, columns),
        )

    def _column_handles(self, alias, table, columns):
        """Lazy dictionary handles for base-table columns (or empty)."""
        if self._encodings is None:
            return {}
        return {
            f"{alias}.{c}": self._encodings.handle(table, c)
            for c in columns
        }

    def _apply_filters(self, batch, filters, clock, table=None, alias=None):
        if not filters:
            return batch
        clock.charge(cm.filter_rows(self._hw, batch.rows, len(filters)))
        specs = self._shard_specs(batch, filters, table, alias)
        if specs is not None:
            return batch.mask(self._sharding.filter_mask(table, specs))
        keep = np.ones(batch.rows, dtype=bool)
        for flt in filters:
            values = batch.columns[flt.key]
            keep &= _compare(values, flt.op, flt.value)
        return batch.mask(keep)

    def _shard_specs(self, batch, filters, table, alias):
        """``(column, op, value)`` specs when the shard path applies.

        The per-shard mask is only equivalent to the elementwise mask
        when the batch columns *are* the table's full storage arrays —
        an unfiltered base batch.  Identity is checked per filter key;
        any already-masked batch, view column, or computed column
        routes back to the elementwise path.
        """
        if self._sharding is None or not filters:
            return None
        if not (isinstance(table, ShardedTable) and table.shards > 1):
            return None
        prefix = f"{alias}."
        specs = []
        for flt in filters:
            if not flt.key.startswith(prefix):
                return None
            name = flt.key[len(prefix):]
            if batch.columns[flt.key] is not table.column(name):
                return None
            specs.append((name, flt.op, flt.value))
        return specs

    def _apply_semis(self, batch, semi_filters, clock, table=None,
                     alias=None):
        sharded = (
            self._sharding is not None
            and isinstance(table, ShardedTable) and table.shards > 1
        )
        prefix = f"{alias}."
        for semi in semi_filters:
            allowed = self._semi_allowed(semi.source, clock)
            clock.charge(cm.filter_rows(self._hw, batch.rows))
            name = semi.key[len(prefix):] if semi.key.startswith(prefix) \
                else None
            if (sharded and name is not None
                    and batch.columns[semi.key] is table.column(name)):
                # The identity check only passes for an unfiltered base
                # batch; after a mask the columns are subset copies and
                # later semis take the elementwise path.
                keep = self._sharding.isin_mask(table, name, allowed)
            else:
                keep = np.isin(batch.columns[semi.key], allowed)
            batch = batch.mask(keep)
        return batch

    def _semi_allowed(self, source, clock):
        semi = source.semi
        if source.via == "view":
            view = source.view
            clock.charge(
                cm.seq_scan(self._hw, view.page_count, view.rows)
            )
            table = view.data
            values = table.column(source.view.definition.group_columns[0].name)
            counts = table.column(COUNT_COLUMN)
        elif source.via == "index_only":
            info = source.index
            clock.charge(
                cm.index_descend(self._hw, info.height)
                + info.leaf_pages * self._hw.seq_page_read_s
                + info.entries * self._hw.cpu_row_s * 2
            )
            keys = info.data.leading_keys
            values, counts = np.unique(keys, return_counts=True)
        else:
            table = self._table(semi.sub_table)
            if self._encodings is not None:
                # Shard-aware already: a DictionaryCache attached to a
                # ShardRuntime assembles sharded tables' dictionaries
                # from per-shard sketches.
                dictionary = self._encodings.dictionary(
                    table, semi.sub_column
                )
                values, counts = dictionary.values, dictionary.counts
            elif (self._sharding is not None
                    and isinstance(table, ShardedTable)
                    and table.shards > 1):
                sketch = ValueCountSketch.merge(
                    self._sharding.column_sketches(table, semi.sub_column)
                )
                values, counts = sketch.values, sketch.counts
            else:
                column = table.column(semi.sub_column)
                values, counts = np.unique(column, return_counts=True)
            clock.charge(
                cm.seq_scan(self._hw, table.page_count(), table.row_count)
                + cm.hash_aggregate(
                    self._hw,
                    table.row_count,
                    len(values),
                    table.schema.column(semi.sub_column).width,
                )
            )
        keep = _compare(counts, semi.having_op, semi.having_value)
        return values[keep]

    def _seq_scan(self, node, clock):
        table = self._table(node.table)
        if isinstance(table, ShardedTable) and table.shards > 1:
            clock.charge(
                cm.sharded_seq_scan(
                    self._hw, table.page_count(), table.row_count,
                    table.shard_lengths(),
                )
            )
        else:
            clock.charge(
                cm.seq_scan(self._hw, table.page_count(), table.row_count)
            )
        obs.counter_add("engine.rows_scanned", table.row_count)
        obs.counter_add("engine.pages_read", table.page_count())
        batch = self._base_batch(node.alias, table, node.columns)
        batch = self._apply_filters(batch, node.filters, clock,
                                    table=table, alias=node.alias)
        batch = self._apply_semis(batch, node.semi_filters, clock,
                                  table=table, alias=node.alias)
        return batch

    def _index_scan(self, node, clock):
        table = self._table(node.table)
        info = node.index
        if info.data is None:
            raise ExecutionError(
                f"index {info.definition.name} is hypothetical; "
                "plans against hypothetical configurations cannot run"
            )
        if node.prefix_filters:
            values = tuple(f.value for f in node.prefix_filters)
            row_ids = info.data.lookup_eq(values)
            matched = len(row_ids)
            obs.counter_add("engine.index_probes")
            obs.counter_add("engine.rows_scanned", matched)
            clock.charge(
                cm.index_descend(self._hw, info.height)
                + cm.index_leaf_range(
                    self._hw, matched, info.entries, info.leaf_pages
                )
            )
            if not node.index_only:
                clock.charge(
                    cm.heap_fetch(
                        self._hw,
                        matched,
                        info.cluster_factor,
                        table.page_count(),
                        table.row_count,
                    )
                )
            columns = table.take(row_ids, node.columns)
            widths = {
                f"{node.alias}.{c}": table.schema.column(c).width
                for c in node.columns
            }
            batch = Batch(
                columns={
                    f"{node.alias}.{c}": columns[c] for c in node.columns
                },
                widths=widths,
                encodings=self._column_handles(
                    node.alias, table, node.columns
                ),
            )
        else:
            # Covering full index-only scan.
            clock.charge(
                cm.index_descend(self._hw, info.height)
                + info.leaf_pages * self._hw.seq_page_read_s
                + info.entries * self._hw.cpu_row_s
            )
            obs.counter_add("engine.rows_scanned", info.entries)
            obs.counter_add("engine.pages_read", info.leaf_pages)
            batch = self._base_batch(node.alias, table, node.columns)
        # A covering scan's batch columns are the table's own arrays,
        # so the shard path applies; the probe branch built subset
        # copies and the identity checks route it elementwise.
        batch = self._apply_filters(batch, node.residual_filters, clock,
                                    table=table, alias=node.alias)
        batch = self._apply_semis(batch, node.semi_filters, clock,
                                  table=table, alias=node.alias)
        return batch

    def _semi_index_scan(self, node, clock):
        table = self._table(node.table)
        info = node.index
        if info.data is None:
            raise ExecutionError(
                f"index {info.definition.name} is hypothetical; cannot run"
            )
        allowed = self._semi_allowed(node.driving.source, clock)
        counts = info.data.count_many(allowed)
        matched = int(counts.sum())
        obs.counter_add("engine.index_probes", len(allowed))
        obs.counter_add("engine.rows_scanned", matched)
        clock.charge(
            cm.index_probes(
                self._hw, len(allowed), info.entries, info.leaf_pages
            )
        )
        clock.charge(
            cm.heap_fetch(
                self._hw, matched, info.cluster_factor,
                table.page_count(), table.row_count,
            )
        )
        _guard_materialization(matched)
        (row_ids, _), __ = info.data.probe_many(allowed)
        columns = table.take(row_ids, node.columns)
        widths = {
            f"{node.alias}.{c}": table.schema.column(c).width
            for c in node.columns
        }
        batch = Batch(
            columns={
                f"{node.alias}.{c}": columns[c] for c in node.columns
            },
            widths=widths,
            encodings=self._column_handles(node.alias, table, node.columns),
        )
        batch = self._apply_filters(batch, node.residual_filters, clock)
        batch = self._apply_semis(batch, node.semi_filters, clock)
        return batch

    def _view_scan(self, node, clock):
        view = node.view
        if view.data is None:
            raise ExecutionError(
                f"view {view.definition.name} is hypothetical; cannot run"
            )
        table = view.data
        clock.charge(cm.seq_scan(self._hw, view.page_count, view.rows))
        obs.counter_add("engine.rows_scanned", view.rows)
        obs.counter_add("engine.pages_read", view.page_count)
        schema = table.schema
        columns, widths, encodings = {}, {}, {}
        for batch_key, view_col in node.column_map.items():
            columns[batch_key] = table.column(view_col)
            widths[batch_key] = schema.column(view_col).width
            if self._encodings is not None:
                encodings[batch_key] = self._encodings.handle(
                    table, view_col
                )
        weights = table.column(COUNT_COLUMN).astype(np.float64)
        batch = Batch(
            columns=columns, widths=widths, weights=weights,
            encodings=encodings,
        )
        if node.filters:
            clock.charge(
                cm.filter_rows(self._hw, batch.rows, len(node.filters))
            )
            keep = np.ones(batch.rows, dtype=bool)
            for flt in node.filters:
                values = table.column(flt.column)
                keep &= _compare(values, flt.op, flt.value)
            batch = batch.mask(keep)
        return batch

    # ------------------------------------------------------------------
    # Joins

    def _hash_join(self, node, clock):
        left = self._exec(node.left, clock)
        right = self._exec(node.right, clock)

        clock.charge(cm.hash_build(self._hw, right.rows, right.row_width))
        clock.charge(cm.hash_probe(self._hw, left.rows))

        lcodes, rcodes = join_codes(
            [left.columns[k] for k in node.left_keys],
            [right.columns[k] for k in node.right_keys],
            left_encodings=[
                left.encodings.get(k) for k in node.left_keys
            ],
            right_encodings=[
                right.encodings.get(k) for k in node.right_keys
            ],
        )
        order = np.argsort(rcodes, kind="stable")
        sorted_codes = rcodes[order]
        lows = np.searchsorted(sorted_codes, lcodes, side="left")
        highs = np.searchsorted(sorted_codes, lcodes, side="right")
        counts = highs - lows
        out_rows = int(counts.sum())

        out_width = left.row_width + right.row_width
        clock.charge(cm.join_output(self._hw, out_rows, out_width))
        obs.counter_add("engine.join_output_rows", out_rows)
        _guard_materialization(out_rows)

        left_pos = np.repeat(np.arange(left.rows), counts)
        starts = np.repeat(lows, counts)
        offsets = np.arange(out_rows) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        ) if out_rows else np.empty(0, dtype=np.int64)
        right_pos = order[starts + offsets] if out_rows else (
            np.empty(0, dtype=np.int64)
        )

        lbatch = left.take(left_pos)
        rbatch = right.take(right_pos)
        columns = dict(lbatch.columns)
        columns.update(rbatch.columns)
        widths = dict(lbatch.widths)
        widths.update(rbatch.widths)
        encodings = dict(lbatch.encodings)
        encodings.update(rbatch.encodings)
        weights = None
        if left.weights is not None or right.weights is not None:
            weights = lbatch.weight_array() * rbatch.weight_array()
        return Batch(
            columns=columns, widths=widths, weights=weights,
            encodings=encodings,
        )

    def _inl_join(self, node, clock):
        outer = self._exec(node.outer, clock)
        table = self._table(node.table)
        info = node.index
        if info.data is None:
            raise ExecutionError(
                f"index {info.definition.name} is hypothetical; cannot run"
            )
        probes = outer.columns[node.outer_key]
        counts = info.data.count_many(probes)
        matched = int(counts.sum())
        obs.counter_add("engine.index_probes", len(probes))
        obs.counter_add("engine.rows_scanned", matched)
        clock.charge(
            cm.index_probes(
                self._hw, len(probes), info.entries, info.leaf_pages
            )
        )
        if node.index_only:
            clock.charge(matched * self._hw.cpu_row_s)
        else:
            clock.charge(
                cm.heap_fetch(
                    self._hw, matched, info.cluster_factor,
                    table.page_count(), table.row_count,
                )
            )
        inner_width = sum(
            table.schema.column(c).width for c in node.columns
        ) + cm.ROW_OVERHEAD
        clock.charge(
            cm.join_output(self._hw, matched, outer.row_width + inner_width)
        )
        _guard_materialization(matched)

        (row_ids, probe_idx), _ = info.data.probe_many(probes)
        obatch = outer.take(probe_idx)
        inner_cols = table.take(row_ids, node.columns)
        columns = dict(obatch.columns)
        widths = dict(obatch.widths)
        encodings = dict(obatch.encodings)
        encodings.update(
            self._column_handles(node.alias, table, node.columns)
        )
        for col in node.columns:
            columns[f"{node.alias}.{col}"] = inner_cols[col]
            widths[f"{node.alias}.{col}"] = table.schema.column(col).width
        batch = Batch(
            columns=columns, widths=widths, weights=obatch.weights,
            encodings=encodings,
        )

        extra = getattr(node, "extra_preds", [])
        if extra:
            clock.charge(cm.filter_rows(self._hw, batch.rows, len(extra)))
            keep = np.ones(batch.rows, dtype=bool)
            for outer_key, inner_col in extra:
                keep &= (
                    batch.columns[outer_key]
                    == batch.columns[f"{node.alias}.{inner_col}"]
                )
            batch = batch.mask(keep)
        batch = self._apply_filters(batch, node.residual_filters, clock)
        batch = self._apply_semis(batch, node.semi_filters, clock)
        return batch

    # ------------------------------------------------------------------
    # Aggregation

    def _aggregate(self, node, clock):
        child = self._exec(node.child, clock)
        rows = child.rows

        if node.group_keys:
            codes = combine_codes(
                [
                    factorize(child.columns[k], child.encodings.get(k))
                    for k in node.group_keys
                ]
            )
            n_groups = int(codes.max()) + 1 if rows else 0
        else:
            codes = np.zeros(rows, dtype=np.int64)
            n_groups = 1 if rows else 0

        clock.charge(
            cm.hash_aggregate(
                self._hw, rows, max(n_groups, 1), child.row_width
            )
        )

        columns, widths = {}, {}
        if rows:
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            firsts = order[
                np.searchsorted(sorted_codes, np.arange(n_groups), side="left")
            ]
        else:
            firsts = np.empty(0, dtype=np.int64)
        for key in node.group_keys:
            columns[key] = child.columns[key][firsts]
            widths[key] = child.widths[key]

        wts = child.weight_array()
        for i, agg in enumerate(node.aggregates):
            label = f"agg{i}:{agg.label()}"
            if agg.func == "count" and not agg.distinct:
                values = np.bincount(
                    codes, weights=wts, minlength=max(n_groups, 1)
                )[:n_groups] if rows else np.empty(0)
                columns[label] = np.round(values).astype(np.int64)
            elif agg.func == "count" and agg.distinct:
                columns[label] = self._count_distinct(
                    codes, child.columns[str(agg.arg)], n_groups,
                    child.encodings.get(str(agg.arg)),
                )
            elif agg.func in ("sum", "avg"):
                arg = child.columns[str(agg.arg)].astype(np.float64)
                sums = np.bincount(
                    codes, weights=arg * wts, minlength=max(n_groups, 1)
                )[:n_groups] if rows else np.empty(0)
                if agg.func == "sum":
                    columns[label] = sums
                else:
                    cnt = np.bincount(
                        codes, weights=wts, minlength=max(n_groups, 1)
                    )[:n_groups] if rows else np.empty(0)
                    columns[label] = sums / np.maximum(cnt, 1)
            elif agg.func in ("min", "max"):
                columns[label] = self._min_max(
                    codes, child.columns[str(agg.arg)], n_groups, agg.func
                )
            else:
                raise ExecutionError(f"unsupported aggregate {agg.func!r}")
            widths[label] = 8
        return Batch(
            columns=columns, widths=widths,
            encodings={
                k: child.encodings[k]
                for k in node.group_keys if k in child.encodings
            },
        )

    @staticmethod
    def _count_distinct(codes, values, n_groups, encoding=None):
        if len(codes) == 0:
            return np.empty(0, dtype=np.int64)
        vcodes = factorize(values, encoding)
        span = int(vcodes.max()) + 1
        pairs = np.unique(codes * span + vcodes)
        group_of_pair = pairs // span
        return np.bincount(group_of_pair, minlength=n_groups).astype(np.int64)

    @staticmethod
    def _min_max(codes, values, n_groups, func):
        if len(codes) == 0:
            return np.empty(0, dtype=values.dtype)
        order = np.lexsort((values, codes))
        sorted_codes = codes[order]
        sorted_values = values[order]
        starts = np.searchsorted(sorted_codes, np.arange(n_groups), "left")
        if func == "min":
            return sorted_values[starts]
        ends = np.searchsorted(sorted_codes, np.arange(n_groups), "right")
        return sorted_values[ends - 1]


def _compare(values, op, literal):
    if op == "=":
        return values == literal
    if op == "<>":
        return values != literal
    if op == "<":
        return values < literal
    if op == "<=":
        return values <= literal
    if op == ">":
        return values > literal
    if op == ">=":
        return values >= literal
    raise ExecutionError(f"unsupported comparison operator {op!r}")


def _guard_materialization(rows):
    if rows > MAX_MATERIALIZED_ROWS:
        raise ExecutionError(
            f"refusing to materialize {rows} rows; the cost model should "
            "have timed this plan out first — check the hardware profile"
        )
