"""Plan execution against the virtual clock.

The executor runs physical plans *for real* over the columnar tables —
all intermediate cardinalities are exact — while charging the shared cost
model (:mod:`repro.optimizer.cost_model`) with those actual counts.  The
accumulated charge is the query's **actual cost** ``A(q, C)`` in the
paper's terminology.  A query whose charge crosses the timeout raises
:class:`~repro.common.errors.QueryTimeout` *before* materializing the
offending intermediate, so runaway plans (the paper's ``t_out`` bin) are
cheap to detect.

Scans, probes, and joins additionally feed the ``engine.*`` counters of
the observability layer (rows scanned, pages read, index probes, join
output rows); with no recorder installed those calls are no-ops and the
virtual clock is untouched either way.

With a :class:`~repro.storage.sharding.ShardRuntime` attached, scans of
sharded tables evaluate filter predicates and semijoin membership per
shard — optionally on the runtime's process pool over shared-memory
arrays — and scatter the per-shard masks back in deterministic shard
order.  The cost charge comes from
:func:`~repro.optimizer.cost_model.sharded_seq_scan`, which conserves
table totals, so both the result batch and the virtual clock are
byte-identical with sharding on or off.
"""

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..common.errors import ExecutionError, QueryTimeout
from ..optimizer import cost_model as cm
from ..optimizer.plans import (
    HashAggregate,
    HashJoin,
    IndexNLJoin,
    IndexScan,
    Project,
    SemiIndexScan,
    SeqScan,
    ViewScan,
)
from ..storage.sharding import ShardedTable, ValueCountSketch
from ..views.matview import COUNT_COLUMN
from .batch import (
    Batch,
    _resolve_encoding,
    combine_codes,
    factorize,
    join_codes,
)
from .kernels import ScratchArena

MAX_MATERIALIZED_ROWS = 8_000_000


class VirtualClock:
    """Accumulates virtual seconds; enforces the per-query timeout."""

    def __init__(self, timeout=None):
        self.elapsed = 0.0
        self.timeout = timeout

    def charge(self, seconds):
        self.elapsed += seconds
        if self.timeout is not None and self.elapsed > self.timeout:
            raise QueryTimeout(self.timeout, self.elapsed)


@dataclass
class ExecutionResult:
    """Outcome of running one plan."""

    batch: Batch
    elapsed: float
    plan: object


class Executor:
    """Executes plans over built tables, indexes, and views."""

    def __init__(self, tables, hardware, timeout=None, encodings=None,
                 sharding=None, subplans=None, morsels=None,
                 kernels=None, late=False):
        self._tables = tables
        self._hw = hardware
        self._timeout = timeout
        # Optional DictionaryCache: scans attach lazy per-column
        # dictionary handles to their batches so factorize/join_codes
        # can take the sort-free paths.  None = legacy behaviour.
        self._encodings = encodings
        # Optional ShardRuntime: scans of sharded tables evaluate
        # filters/semijoins per shard (process pool when configured).
        self._sharding = sharding
        # Optional SubplanCache: semijoin value/count pairs and base
        # filter masks are reused across queries, and scans carry
        # dictionary codes through the operators (sort- and
        # search-free join/group factorization).  None = legacy.
        self._subplans = subplans
        # Optional MorselPool: filter/membership/probe kernels split
        # into fixed-size row ranges on a thread pool.  None = inline.
        self._morsels = morsels
        # Optional KernelCache: conjunctive filter lists compile into
        # one cached callable reused across templated queries.
        self._kernels = kernels
        # Late materialization (REPRO_LATE_MAT): batches are selection-
        # vector views, scans prune unconsumed columns, and operator
        # temporaries come from a per-executor scratch arena.  The
        # virtual clock charges by logical row counts and full widths,
        # so figures are byte-identical with the knob on or off.
        self._late = bool(late)
        self._arena = ScratchArena() if self._late else None
        self._required = None
        # Carrying codes needs both the dictionaries and the subplan
        # layer (the knob that gates cross-operator reuse).
        self._carry = encodings is not None and subplans is not None
        self._code_keys = frozenset()

    def run(self, plan):
        """Execute a plan; returns an :class:`ExecutionResult`.

        Raises :class:`QueryTimeout` when the virtual clock exceeds the
        timeout (the charge so far is available on the exception).
        """
        if self._carry:
            self._code_keys = _code_keys_of(plan)
        self._required = _required_keys(plan) if self._late else None
        clock = VirtualClock(self._timeout)
        batch = self._exec(plan, clock)
        # Consumers (QueryResult.rows, figure code, tests) read
        # batch.columns as plain equal-length arrays.
        batch.materialize()
        return ExecutionResult(batch=batch, elapsed=clock.elapsed, plan=plan)

    # ------------------------------------------------------------------

    def _exec(self, node, clock):
        if isinstance(node, SeqScan):
            return self._seq_scan(node, clock)
        if isinstance(node, IndexScan):
            return self._index_scan(node, clock)
        if isinstance(node, SemiIndexScan):
            return self._semi_index_scan(node, clock)
        if isinstance(node, ViewScan):
            return self._view_scan(node, clock)
        if isinstance(node, HashJoin):
            return self._hash_join(node, clock)
        if isinstance(node, IndexNLJoin):
            return self._inl_join(node, clock)
        if isinstance(node, HashAggregate):
            return self._aggregate(node, clock)
        if isinstance(node, Project):
            child = self._exec(node.child, clock)
            clock.charge(cm.filter_rows(self._hw, child.rows))
            return Batch(
                columns={k: child.columns[k] for k in node.keys},
                widths={k: child.widths[k] for k in node.keys},
                weights=child.weights,
                encodings={
                    k: child.encodings[k]
                    for k in node.keys if k in child.encodings
                },
                codes={
                    k: child.codes[k]
                    for k in node.keys if k in child.codes
                },
                sels={
                    k: child.sels[k]
                    for k in node.keys if k in child.sels
                },
                lazy=child.lazy,
                length=child.rows if child.lazy else None,
            )
        raise ExecutionError(f"no executor for node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Scans

    def _table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError(f"table {name!r} is not loaded") from None

    def _attached(self, alias, columns):
        """The subset of a scan's columns some operator consumes.

        Column pruning only drops the *attachment* — ``widths`` always
        covers every plan column, so ``row_width`` (and through it the
        cost charges) never depends on what was attached.
        """
        if self._required is None:
            return columns
        attach = [c for c in columns if f"{alias}.{c}" in self._required]
        if len(attach) < len(columns):
            obs.counter_add(
                "executor.columns_pruned", len(columns) - len(attach)
            )
        return attach

    def _base_batch(self, alias, table, columns):
        widths = {
            f"{alias}.{c}": table.schema.column(c).width for c in columns
        }
        attach = self._attached(alias, columns)
        return Batch(
            columns={
                f"{alias}.{c}": table.column(c) for c in attach
            },
            widths=widths,
            encodings=self._column_handles(alias, table, attach),
            codes=self._carried_codes(alias, table, attach),
            lazy=self._late,
            length=table.row_count if self._late else None,
        )

    def _probe_batch(self, alias, table, columns, row_ids):
        """A batch of the heap rows an index probe matched.

        Eager mode gathers copies (``table.take``); late mode attaches
        the base arrays behind one shared ``row_ids`` selection vector,
        with carried dictionary codes left ungathered in lockstep.
        """
        widths = {
            f"{alias}.{c}": table.schema.column(c).width for c in columns
        }
        attach = self._attached(alias, columns)
        if self._late:
            sel = np.asarray(row_ids, dtype=np.int64)
            cols = {f"{alias}.{c}": table.column(c) for c in attach}
            if cols:
                obs.counter_add("executor.gathers_deferred", len(cols))
                obs.counter_add(
                    "executor.gather_bytes_avoided",
                    len(sel) * sum(widths[k] for k in cols),
                )
            return Batch(
                columns=cols,
                widths=widths,
                encodings=self._column_handles(alias, table, attach),
                codes=self._carried_codes(alias, table, attach),
                sels={key: sel for key in cols},
                lazy=True,
                length=len(sel),
            )
        gathered = table.take(row_ids, attach)
        return Batch(
            columns={f"{alias}.{c}": gathered[c] for c in attach},
            widths=widths,
            encodings=self._column_handles(alias, table, attach),
            codes=self._carried_codes(alias, table, attach, row_ids),
        )

    def _column_handles(self, alias, table, columns):
        """Lazy dictionary handles for base-table columns (or empty)."""
        if self._encodings is None:
            return {}
        return {
            f"{alias}.{c}": self._encodings.handle(table, c)
            for c in columns
        }

    def _carried_codes(self, alias, table, columns, row_ids=None):
        """Dictionary codes to carry alongside the scanned columns.

        Only columns the plan later uses as a join, group, or distinct
        key (collected by :func:`_code_keys_of` before execution) get a
        codes array — the base column's cached dense codes, gathered at
        ``row_ids`` for probe-style scans — so scans never pay for
        codes no downstream operator consumes.
        """
        if not self._carry:
            return {}
        codes = {}
        for column in columns:
            key = f"{alias}.{column}"
            if key not in self._code_keys:
                continue
            base_codes = self._encodings.dictionary(table, column).codes
            codes[key] = base_codes if row_ids is None \
                else base_codes[row_ids]
            obs.counter_add("subplan.codes_carried")
        return codes

    def _apply_filters(self, batch, filters, clock, table=None, alias=None):
        if not filters:
            return batch
        clock.charge(cm.filter_rows(self._hw, batch.rows, len(filters)))
        specs = self._identity_specs(batch, filters, table, alias)
        if specs is not None and self._sharding is not None \
                and isinstance(table, ShardedTable) and table.shards > 1:
            return batch.mask(self._sharding.filter_mask(table, specs))
        if specs is not None and self._subplans is not None:
            keep = self._subplans.filter_mask(
                (table.name, tuple(specs)),
                tuple(batch.columns[flt.key] for flt in filters),
                lambda: self._filter_keep(batch, filters, table),
            )
        else:
            keep = self._filter_keep(batch, filters, table)
        return batch.mask(keep)

    def _filter_keep(self, batch, filters, table=None):
        """The conjunctive keep-mask of ``filters`` over ``batch``.

        With a :class:`~repro.executor.kernels.KernelCache` attached,
        the filter list compiles into one fused callable (cached by
        table and filter structure, literals bound per call); otherwise
        the per-filter ``_compare`` chain runs as before — the masks
        are identical.  With a morsel pool and a batch over the morsel
        size, each fixed-size row range evaluates on the pool and the
        per-morsel masks concatenate in morsel order — byte-identical
        to the single-shot evaluation.
        """
        rows = batch.rows
        arrays = [batch.column(flt.key) for flt in filters]
        if self._kernels is not None:
            fused = self._kernels.fused_filter(
                table.name if table is not None else None, filters
            )
            values = [flt.value for flt in filters]
            if self._morsels is not None and rows > self._morsels.rows:
                return self._morsels.map_concat(
                    lambda lo, hi: fused(arrays, values, lo, hi), rows
                )
            return fused(arrays, values, 0, rows)
        if self._morsels is not None and rows > self._morsels.rows:
            def kernel(lo, hi):
                keep = np.ones(hi - lo, dtype=bool)
                for values, flt in zip(arrays, filters):
                    keep &= _compare(values[lo:hi], flt.op, flt.value)
                return keep

            return self._morsels.map_concat(kernel, rows)
        keep = np.ones(rows, dtype=bool)
        for values, flt in zip(arrays, filters):
            keep &= _compare(values, flt.op, flt.value)
        return keep

    def _identity_specs(self, batch, filters, table, alias):
        """``(column, op, value)`` specs for an unfiltered base batch.

        Both the per-shard mask and the cross-query mask cache are only
        equivalent to the elementwise mask when the batch columns *are*
        the table's full storage arrays.  Identity is checked per
        filter key; any already-masked batch, view column, or computed
        column routes back to the elementwise path.  A lazy batch with
        a pending selection vector on the key fails the same way: the
        base array is still attached, but it no longer stands for the
        full table.
        """
        if table is None or not filters:
            return None
        prefix = f"{alias}."
        specs = []
        for flt in filters:
            if not flt.key.startswith(prefix):
                return None
            name = flt.key[len(prefix):]
            if batch.selected(flt.key):
                return None
            if batch.columns.get(flt.key) is not table.column(name):
                return None
            specs.append((name, flt.op, flt.value))
        return specs

    def _apply_semis(self, batch, semi_filters, clock, table=None,
                     alias=None):
        sharded = (
            self._sharding is not None
            and isinstance(table, ShardedTable) and table.shards > 1
        )
        prefix = f"{alias}."
        for semi in semi_filters:
            allowed = self._semi_allowed(semi.source, clock)
            clock.charge(cm.filter_rows(self._hw, batch.rows))
            name = semi.key[len(prefix):] if semi.key.startswith(prefix) \
                else None
            if (sharded and name is not None
                    and not batch.selected(semi.key)
                    and batch.columns.get(semi.key) is table.column(name)):
                # The identity check only passes for an unfiltered base
                # batch; after a mask the columns are subset copies (or
                # sit behind a selection vector) and later semis take
                # the elementwise path.
                keep = self._sharding.isin_mask(table, name, allowed)
            else:
                keep = self._isin(batch.column(semi.key), allowed)
            batch = batch.mask(keep)
        return batch

    def _isin(self, values, allowed):
        """``np.isin``, morselized over row ranges when a pool is set."""
        if self._morsels is not None and len(values) > self._morsels.rows:
            return self._morsels.map_concat(
                lambda lo, hi: np.isin(values[lo:hi], allowed),
                len(values),
            )
        return np.isin(values, allowed)

    def _semi_allowed(self, source, clock):
        """Values passing a semijoin's HAVING filter.

        The virtual-clock charge always models the full evaluation; the
        value/count aggregation itself is served from the cross-query
        :class:`~repro.executor.subplan.SubplanCache` when one is
        attached and the backing arrays are unchanged — every member of
        a semijoin family shares the aggregation and applies only its
        own HAVING comparison.
        """
        semi = source.semi
        if source.via == "view":
            view = source.view
            clock.charge(
                cm.seq_scan(self._hw, view.page_count, view.rows)
            )
            # Plain column reads off the materialized view — nothing
            # worth caching beyond what the view already is.
            table = view.data
            values = table.column(source.view.definition.group_columns[0].name)
            counts = table.column(COUNT_COLUMN)
        elif source.via == "index_only":
            info = source.index
            clock.charge(
                cm.index_descend(self._hw, info.height)
                + info.leaf_pages * self._hw.seq_page_read_s
                + info.entries * self._hw.cpu_row_s * 2
            )
            keys = info.data.leading_keys
            values, counts = self._semi_values(
                ("index_only", info.definition.name, semi.sub_table,
                 semi.sub_column),
                (keys,),
                lambda: np.unique(keys, return_counts=True),
            )
        else:
            table = self._table(semi.sub_table)

            def aggregate():
                if self._encodings is not None:
                    # Shard-aware already: a DictionaryCache attached
                    # to a ShardRuntime assembles sharded tables'
                    # dictionaries from per-shard sketches.
                    dictionary = self._encodings.dictionary(
                        table, semi.sub_column
                    )
                    return dictionary.values, dictionary.counts
                if (self._sharding is not None
                        and isinstance(table, ShardedTable)
                        and table.shards > 1):
                    sketch = ValueCountSketch.merge(
                        self._sharding.column_sketches(
                            table, semi.sub_column
                        )
                    )
                    return sketch.values, sketch.counts
                column = table.column(semi.sub_column)
                return np.unique(column, return_counts=True)

            values, counts = self._semi_values(
                ("scan", semi.sub_table, semi.sub_column),
                (table.column(semi.sub_column),),
                aggregate,
            )
            clock.charge(
                cm.seq_scan(self._hw, table.page_count(), table.row_count)
                + cm.hash_aggregate(
                    self._hw,
                    table.row_count,
                    len(values),
                    table.schema.column(semi.sub_column).width,
                )
            )
        keep = _compare(counts, semi.having_op, semi.having_value)
        return values[keep]

    def _semi_values(self, key, backing, build):
        """A semijoin source's ``(values, counts)``, cached when possible."""
        if self._subplans is None:
            return build()
        return self._subplans.semi_values(key, backing, build)

    def _seq_scan(self, node, clock):
        table = self._table(node.table)
        if isinstance(table, ShardedTable) and table.shards > 1:
            clock.charge(
                cm.sharded_seq_scan(
                    self._hw, table.page_count(), table.row_count,
                    table.shard_lengths(),
                )
            )
        else:
            clock.charge(
                cm.seq_scan(self._hw, table.page_count(), table.row_count)
            )
        obs.counter_add("engine.rows_scanned", table.row_count)
        obs.counter_add("engine.pages_read", table.page_count())
        batch = self._base_batch(node.alias, table, node.columns)
        batch = self._apply_filters(batch, node.filters, clock,
                                    table=table, alias=node.alias)
        batch = self._apply_semis(batch, node.semi_filters, clock,
                                  table=table, alias=node.alias)
        return batch

    def _index_scan(self, node, clock):
        table = self._table(node.table)
        info = node.index
        if info.data is None:
            raise ExecutionError(
                f"index {info.definition.name} is hypothetical; "
                "plans against hypothetical configurations cannot run"
            )
        if node.prefix_filters:
            values = tuple(f.value for f in node.prefix_filters)
            row_ids = info.data.lookup_eq(values)
            matched = len(row_ids)
            obs.counter_add("engine.index_probes")
            obs.counter_add("engine.rows_scanned", matched)
            clock.charge(
                cm.index_descend(self._hw, info.height)
                + cm.index_leaf_range(
                    self._hw, matched, info.entries, info.leaf_pages
                )
            )
            if not node.index_only:
                clock.charge(
                    cm.heap_fetch(
                        self._hw,
                        matched,
                        info.cluster_factor,
                        table.page_count(),
                        table.row_count,
                    )
                )
            batch = self._probe_batch(
                node.alias, table, node.columns, row_ids
            )
        else:
            # Covering full index-only scan.
            clock.charge(
                cm.index_descend(self._hw, info.height)
                + info.leaf_pages * self._hw.seq_page_read_s
                + info.entries * self._hw.cpu_row_s
            )
            obs.counter_add("engine.rows_scanned", info.entries)
            obs.counter_add("engine.pages_read", info.leaf_pages)
            batch = self._base_batch(node.alias, table, node.columns)
        # A covering scan's batch columns are the table's own arrays,
        # so the shard path applies; the probe branch built subset
        # copies and the identity checks route it elementwise.
        batch = self._apply_filters(batch, node.residual_filters, clock,
                                    table=table, alias=node.alias)
        batch = self._apply_semis(batch, node.semi_filters, clock,
                                  table=table, alias=node.alias)
        return batch

    def _semi_index_scan(self, node, clock):
        table = self._table(node.table)
        info = node.index
        if info.data is None:
            raise ExecutionError(
                f"index {info.definition.name} is hypothetical; cannot run"
            )
        allowed = self._semi_allowed(node.driving.source, clock)
        counts = info.data.count_many(allowed)
        matched = int(counts.sum())
        obs.counter_add("engine.index_probes", len(allowed))
        obs.counter_add("engine.rows_scanned", matched)
        clock.charge(
            cm.index_probes(
                self._hw, len(allowed), info.entries, info.leaf_pages
            )
        )
        clock.charge(
            cm.heap_fetch(
                self._hw, matched, info.cluster_factor,
                table.page_count(), table.row_count,
            )
        )
        _guard_materialization(matched)
        (row_ids, _), __ = info.data.probe_many(allowed)
        batch = self._probe_batch(node.alias, table, node.columns, row_ids)
        batch = self._apply_filters(batch, node.residual_filters, clock)
        batch = self._apply_semis(batch, node.semi_filters, clock)
        return batch

    def _view_scan(self, node, clock):
        view = node.view
        if view.data is None:
            raise ExecutionError(
                f"view {view.definition.name} is hypothetical; cannot run"
            )
        table = view.data
        clock.charge(cm.seq_scan(self._hw, view.page_count, view.rows))
        obs.counter_add("engine.rows_scanned", view.rows)
        obs.counter_add("engine.pages_read", view.page_count)
        schema = table.schema
        columns, widths, encodings, codes = {}, {}, {}, {}
        pruned = 0
        for batch_key, view_col in node.column_map.items():
            widths[batch_key] = schema.column(view_col).width
            if self._required is not None \
                    and batch_key not in self._required:
                pruned += 1
                continue
            columns[batch_key] = table.column(view_col)
            if self._encodings is not None:
                encodings[batch_key] = self._encodings.handle(
                    table, view_col
                )
            if self._carry and batch_key in self._code_keys:
                codes[batch_key] = self._encodings.dictionary(
                    table, view_col
                ).codes
                obs.counter_add("subplan.codes_carried")
        if pruned:
            obs.counter_add("executor.columns_pruned", pruned)
        weights = table.column(COUNT_COLUMN).astype(np.float64)
        batch = Batch(
            columns=columns, widths=widths, weights=weights,
            encodings=encodings, codes=codes,
            lazy=self._late, length=view.rows if self._late else None,
        )
        if node.filters:
            clock.charge(
                cm.filter_rows(self._hw, batch.rows, len(node.filters))
            )
            if self._arena is not None:
                keep = self._arena.bools(batch.rows, fill=True)
            else:
                keep = np.ones(batch.rows, dtype=bool)
            for flt in node.filters:
                values = table.column(flt.column)
                keep &= _compare(values, flt.op, flt.value)
            batch = batch.mask(keep)
        return batch

    # ------------------------------------------------------------------
    # Joins

    def _hash_join(self, node, clock):
        left = self._exec(node.left, clock)
        right = self._exec(node.right, clock)

        clock.charge(cm.hash_build(self._hw, right.rows, right.row_width))
        clock.charge(cm.hash_probe(self._hw, left.rows))

        lencs = [left.encodings.get(k) for k in node.left_keys]
        rencs = [right.encodings.get(k) for k in node.right_keys]
        lcarr = [left.carried_codes(k) for k in node.left_keys]
        rcarr = [right.carried_codes(k) for k in node.right_keys]
        larrs, rarrs = [], []
        for pos, (lk, rk) in enumerate(zip(node.left_keys,
                                           node.right_keys)):
            paired = (
                lcarr[pos] is not None and rcarr[pos] is not None
                and _resolve_encoding(lencs[pos]) is not None
                and _resolve_encoding(rencs[pos]) is not None
            )
            if paired and self._late:
                # The merged-dictionary path never touches values when
                # both sides carry codes — skip gathering them at all.
                larrs.append(None)
                rarrs.append(None)
            else:
                larrs.append(left.column(lk))
                rarrs.append(right.column(rk))
        lcodes, rcodes = join_codes(
            larrs, rarrs,
            left_encodings=lencs,
            right_encodings=rencs,
            left_carried=lcarr,
            right_carried=rcarr,
            domains=self._subplans,
        )
        order = np.argsort(rcodes, kind="stable")
        if self._subplans is not None and len(lcodes) and len(rcodes):
            # Dense-domain probe: join codes are dense ranks, so the
            # match range of left code c in the sorted build side is
            # [prefix_count(< c), prefix_count(<= c)) — two gathers
            # into one shared prefix table instead of two binary
            # searches per probe row.  Identical to the searchsorted
            # pair below; the prefix table is bounded by the total row
            # count because the codes are dense.
            domain = int(max(int(lcodes.max()), int(rcodes.max()))) + 1
            if self._arena is not None:
                starts_table = self._arena.ints(domain + 1, fill=0)
            else:
                starts_table = np.zeros(domain + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(rcodes, minlength=domain), out=starts_table[1:]
            )
            lows = self._gather(starts_table, lcodes)
            highs = self._gather(starts_table, lcodes + 1)
        else:
            sorted_codes = rcodes[order]
            lows = self._searchsorted(sorted_codes, lcodes, "left")
            highs = self._searchsorted(sorted_codes, lcodes, "right")
        counts = highs - lows
        out_rows = int(counts.sum())

        out_width = left.row_width + right.row_width
        clock.charge(cm.join_output(self._hw, out_rows, out_width))
        obs.counter_add("engine.join_output_rows", out_rows)
        _guard_materialization(out_rows)

        left_pos = np.repeat(np.arange(left.rows), counts)
        starts = np.repeat(lows, counts)
        offsets = np.arange(out_rows) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        ) if out_rows else np.empty(0, dtype=np.int64)
        right_pos = order[starts + offsets] if out_rows else (
            np.empty(0, dtype=np.int64)
        )

        lbatch = left.take(left_pos)
        rbatch = right.take(right_pos)
        return self._merge_join_batches(left, right, lbatch, rbatch)

    def _merge_join_batches(self, left, right, lbatch, rbatch):
        columns = dict(lbatch.columns)
        columns.update(rbatch.columns)
        widths = dict(lbatch.widths)
        widths.update(rbatch.widths)
        encodings = dict(lbatch.encodings)
        encodings.update(rbatch.encodings)
        codes = dict(lbatch.codes)
        codes.update(rbatch.codes)
        weights = None
        if left.weights is not None or right.weights is not None:
            weights = lbatch.weight_array() * rbatch.weight_array()
        # Batch keys are alias-qualified, so the two sides' selection
        # vectors merge without collisions; each key keeps composing
        # against its own side's base arrays.
        sels = dict(lbatch.sels)
        sels.update(rbatch.sels)
        lazy = lbatch.lazy or rbatch.lazy
        return Batch(
            columns=columns, widths=widths, weights=weights,
            encodings=encodings, codes=codes,
            sels=sels, lazy=lazy,
            length=lbatch.rows if lazy else None,
        )

    def _gather(self, source, indices):
        """``source[indices]``, morselized over probe ranges."""
        if self._morsels is not None and len(indices) > self._morsels.rows:
            return self._morsels.map_concat(
                lambda lo, hi: source[indices[lo:hi]], len(indices)
            )
        return source[indices]

    def _searchsorted(self, haystack, needles, side):
        """``np.searchsorted``, morselized over probe ranges."""
        if self._morsels is not None and len(needles) > self._morsels.rows:
            return self._morsels.map_concat(
                lambda lo, hi: np.searchsorted(
                    haystack, needles[lo:hi], side=side
                ),
                len(needles),
            )
        return np.searchsorted(haystack, needles, side=side)

    def _inl_join(self, node, clock):
        outer = self._exec(node.outer, clock)
        table = self._table(node.table)
        info = node.index
        if info.data is None:
            raise ExecutionError(
                f"index {info.definition.name} is hypothetical; cannot run"
            )
        probes = outer.column(node.outer_key)
        counts = info.data.count_many(probes)
        matched = int(counts.sum())
        obs.counter_add("engine.index_probes", len(probes))
        obs.counter_add("engine.rows_scanned", matched)
        clock.charge(
            cm.index_probes(
                self._hw, len(probes), info.entries, info.leaf_pages
            )
        )
        if node.index_only:
            clock.charge(matched * self._hw.cpu_row_s)
        else:
            clock.charge(
                cm.heap_fetch(
                    self._hw, matched, info.cluster_factor,
                    table.page_count(), table.row_count,
                )
            )
        inner_width = sum(
            table.schema.column(c).width for c in node.columns
        ) + cm.ROW_OVERHEAD
        clock.charge(
            cm.join_output(self._hw, matched, outer.row_width + inner_width)
        )
        _guard_materialization(matched)

        (row_ids, probe_idx), _ = info.data.probe_many(probes)
        obatch = outer.take(probe_idx)
        attach = self._attached(node.alias, node.columns)
        columns = dict(obatch.columns)
        widths = dict(obatch.widths)
        encodings = dict(obatch.encodings)
        encodings.update(
            self._column_handles(node.alias, table, attach)
        )
        codes = dict(obatch.codes)
        for col in node.columns:
            widths[f"{node.alias}.{col}"] = table.schema.column(col).width
        if self._late:
            # Inner columns attach as base arrays behind the probe's
            # row_ids selection vector; carried codes stay ungathered
            # under the same vector.
            sel = np.asarray(row_ids, dtype=np.int64)
            sels = dict(obatch.sels)
            codes.update(self._carried_codes(node.alias, table, attach))
            for col in attach:
                key = f"{node.alias}.{col}"
                columns[key] = table.column(col)
                sels[key] = sel
            if attach:
                obs.counter_add("executor.gathers_deferred", len(attach))
                obs.counter_add(
                    "executor.gather_bytes_avoided",
                    len(sel) * sum(
                        widths[f"{node.alias}.{c}"] for c in attach
                    ),
                )
            batch = Batch(
                columns=columns, widths=widths, weights=obatch.weights,
                encodings=encodings, codes=codes,
                sels=sels, lazy=True, length=obatch.rows,
            )
        else:
            inner_cols = table.take(row_ids, attach)
            codes.update(
                self._carried_codes(node.alias, table, attach, row_ids)
            )
            for col in attach:
                columns[f"{node.alias}.{col}"] = inner_cols[col]
            batch = Batch(
                columns=columns, widths=widths, weights=obatch.weights,
                encodings=encodings, codes=codes,
            )

        extra = getattr(node, "extra_preds", [])
        if extra:
            clock.charge(cm.filter_rows(self._hw, batch.rows, len(extra)))
            keep = np.ones(batch.rows, dtype=bool)
            for outer_key, inner_col in extra:
                keep &= (
                    batch.column(outer_key)
                    == batch.column(f"{node.alias}.{inner_col}")
                )
            batch = batch.mask(keep)
        batch = self._apply_filters(batch, node.residual_filters, clock)
        batch = self._apply_semis(batch, node.semi_filters, clock)
        return batch

    # ------------------------------------------------------------------
    # Aggregation

    def _aggregate(self, node, clock):
        child = self._exec(node.child, clock)
        rows = child.rows

        if node.group_keys:
            codes = combine_codes(
                [
                    factorize(*self._factor_inputs(child, k))
                    for k in node.group_keys
                ]
            )
            n_groups = int(codes.max()) + 1 if rows else 0
        else:
            codes = np.zeros(rows, dtype=np.int64)
            n_groups = 1 if rows else 0

        clock.charge(
            cm.hash_aggregate(
                self._hw, rows, max(n_groups, 1), child.row_width
            )
        )

        columns, widths = {}, {}
        if rows and self._subplans is not None:
            # Sort-free first-occurrence scatter: group codes are dense
            # (every value in [0, n_groups) occurs), so writing row
            # indices in descending order leaves each slot holding its
            # group's smallest index — exactly the stable-argsort
            # firsts below.
            firsts = np.empty(n_groups, dtype=np.int64)
            firsts[codes[::-1]] = np.arange(rows - 1, -1, -1, dtype=np.int64)
        elif rows:
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            firsts = order[
                np.searchsorted(sorted_codes, np.arange(n_groups), side="left")
            ]
        else:
            firsts = np.empty(0, dtype=np.int64)
        for key in node.group_keys:
            # One value per group: gather through any pending selection
            # vector instead of materializing the whole column.
            columns[key] = child.gather(key, firsts)
            widths[key] = child.widths[key]

        wts = child.weight_array()
        for i, agg in enumerate(node.aggregates):
            label = f"agg{i}:{agg.label()}"
            if agg.func == "count" and not agg.distinct:
                values = np.bincount(
                    codes, weights=wts, minlength=max(n_groups, 1)
                )[:n_groups] if rows else np.empty(0)
                columns[label] = np.round(values).astype(np.int64)
            elif agg.func == "count" and agg.distinct:
                arg_values, arg_enc, arg_carried = self._factor_inputs(
                    child, str(agg.arg)
                )
                columns[label] = self._count_distinct(
                    codes, arg_values, n_groups, arg_enc, arg_carried,
                )
            elif agg.func in ("sum", "avg"):
                arg = child.column(str(agg.arg)).astype(np.float64)
                sums = np.bincount(
                    codes, weights=arg * wts, minlength=max(n_groups, 1)
                )[:n_groups] if rows else np.empty(0)
                if agg.func == "sum":
                    columns[label] = sums
                else:
                    cnt = np.bincount(
                        codes, weights=wts, minlength=max(n_groups, 1)
                    )[:n_groups] if rows else np.empty(0)
                    columns[label] = sums / np.maximum(cnt, 1)
            elif agg.func in ("min", "max"):
                columns[label] = self._min_max(
                    codes, child.column(str(agg.arg)), n_groups, agg.func
                )
            else:
                raise ExecutionError(f"unsupported aggregate {agg.func!r}")
            widths[label] = 8
        return Batch(
            columns=columns, widths=widths,
            encodings={
                k: child.encodings[k]
                for k in node.group_keys if k in child.encodings
            },
        )

    def _factor_inputs(self, batch, key):
        """``(values, encoding, carried)`` for :func:`factorize`.

        When carried dictionary codes and a dictionary are both
        available, factorization never touches the values, so a lazy
        column can stay ungathered (``values=None``); a key without
        that fast path gathers through :meth:`Batch.column` as usual.
        """
        encoding = batch.encodings.get(key)
        carried = batch.carried_codes(key)
        if carried is not None and _resolve_encoding(encoding) is not None:
            values = None if batch.selected(key) else batch.columns[key]
            return values, encoding, carried
        return batch.column(key), encoding, carried

    def _count_distinct(self, codes, values, n_groups, encoding=None,
                        carried=None):
        if len(codes) == 0:
            return np.empty(0, dtype=np.int64)
        vcodes = factorize(values, encoding, carried)
        span = int(vcodes.max()) + 1
        keys = codes * span + vcodes
        if self._subplans is not None and n_groups * span <= max(
            4 * len(codes), 65536
        ):
            # Sort-free pair dedup: the (group, value) key space is
            # small, so a presence scan counts each group's distinct
            # values — the same counts the unique-sort below derives.
            present = np.zeros(n_groups * span, dtype=bool)
            present[keys] = True
            return present.reshape(n_groups, span).sum(
                axis=1
            ).astype(np.int64)
        pairs = np.unique(keys)
        group_of_pair = pairs // span
        return np.bincount(group_of_pair, minlength=n_groups).astype(np.int64)

    @staticmethod
    def _min_max(codes, values, n_groups, func):
        if len(codes) == 0:
            return np.empty(0, dtype=values.dtype)
        order = np.lexsort((values, codes))
        sorted_codes = codes[order]
        sorted_values = values[order]
        starts = np.searchsorted(sorted_codes, np.arange(n_groups), "left")
        if func == "min":
            return sorted_values[starts]
        ends = np.searchsorted(sorted_codes, np.arange(n_groups), "right")
        return sorted_values[ends - 1]


def _code_keys_of(plan):
    """Batch keys the plan consumes as join/group/distinct keys.

    Scans only carry dictionary codes for these keys — everything else
    would be gathered through every operator and then thrown away.
    """
    keys = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, HashJoin):
            keys.update(node.left_keys)
            keys.update(node.right_keys)
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, HashAggregate):
            keys.update(node.group_keys)
            for agg in node.aggregates:
                if agg.func == "count" and agg.distinct:
                    keys.add(str(agg.arg))
            stack.append(node.child)
        elif isinstance(node, Project):
            stack.append(node.child)
        elif isinstance(node, IndexNLJoin):
            stack.append(node.outer)
    return frozenset(keys)


def _required_keys(plan):
    """Batch keys any operator in the plan actually consumes.

    The column-pruning pass: scans only attach columns whose key shows
    up here (filter keys, semi/join keys, aggregate inputs, output
    labels).  Pruning is only sound when the root emits an explicit key
    list (Project or HashAggregate) and every node type is known;
    anything else returns ``None`` and scans attach everything.
    Widths are never pruned, so cost charges are unaffected.
    """
    if not isinstance(plan, (Project, HashAggregate)):
        return None
    keys = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, SeqScan):
            keys.update(f.key for f in node.filters)
            keys.update(s.key for s in node.semi_filters)
        elif isinstance(node, IndexScan):
            keys.update(f.key for f in node.residual_filters)
            keys.update(s.key for s in node.semi_filters)
        elif isinstance(node, SemiIndexScan):
            keys.update(f.key for f in node.residual_filters)
            keys.update(s.key for s in node.semi_filters)
        elif isinstance(node, ViewScan):
            pass  # view filters read the view's table directly
        elif isinstance(node, HashJoin):
            keys.update(node.left_keys)
            keys.update(node.right_keys)
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, IndexNLJoin):
            keys.add(node.outer_key)
            keys.update(f.key for f in node.residual_filters)
            keys.update(s.key for s in node.semi_filters)
            for outer_key, inner_col in getattr(node, "extra_preds", []):
                keys.add(outer_key)
                keys.add(f"{node.alias}.{inner_col}")
            stack.append(node.outer)
        elif isinstance(node, HashAggregate):
            keys.update(node.group_keys)
            for agg in node.aggregates:
                if agg.arg is not None:
                    keys.add(str(agg.arg))
            stack.append(node.child)
        elif isinstance(node, Project):
            keys.update(node.keys)
            stack.append(node.child)
        else:
            return None
    return frozenset(keys)


def _compare(values, op, literal):
    if op == "=":
        return values == literal
    if op == "<>":
        return values != literal
    if op == "<":
        return values < literal
    if op == "<=":
        return values <= literal
    if op == ">":
        return values > literal
    if op == ">=":
        return values >= literal
    raise ExecutionError(f"unsupported comparison operator {op!r}")


def _guard_materialization(rows):
    if rows > MAX_MATERIALIZED_ROWS:
        raise ExecutionError(
            f"refusing to materialize {rows} rows; the cost model should "
            "have timed this plan out first — check the hardware profile"
        )
