"""Fused predicate kernels and scratch buffers for the executor.

Late materialization (``REPRO_LATE_MAT``) has three legs; this module
holds two of them:

- :class:`KernelCache` compiles a conjunctive filter list into a single
  callable keyed by ``(table, filter structure)``.  The compiled kernel
  resolves each comparison operator once, lets the first comparison
  allocate the keep mask, and ANDs the remaining predicates into it in
  place — collapsing the per-filter ``_compare`` dispatch and the
  ``np.ones`` + AND chain of the elementwise path.  Literal values are
  passed at call time, so the kernel is reused across a workload's
  templated queries (same structure, different constants) and can be
  dispatched per-morsel through :class:`~repro.executor.morsels.MorselPool`.
- :class:`ScratchArena` is a per-executor pool of boolean/int64
  temporaries, so operator-local masks and offset tables stop
  allocating on every call.

Both are pure accelerations: kernels compute exactly what the
elementwise ``_compare`` chain computes, and arena buffers never escape
the operator that borrowed them, so figures stay byte-identical with
the knob on or off.
"""

import operator
import threading

import numpy as np

from .. import obs
from ..common import knobs

LATEMAT_ENV = "REPRO_LATE_MAT"

# FIFO bound on compiled kernels; structures are few (one per filter
# shape per table), so this is a safety valve, not a working limit.
MAX_KERNELS = 256

_OPERATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def late_mat_enabled(flag=None):
    """Is the late-materialization executor on (default: yes)?"""
    return knobs.flag(LATEMAT_ENV, flag)


def _compile_conjunction(ops):
    """Build one callable evaluating the conjunction of ``ops``.

    The callable takes the gathered filter arrays, the literal values,
    and a ``[lo, hi)`` morsel window, and returns the boolean keep mask
    for that window.
    """
    resolved = [_OPERATORS[op] for op in ops]
    first = resolved[0]
    rest = list(enumerate(resolved))[1:]

    def kernel(arrays, values, lo, hi):
        keep = first(arrays[0][lo:hi], values[0])
        if not isinstance(keep, np.ndarray):
            # Incomparable dtypes collapse to a scalar; broadcast it so
            # the mask matches the elementwise path's shape.
            keep = np.full(hi - lo, bool(keep))
        for i, compare in rest:
            np.logical_and(
                keep, compare(arrays[i][lo:hi], values[i]), out=keep
            )
        return keep

    return kernel


class KernelCache:
    """Compiled-filter cache shared by every executor of a database.

    Unlike :class:`~repro.executor.subplan.SubplanCache` there is no
    backing-array identity to validate — kernels close over operator
    structure only, never over data — but ``invalidate`` is still wired
    into ``Database.invalidate_caches`` so the cache follows the same
    lifecycle contract as every other derived structure.
    """

    def __init__(self):
        # Deferred import: repro.runtime pulls in repro.catalog.schema,
        # which the storage layer (and through it this package) feeds.
        from ..runtime.cache import CacheStats

        self.stats = CacheStats("kernel_cache")
        self._lock = threading.Lock()
        self._kernels = {}

    def fused_filter(self, table_name, filters):
        """Return the compiled kernel for a conjunctive filter list."""
        key = (table_name, tuple((flt.key, flt.op) for flt in filters))
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        if kernel is not None:
            obs.counter_add("executor.kernel_hits")
            return kernel
        kernel = _compile_conjunction([flt.op for flt in filters])
        obs.counter_add("executor.kernel_builds")
        with self._lock:
            while len(self._kernels) >= MAX_KERNELS:
                self._kernels.pop(next(iter(self._kernels)))
            self._kernels[key] = kernel
        return kernel

    def invalidate(self):
        with self._lock:
            self._kernels.clear()
            self.stats.invalidations += 1
        obs.counter_add("cache.kernel_cache.invalidations")


class ScratchArena:
    """Reusable boolean/int64 temporaries owned by one executor.

    Not thread-safe by design: each executor instance owns its own
    arena and never hands a buffer to a morsel kernel or to a cache
    that outlives the borrowing operator.  Buffers grow geometrically
    and are returned as views, so repeated operators at similar widths
    stop hitting the allocator.
    """

    def __init__(self):
        self._bools = np.empty(0, dtype=bool)
        self._ints = np.empty(0, dtype=np.int64)

    def _borrow(self, attr, n, fill):
        buffer = getattr(self, attr)
        if len(buffer) < n:
            buffer = np.empty(max(n, 2 * len(buffer)), dtype=buffer.dtype)
            setattr(self, attr, buffer)
            obs.counter_add("executor.arena_allocations")
        else:
            obs.counter_add("executor.arena_reuses")
        view = buffer[:n]
        if fill is not None:
            view[...] = fill
        return view

    def bools(self, n, fill=None):
        return self._borrow("_bools", n, fill)

    def ints(self, n, fill=None):
        return self._borrow("_ints", n, fill)
