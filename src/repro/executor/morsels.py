"""Morsel-driven intra-query parallelism (``REPRO_MORSEL_ROWS``).

The executor's row-at-a-time kernels — filter comparisons, semijoin
membership tests, hash-join probes — are embarrassingly parallel over
row ranges.  A :class:`MorselPool` splits such a kernel into fixed-size
*morsels* (contiguous row ranges), evaluates them on a thread pool
(NumPy releases the GIL inside its kernels), and reassembles the
per-morsel outputs **in morsel order**, so the result is byte-identical
to the single-shot evaluation regardless of worker scheduling.

Morsel execution is opt-in and off by default: ``REPRO_MORSEL_ROWS=0``
(or unset) disables it, any positive value is the morsel size in rows.
The default is off because the virtual-clock engine charges identical
costs either way and the benchmark container is single-core; CI runs
the fig4 pipeline with ``REPRO_MORSEL_ROWS=65536`` and asserts
byte-identical figures against the default run.

Determinism contract (the LCK001 story): submitted kernels are pure —
they read shared arrays and *return* their slice's output; nothing
shared is written from a worker.  Results are gathered from the
futures in submission order, which is morsel order.
"""

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .. import obs
from ..common import knobs

MORSEL_ENV = "REPRO_MORSEL_ROWS"

# Guard against degenerate splits: below this size the dispatch
# overhead dwarfs any kernel, whatever the environment says.
MIN_MORSEL_ROWS = 1024


def morsel_rows(value=None):
    """The configured morsel size in rows (0 = morsel execution off).

    ``value`` overrides when given; otherwise ``REPRO_MORSEL_ROWS``
    decides.  Unset, empty, or unparsable values mean off; positive
    values are clamped up to :data:`MIN_MORSEL_ROWS`.
    """
    if value is None:
        raw = knobs.text(MORSEL_ENV, "").strip()
        if not raw:
            return 0
        try:
            value = int(raw)
        except ValueError:
            return 0
    if value <= 0:
        return 0
    return max(int(value), MIN_MORSEL_ROWS)


class MorselPool:
    """Splits array kernels into fixed-size morsels on a thread pool.

    Attributes:
        rows: the morsel size; inputs at or below it run inline.

    The underlying :class:`ThreadPoolExecutor` is created lazily under
    a lock (databases are constructed eagerly, most never execute a
    batch large enough to split) and shared by every executor of the
    owning database.
    """

    def __init__(self, rows, max_workers=None):
        self.rows = rows
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._pool = None

    @classmethod
    def from_env(cls):
        """A pool per ``REPRO_MORSEL_ROWS``, or ``None`` when off."""
        rows = morsel_rows()
        if rows <= 0:
            return None
        return cls(rows)

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                workers = self._max_workers or min(os.cpu_count() or 1, 8)
                self._pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-morsel",
                )
            return self._pool

    def map_slices(self, kernel, length):
        """``kernel(lo, hi)`` over fixed-size ranges, results in order.

        Args:
            kernel: pure callable evaluating rows ``[lo, hi)`` and
                returning an array; it must not write shared state.
            length: total row count.

        Returns:
            The per-morsel results in ascending range order (a single
            inline call when ``length`` fits one morsel).
        """
        if length <= self.rows:
            return [kernel(0, length)]
        bounds = [
            (lo, min(lo + self.rows, length))
            for lo in range(0, length, self.rows)
        ]
        obs.counter_add("morsel.batches")
        obs.counter_add("morsel.morsels", len(bounds))
        pool = self._ensure_pool()
        futures = [pool.submit(kernel, lo, hi) for lo, hi in bounds]
        return [future.result() for future in futures]

    def map_concat(self, kernel, length):
        """Like :meth:`map_slices`, concatenated back into one array."""
        parts = self.map_slices(kernel, length)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def shutdown(self):
        """Stop the worker threads (pickling/teardown path)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)
