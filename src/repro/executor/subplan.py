"""Shared subplan results across queries (``REPRO_SUBPLAN_CACHE``).

Template-generated workloads re-execute the same *subplans* over and
over: every member of a semijoin family re-aggregates the identical
subquery (``SELECT key FROM t GROUP BY key HAVING COUNT(*) op c``
differs only in ``c`` — the expensive value/count pass is shared), and
repeated scan+filter combinations recompute the same row masks.  A
:class:`SubplanCache`, owned by a
:class:`~repro.engine.database.Database` and handed to every
:class:`~repro.executor.engine.Executor` it constructs, memoizes those
intermediates across queries:

* **semijoin value/count pairs** — the ``(values, counts)`` aggregation
  of a semijoin subquery source, keyed by how the executor evaluates it
  (base-table scan, index-only leading-key pass, or materialized view)
  so each evaluation strategy caches its own result;
* **filter masks** — the boolean keep-mask of a filter set applied to
  an unfiltered base batch, keyed by ``(table, (column, op, value)…)``.

The cache is a pure optimization: the executor charges the virtual
clock exactly as if it had recomputed the intermediate, so actual costs
``A(q, C)`` and every result batch are byte-identical with the cache on
or off (``REPRO_SUBPLAN_CACHE=0`` disables it; CI asserts fig4/fig7
byte-identity in both modes).

Consistency follows the :class:`~repro.storage.encoding.DictionaryCache`
convention: every entry records the storage arrays it was computed
from, and a lookup only hits when those arrays are — by identity —
still the live ones.  ``append_rows`` builds new arrays, a rebuilt view
or index is a new object graph, so stale entries can never be served.
:meth:`invalidate` (wired into ``Database.invalidate_caches``, keeping
the INV001 lint contract) clears the cache outright; access-time
identity validation makes that a garbage collection, not a correctness
requirement.
"""

import threading

from .. import obs
from ..common import knobs

SUBPLAN_ENV = "REPRO_SUBPLAN_CACHE"

# Entry bounds: payloads hold real arrays (value sets, row masks,
# merged join domains), so unlike the key-only plan caches these stay
# deliberately small; the oldest entry is dropped on overflow.
MAX_SEMI_ENTRIES = 1024
MAX_MASK_ENTRIES = 256
MAX_DOMAIN_ENTRIES = 256


def subplan_cache_enabled(flag=None):
    """Whether the subplan cache is on: argument, else ``REPRO_SUBPLAN_CACHE``.

    Any value other than ``"0"``, ``"false"``, ``"no"`` or ``"off"``
    (case-insensitive) enables it; the default — no environment
    variable at all — is enabled.
    """
    return knobs.flag(SUBPLAN_ENV, flag)


class SubplanCache:
    """Cross-query memo of semijoin aggregations and base filter masks.

    Entries are validated by *identity* of the backing storage arrays
    on every lookup, so a hit is only possible while the data the entry
    was computed from is still live.  The cache is shared by every
    executor a database constructs (a
    :class:`~repro.runtime.session.MeasurementSession` pool runs them
    concurrently), hence the lock.
    """

    def __init__(self):
        # Deferred import: repro.catalog.schema imports repro.storage at
        # interpreter start, and repro.runtime's package init reaches
        # back through repro.engine — a module-level import here would
        # close that cycle before catalog.schema finishes loading.
        from ..runtime.cache import CacheStats

        self.stats = CacheStats("subplan_cache")
        self._lock = threading.Lock()
        # key -> (backing array tuple, payload)
        self._semis = {}
        self._masks = {}
        self._domains = {}

    # ------------------------------------------------------------------

    def semi_values(self, key, backing, build):
        """The ``(values, counts)`` pair of one semijoin source.

        Args:
            key: hashable identity of the source (via + names).
            backing: tuple of the storage arrays the result is derived
                from; a cached entry is served only when every array is
                identical (``is``) to the stored one.
            build: zero-argument callable computing the pair on a miss.

        Returns:
            The cached or freshly built ``(values, counts)``.
        """
        return self._lookup(
            self._semis, MAX_SEMI_ENTRIES, key, backing, build,
            "subplan.semi_hits", "subplan.semi_builds",
        )

    def filter_mask(self, key, backing, build):
        """The keep-mask of one filter set over an unfiltered base batch.

        Same contract as :meth:`semi_values`; ``backing`` holds the
        filtered columns' storage arrays.
        """
        return self._lookup(
            self._masks, MAX_MASK_ENTRIES, key, backing, build,
            "subplan.mask_hits", "subplan.mask_builds",
        )

    def join_domain(self, key, backing, build):
        """The merged sorted domain of one dictionary pair.

        Joins between differently-encoded columns map both sides into
        the ``union1d`` of their dictionaries; that merge and the two
        code-translation tables depend only on the dictionaries, which
        every join over the same column pair shares.  ``key`` carries
        the pair's ``id``s; the identity check over ``backing`` (the
        two sorted value arrays) makes an ``id`` reuse a harmless miss.
        """
        return self._lookup(
            self._domains, MAX_DOMAIN_ENTRIES, key, backing, build,
            "subplan.domain_hits", "subplan.domain_builds",
        )

    def _lookup(self, entries, bound, key, backing, build,
                hit_metric, build_metric):
        with self._lock:
            entry = entries.get(key)
        if entry is not None and len(entry[0]) == len(backing) and all(
            cached is live for cached, live in zip(entry[0], backing)
        ):
            with self._lock:
                self.stats.hits += 1
            obs.counter_add(hit_metric)
            return entry[1]
        with self._lock:
            self.stats.misses += 1
        payload = build()
        obs.counter_add(build_metric)
        with self._lock:
            while len(entries) >= bound:
                entries.pop(next(iter(entries)))
            entries[key] = (tuple(backing), payload)
        return payload

    # ------------------------------------------------------------------

    def invalidate(self):
        """Drop every entry (data/configuration/statistics changed).

        Called from ``Database.invalidate_caches`` on every state
        transition.  Access-time identity validation already prevents
        stale serves; the sweep reclaims the arrays the dead entries
        pin.
        """
        with self._lock:
            self._semis.clear()
            self._masks.clear()
            self._domains.clear()
            self.stats.invalidations += 1
        obs.counter_add("cache.subplan_cache.invalidations")
