"""B+-tree indexes: definitions, size model, built data."""

from .btree import BPlusTree
from .data import IndexData
from .definition import IndexDefinition, estimate_index_size

__all__ = ["BPlusTree", "IndexData", "IndexDefinition", "estimate_index_size"]
