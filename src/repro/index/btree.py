"""An in-memory B+-tree.

Keys are tuples (one element per indexed column) and values are integer
row ids.  Duplicate keys are allowed — the tree stores one entry per row,
like a secondary index.  Supports bulk loading from sorted entries,
incremental insertion, exact lookups and range scans, and exposes its
structural invariants for the property-based test suite.

The executor's vectorized probe path uses the sorted arrays kept in
:class:`repro.index.data.IndexData`; this tree is the reference structure
the arrays are checked against, and it backs point lookups and the insert
maintenance path.
"""

import bisect

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf):
        self.is_leaf = is_leaf
        self.keys = []
        self.children = []   # internal nodes only
        self.values = []     # leaf nodes only
        self.next_leaf = None


class BPlusTree:
    """B+-tree over ``(key_tuple, row_id)`` entries."""

    def __init__(self, order=DEFAULT_ORDER):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def bulk_load(cls, entries, order=DEFAULT_ORDER):
        """Build a tree from entries sorted by key (stable on row id).

        Leaves are packed to ~100% fill, matching how the engine's index
        builder creates indexes from a sort.
        """
        tree = cls(order=order)
        entries = list(entries)
        if any(
            entries[i][0] > entries[i + 1][0] for i in range(len(entries) - 1)
        ):
            raise ValueError("bulk_load requires entries sorted by key")
        if not entries:
            return tree

        leaf_capacity = order - 1
        leaves = []
        for start in range(0, len(entries), leaf_capacity):
            chunk = entries[start:start + leaf_capacity]
            leaf = _Node(is_leaf=True)
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            leaves.append(leaf)
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right

        level = leaves
        fanout = order
        while len(level) > 1:
            # Distribute children evenly so no parent ends up with a lone
            # child (which would put leaves at different depths).
            n_parents = max(1, -(-len(level) // fanout))
            parents = []
            base = len(level) // n_parents
            extra = len(level) % n_parents
            start = 0
            for i in range(n_parents):
                size = base + (1 if i < extra else 0)
                group = level[start:start + size]
                start += size
                parent = _Node(is_leaf=False)
                parent.children = group
                parent.keys = [_smallest_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
        tree._root = level[0]
        tree._size = len(entries)
        return tree

    # ------------------------------------------------------------------
    # Queries

    def __len__(self):
        return self._size

    @property
    def height(self):
        """Number of levels (a lone leaf has height 1)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def search(self, key):
        """Row ids for an exact key match, in insertion order."""
        key = tuple(key)
        leaf = self._find_leaf(key, first=True)
        results = []
        while leaf is not None:
            idx = bisect.bisect_left(leaf.keys, key)
            if idx == len(leaf.keys):
                leaf = leaf.next_leaf
                continue
            while idx < len(leaf.keys) and leaf.keys[idx] == key:
                results.append(leaf.values[idx])
                idx += 1
            if idx < len(leaf.keys):
                break
            leaf = leaf.next_leaf
        return results

    def range_scan(self, low=None, high=None):
        """Yield ``(key, row_id)`` for ``low <= key <= high`` in key order."""
        leaf = (
            self._find_leaf(low, first=True)
            if low is not None else self._leftmost_leaf()
        )
        low_key = tuple(low) if low is not None else None
        high_key = tuple(high) if high is not None else None
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                if low_key is not None and key < low_key:
                    continue
                if high_key is not None and key > high_key:
                    return
                yield key, value
            leaf = leaf.next_leaf

    def items(self):
        """All entries in key order."""
        return self.range_scan()

    # ------------------------------------------------------------------
    # Mutation

    def insert(self, key, value):
        """Insert one entry, splitting nodes as needed."""
        key = tuple(key)
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    # ------------------------------------------------------------------
    # Invariants (exercised by the hypothesis tests)

    def check_invariants(self):
        """Raise AssertionError if any B+-tree invariant is violated."""
        leaf_depths = set()
        self._check_node(self._root, None, None, 1, leaf_depths, is_root=True)
        assert len(leaf_depths) == 1, "leaves are not all at the same depth"
        keys = [key for key, _ in self.items()]
        assert keys == sorted(keys), "leaf chain is not sorted"
        assert len(keys) == self._size, "size does not match entry count"

    # ------------------------------------------------------------------
    # Internals

    def _leftmost_leaf(self):
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _find_leaf(self, key, first=False):
        """The leaf where ``key`` lives.

        With ``first=True`` descend toward the *first* occurrence of a
        duplicated key (separators equal to the key may have copies in
        the subtree to their left); otherwise descend to the insertion
        point after all duplicates.
        """
        key = tuple(key)
        chooser = bisect.bisect_left if first else bisect.bisect_right
        node = self._root
        while not node.is_leaf:
            idx = chooser(node.keys, key)
            node = node.children[idx]
        return node

    def _insert_into(self, node, key, value):
        if node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) < self.order:
                return None
            return self._split_leaf(node)
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.children) <= self.order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep_key, right

    def _check_node(self, node, low, high, depth, leaf_depths, is_root=False):
        assert node.keys == sorted(node.keys), "node keys unsorted"
        for key in node.keys:
            if low is not None:
                assert key >= low, "key below subtree lower bound"
            if high is not None:
                assert key <= high, "key above subtree upper bound"
        if node.is_leaf:
            leaf_depths.add(depth)
            assert len(node.keys) == len(node.values)
            assert len(node.keys) <= self.order - 1 or is_root
            return
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= 2
        bounds = [low] + node.keys + [high]
        for child, (lo, hi) in zip(
            node.children, zip(bounds[:-1], bounds[1:])
        ):
            self._check_node(child, lo, hi, depth + 1, leaf_depths)


def _smallest_key(node):
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]
