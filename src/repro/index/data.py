"""Built index data.

An :class:`IndexData` materializes an :class:`IndexDefinition` over a
table: key columns stored in key order plus the matching row-id
permutation.  Probes used by the executor are vectorized over these
arrays; a real :class:`~repro.index.btree.BPlusTree` over the same entries
is available lazily (and is cross-checked against the arrays in the test
suite).

The measured *cluster factor* — the average fraction of a random heap page
read per fetched row — is the statistic that distinguishes a built index
from a hypothetical one: what-if optimization has to assume the worst
(factor 1.0), which is one of the estimation gaps Section 5 of the paper
exposes.
"""

import numpy as np

from ..common.hardware import PAGE_SIZE
from .btree import BPlusTree
from .definition import estimate_index_size


def gather_ranges(values, lows, highs):
    """Concatenate ``values[lo:hi]`` for every (lo, hi) pair, vectorized.

    Also returns, for each output element, the index of the range it came
    from (used to pair join probes with their matches).
    """
    lows = np.asarray(lows, dtype=np.int64)
    highs = np.asarray(highs, dtype=np.int64)
    counts = highs - lows
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=values.dtype),
            np.empty(0, dtype=np.int64),
        )
    range_ids = np.repeat(np.arange(len(lows)), counts)
    starts = np.repeat(lows, counts)
    offsets = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    positions = starts + offsets
    return values[positions], range_ids


class IndexData:
    """A built secondary index over a table's columns."""

    def __init__(self, definition, table, overhead_factor=1.0,
                 encodings=None):
        self.definition = definition
        self._overhead_factor = overhead_factor
        self._tree = None
        self._build(table, encodings)

    def _build(self, table, encodings=None):
        key_arrays = [table.column(c) for c in self.definition.columns]
        if encodings is not None:
            # Cached-dictionary lexsort: seeds from the cached
            # single-column argsorts and memoizes suffix orders, so
            # indexes sharing key columns share the sorts.  The
            # permutation is identical to np.lexsort's.
            order = encodings.lexsort(
                table, tuple(self.definition.columns)
            )
        else:
            order = np.lexsort(tuple(reversed(key_arrays)))
        self.row_ids = order.astype(np.int64)
        self.key_columns = [arr[order] for arr in key_arrays]
        self.entry_count = len(order)
        key_width = sum(
            table.schema.column(c).width for c in self.definition.columns
        )
        self.size = estimate_index_size(
            self.entry_count, key_width, self._overhead_factor
        )
        self.cluster_factor = self._measure_cluster_factor(table)

    def _measure_cluster_factor(self, table):
        """Fraction of a random page I/O charged per row fetched via this index."""
        if self.entry_count == 0:
            return 1.0
        rows_per_page = max(1.0, PAGE_SIZE / table.schema.row_width())
        pages = np.floor(self.row_ids / rows_per_page)
        transitions = 1 + int(np.count_nonzero(np.diff(pages)))
        return min(1.0, transitions / self.entry_count)

    # ------------------------------------------------------------------
    # Probes (vectorized over the sorted arrays)

    @property
    def leading_keys(self):
        """Leading key column in index order (for searchsorted probes)."""
        return self.key_columns[0]

    def lookup_eq(self, prefix_values):
        """Row ids matching equality on a leading prefix of key columns."""
        prefix_values = tuple(prefix_values)
        if len(prefix_values) > len(self.key_columns):
            raise ValueError("prefix longer than the index key")
        lo = np.searchsorted(self.leading_keys, prefix_values[0], side="left")
        hi = np.searchsorted(self.leading_keys, prefix_values[0], side="right")
        if len(prefix_values) == 1:
            return self.row_ids[lo:hi]
        mask = np.ones(hi - lo, dtype=bool)
        for depth, value in enumerate(prefix_values[1:], start=1):
            mask &= self.key_columns[depth][lo:hi] == value
        return self.row_ids[lo:hi][mask]

    def probe_many(self, probe_values):
        """Batch equality probes on the leading key column.

        Returns ``(matched_row_ids, probe_indices)`` — for every matching
        index entry, the heap row id and the position in ``probe_values``
        it matched.  This is the inner side of index-nested-loop joins.
        """
        probe_values = np.asarray(probe_values)
        lows = np.searchsorted(self.leading_keys, probe_values, side="left")
        highs = np.searchsorted(self.leading_keys, probe_values, side="right")
        return gather_ranges(self.row_ids, lows, highs), (lows, highs)

    def count_many(self, probe_values):
        """Number of index entries matching each probe value (no fetch)."""
        probe_values = np.asarray(probe_values)
        lows = np.searchsorted(self.leading_keys, probe_values, side="left")
        highs = np.searchsorted(self.leading_keys, probe_values, side="right")
        return highs - lows

    # ------------------------------------------------------------------
    # Reference structure

    def tree(self):
        """The equivalent B+-tree, built lazily from the sorted entries."""
        if self._tree is None:
            entries = zip(
                (tuple(col[i] for col in self.key_columns)
                 for i in range(self.entry_count)),
                (int(r) for r in self.row_ids),
            )
            self._tree = BPlusTree.bulk_load(entries)
        return self._tree
