"""Index definitions and the index size/height model.

An :class:`IndexDefinition` is pure metadata: it can describe an index on a
base table or on a materialized view, and it exists independently of any
built data — this is what recommenders emit and what *hypothetical*
(what-if) configurations are made of.

The size model is what the space-budget arithmetic of the benchmark uses:
the paper constrains recommended configurations to
``size(1C) - size(P)`` extra bytes.
"""

import math
from dataclasses import dataclass

from ..common.hardware import PAGE_SIZE, pages_for_bytes

ROWID_WIDTH = 8
ENTRY_OVERHEAD = 4


@dataclass(frozen=True)
class IndexDefinition:
    """An index on ``table`` (or view) over an ordered tuple of columns."""

    table: str
    columns: tuple
    is_primary: bool = False

    def __post_init__(self):
        if not self.columns:
            raise ValueError("an index needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in index {self.columns}")
        object.__setattr__(self, "columns", tuple(self.columns))

    @property
    def name(self):
        kind = "pk" if self.is_primary else "ix"
        return f"{kind}_{self.table}__{'_'.join(self.columns)}"

    @property
    def width(self):
        """Number of key columns (the paper's Tables 2/3 group by this)."""
        return len(self.columns)

    def covers(self, columns):
        """True if every column in ``columns`` is a key column of this index."""
        return set(columns) <= set(self.columns)

    def has_prefix(self, columns):
        """True if ``columns`` (as a set) can form a leading prefix."""
        k = len(columns)
        return k <= len(self.columns) and set(self.columns[:k]) == set(columns)


@dataclass(frozen=True)
class IndexSizeEstimate:
    """Page-level geometry of a (possibly hypothetical) index."""

    entries: int
    entry_width: int
    leaf_pages: int
    height: int
    byte_size: int


def estimate_index_size(row_count, key_width, overhead_factor=1.0):
    """Page-level geometry for an index with ``row_count`` entries.

    ``key_width`` is the summed byte width of the key columns.
    ``overhead_factor`` models per-system storage overhead (the commercial
    systems in the paper produced very different index sizes for identical
    configurations — compare A NREF 1C at 35.7 GB with B NREF 1C at
    17.1 GB in Table 1).
    """
    entry_width = int(
        (key_width + ROWID_WIDTH + ENTRY_OVERHEAD) * overhead_factor
    )
    entries_per_leaf = max(2, PAGE_SIZE // entry_width)
    leaf_pages = max(1, math.ceil(row_count / entries_per_leaf))
    fanout = max(2, PAGE_SIZE // (key_width + ROWID_WIDTH))
    height = 1
    level_pages = leaf_pages
    while level_pages > 1:
        level_pages = math.ceil(level_pages / fanout)
        height += 1
    total_pages = leaf_pages
    level_pages = leaf_pages
    while level_pages > 1:
        level_pages = math.ceil(level_pages / fanout)
        total_pages += level_pages
    byte_size = total_pages * PAGE_SIZE
    return IndexSizeEstimate(
        entries=row_count,
        entry_width=entry_width,
        leaf_pages=leaf_pages,
        height=height,
        byte_size=byte_size,
    )


def heap_fetch_pages(rows_fetched, table_rows, table_pages):
    """Expected distinct heap pages touched when fetching random rows.

    Standard Yao approximation, used for *clustered* access costing: the
    number of distinct pages touched when ``rows_fetched`` of
    ``table_rows`` rows spread over ``table_pages`` pages are fetched.
    """
    if rows_fetched <= 0 or table_rows <= 0 or table_pages <= 0:
        return 0.0
    # Yao's formula approximated as pages * (1 - (1 - k/n)^(n/p)).
    rows_per_page = max(1.0, table_rows / table_pages)
    frac = 1.0 - (1.0 - min(1.0, rows_fetched / table_rows)) ** rows_per_page
    return min(float(table_pages), table_pages * frac)


def pages_for_rows(row_count, row_width):
    """Pages needed for ``row_count`` rows of ``row_width`` bytes."""
    return pages_for_bytes(row_count * row_width)
