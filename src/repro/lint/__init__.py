"""repro.lint — machine-checked reproducibility invariants.

The reproduction's headline guarantees (byte-identical serial/parallel
results, sound ``H(q, Ch, Ca)`` memoization) rest on project-wide
conventions; this package turns each one into an AST-based rule so CI
fails when a convention breaks instead of a figure silently drifting.

Rule catalog (see ``docs/static-analysis.md`` for the rationale):

========  ==============================================================
RNG001    no direct ``random``/``numpy.random``/``uuid`` use outside
          ``repro.common.rng``
CLK001    no wall-clock reads outside ``repro.obs`` (the engine clock
          is virtual)
INV001    every ``Database`` mutator must (transitively) call
          ``invalidate_caches()``
LCK001    attribute writes in pool-submitted callables must be
          lock-guarded or thread-local
SCH001    ``build_run_report`` keys and ``RUN_REPORT_SCHEMA``
          properties must agree (both directions)
EXC001    no bare ``except`` and no broad except that never re-raises
LCK002    shared attributes of lock-owning classes reached from
          executor entries need a class lock held on every path
          (interprocedural lockset analysis)
TNT001    nondeterministic values (clocks, env, ``id()``, ambient RNG,
          set order) must not flow into fingerprints, cache keys,
          costs, or report fields (interprocedural taint)
KNB001    ``REPRO_*`` knobs must be registered in
          ``repro.common.knobs``, documented in ``docs/cli.md``, and
          named in at least one test
========  ==============================================================

The three project-scope rules share one :class:`~repro.lint.callgraph.
CallGraph` per run (``Project.call_graph``) and the dataflow fixpoints
of :mod:`repro.lint.dataflow`.

Run it with ``python -m repro.lint [paths]``; silence a reviewed
finding with ``# repro-lint: disable=RULE``; grandfather findings with
``--baseline`` (see :mod:`repro.lint.baseline`).
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .callgraph import CallGraph, CallSite, FunctionInfo
from .core import FileUnit, Finding, Project, Rule
from .dataflow import (
    CFG,
    ForwardAnalysis,
    LocksetAnalysis,
    build_cfg,
)
from .rules import ALL_RULES
from .runner import (
    LINT_REPORT_SCHEMA,
    LINT_REPORT_SCHEMA_ID,
    LintResult,
    collect_files,
    run_lint,
)
from .suppress import parse_suppressions

__all__ = [
    "ALL_RULES",
    "CFG",
    "CallGraph",
    "CallSite",
    "FileUnit",
    "Finding",
    "ForwardAnalysis",
    "FunctionInfo",
    "LINT_REPORT_SCHEMA",
    "LINT_REPORT_SCHEMA_ID",
    "LintResult",
    "LocksetAnalysis",
    "Project",
    "Rule",
    "apply_baseline",
    "build_cfg",
    "collect_files",
    "load_baseline",
    "parse_suppressions",
    "run_lint",
    "write_baseline",
]
