"""Command-line entry point of the invariant checker.

Usage::

    python -m repro.lint [paths ...]
    python -m repro.lint src --format json
    python -m repro.lint src --format sarif > lint.sarif
    python -m repro.lint src --rule RNG001 --rule CLK001
    python -m repro.lint src --baseline lint-baseline.json
    python -m repro.lint src --write-baseline lint-baseline.json
    python -m repro.lint src --jobs 8 --timings
    python -m repro.lint --list-rules

Exit status: **0** no findings, **1** at least one non-baselined
finding, **2** usage or I/O errors (unknown rule, unreadable baseline).
CI runs ``python -m repro.lint src --format json`` on every push.
"""

import argparse
import json
import sys

from .baseline import write_baseline
from .rules import ALL_RULES
from .runner import run_lint


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for determinism, cache "
            "invalidation and lock discipline (see "
            "docs/static-analysis.md)."
        ),
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: src)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="RULE",
                        help="run only this rule (repeatable)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="subtract grandfathered findings in FILE")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker threads for the per-file phase "
                             "(default: cpu count); output is "
                             "identical for every value")
    parser.add_argument("--timings", action="store_true",
                        help="report per-phase wall clock (text "
                             "footer / json 'timings' object)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def main(argv=None):
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for name in sorted(ALL_RULES):
            rule = ALL_RULES[name]
            print(f"{name} [{rule.scope}] {rule.description}")
        return 0

    paths = args.paths or ["src"]
    try:
        result = run_lint(
            paths, rules=args.rule, baseline_path=args.baseline,
            jobs=args.jobs, timings=args.timings,
        )
    except KeyError as err:
        known = ", ".join(sorted(ALL_RULES))
        print(f"unknown rule {err.args[0]!r} (known: {known})",
              file=sys.stderr)
        return 2
    except (OSError, ValueError) as err:
        print(f"lint failed: {err}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        count = write_baseline(result.findings, args.write_baseline)
        print(f"baseline: {count} finding(s) -> {args.write_baseline}")
        return 0

    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(result.to_sarif(), indent=2, sort_keys=True))
    else:
        print(result.render_text())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
