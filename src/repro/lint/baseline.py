"""Baselines: grandfathered findings that do not fail the build.

A baseline is a committed JSON file listing findings that predate a
rule (or are accepted with justification); ``--baseline FILE`` subtracts
them from a run, so only *new* findings fail.  Entries are keyed by
``(rule, path, message)`` — deliberately **not** by line number, so
unrelated edits above a grandfathered finding do not resurrect it.
Identical findings are matched by multiplicity: a baseline with two
entries for a key absorbs at most two current findings of that key.

``--write-baseline FILE`` snapshots the current findings; the intended
workflow is to shrink the file over time and treat any growth as a
change that needs review (the file is sorted and stable under re-runs,
so diffs are meaningful).
"""

import json
from collections import Counter

BASELINE_VERSION = 1


def _key(finding):
    return (finding.rule, finding.path, finding.message)


def write_baseline(findings, path):
    """Write ``findings`` as a baseline file (sorted, stable)."""
    entries = [
        {"rule": rule, "path": file_path, "message": message}
        for rule, file_path, message in sorted(_key(f) for f in findings)
    ]
    document = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load_baseline(path):
    """Load a baseline file into a key-multiset.

    Raises:
        ValueError: malformed baseline (bad JSON, wrong version, or
            entries missing keys).
        OSError: unreadable file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}: baseline is not valid JSON ({err})") \
                from None
    if not isinstance(document, dict) \
            or document.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: expected a baseline with version={BASELINE_VERSION}"
        )
    keys = Counter()
    for entry in document.get("findings", ()):
        try:
            keys[(entry["rule"], entry["path"], entry["message"])] += 1
        except (TypeError, KeyError):
            raise ValueError(
                f"{path}: baseline entry missing rule/path/message: "
                f"{entry!r}"
            ) from None
    return keys


def apply_baseline(findings, baseline):
    """Split findings into (new, grandfathered) against a key-multiset.

    Returns:
        ``(new_findings, baselined_count, stale_count)`` where
        ``stale_count`` is the number of baseline entries no current
        finding matched — a shrink opportunity, reported but never an
        error.
    """
    remaining = Counter(baseline)
    new = []
    baselined = 0
    for finding in findings:
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined += 1
        else:
            new.append(finding)
    stale = sum(remaining.values())
    return new, baselined, stale
