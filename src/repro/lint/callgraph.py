"""The project-wide call graph: who calls whom, and how.

PR 4's rules are per-file and syntactic; the invariants that matter at
server scale (lock discipline across ``SessionStore``/``JobQueue``,
determinism taint through helper modules) are *inter*procedural.  This
module builds one :class:`CallGraph` per lint run — every function and
method of every linted file, plus resolved call edges — which the
project-scope rules (``LCK002``, ``TNT001``) traverse and run their
dataflow fixpoints over (:mod:`repro.lint.dataflow`).

Resolution is deliberately cheap and explicit about its tiers:

* ``direct``       — ``helper(...)`` to a function of the same module,
                     or an enclosing ``def`` (the nested-worker idiom);
* ``import``       — ``mod.helper(...)`` / ``from mod import helper``
                     across modules, through the per-file alias map;
* ``self``         — ``self.m(...)`` / ``cls.m(...)`` to a method of
                     the enclosing class, following single-inheritance
                     bases that are themselves project classes;
* ``typed``        — ``self.store.get(...)`` where ``self.store`` (or a
                     local) has an inferred project class, via
                     constructor-call type seeding propagated one level
                     through ``__init__`` parameters;
* ``unique``       — ``x.m(...)`` where exactly one project class
                     defines method ``m`` (the classic cheap CHA cut);
* ``submit``       — the callable handed to an executor
                     (``pool.submit(self._work)``, ``map_batch(fn)``,
                     ``Thread(target=fn)``, ``add_done_callback(fn)``);
                     submit targets are the *entry points* of the
                     concurrency rules.

Every edge carries an argument-binding map so analyses can translate
facts (held locks, taint) between caller and callee frames.
"""

import ast

from .core import dotted_name, import_aliases

SUBMIT_ATTRS = frozenset({"map_batch", "submit", "_map"})
POOLISH_FRAGMENTS = ("pool", "executor")
CALLBACK_ATTRS = frozenset({"add_done_callback"})
THREAD_CALLS = frozenset({"threading.Thread", "Thread"})

#: Methods the HTTP layer runs on per-request server threads; they are
#: executor entry points exactly like pool-submitted callables.
HANDLER_METHOD_PREFIX = "do_"

#: Marker type for attributes constructed from a non-project callable
#: (``self._sessions = OrderedDict()``): their methods are *known* not
#: to be project methods, which keeps the unique-name fallback from
#: inventing edges like ``self._sessions.get -> SomeClass.get``.
EXTERNAL = "<external>"


class FunctionInfo:
    """One function or method of the project, with its owner context."""

    def __init__(self, qualname, module, node, unit, class_name=None,
                 class_node=None):
        self.qualname = qualname      #: ``module::Class.method`` key
        self.module = module          #: dotted module guess from path
        self.node = node              #: the FunctionDef/Lambda node
        self.unit = unit              #: owning FileUnit
        self.class_name = class_name  #: enclosing class, or None
        self.class_node = class_node
        self.calls = []               #: outgoing CallSite list
        self.is_entry = False         #: submitted to an executor?
        self.entry_kinds = set()      #: why it is an entry

    @property
    def params(self):
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        return names

    def __repr__(self):
        return f"<FunctionInfo {self.qualname}>"


class CallSite:
    """One resolved call edge, with the argument-binding map.

    ``bindings`` maps callee parameter names to caller-side *tokens*:
    ``"self"`` when the caller passes its own instance, a plain local
    name, or a dotted ``self.attr`` chain — enough for the dataflow
    layer to rename facts across the edge.  ``receiver`` is the dotted
    text of the receiver expression for method calls (``"self.store"``),
    or ``None``.
    """

    def __init__(self, caller, callee, node, kind, bindings=None,
                 receiver=None):
        self.caller = caller
        self.callee = callee          #: callee qualname
        self.node = node              #: the ast.Call
        self.kind = kind
        self.bindings = bindings or {}
        self.receiver = receiver

    def __repr__(self):
        return (
            f"<CallSite {self.caller.qualname} -> {self.callee} "
            f"[{self.kind}]>"
        )


def module_name(unit):
    """Dotted module guess from a unit's path (``src/repro/a/b.py`` →
    ``repro.a.b``); falls back to the stem for paths outside a package.
    """
    parts = unit.posix.rsplit(".", 1)[0].split("/")
    for anchor in ("repro",):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotate_parents(tree):
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node


def _enclosing(node, kinds):
    node = getattr(node, "_lint_parent", None)
    while node is not None:
        if isinstance(node, kinds):
            return node
        node = getattr(node, "_lint_parent", None)
    return None


def _call_token(arg):
    """The binding token of one call argument (None when opaque)."""
    if isinstance(arg, ast.Name):
        return arg.id
    name = dotted_name(arg)
    return name


class CallGraph:
    """Functions, methods, call edges and executor entries of a project."""

    def __init__(self, units):
        self.functions = {}       #: qualname -> FunctionInfo
        self.classes = {}         #: class name -> [(unit, ClassDef)]
        self.methods_by_name = {} #: method name -> [qualname]
        self._module_funcs = {}   #: (module, name) -> qualname
        self._class_methods = {}  #: (module, Class) -> {name: qualname}
        self._class_bases = {}    #: (module, Class) -> [base names]
        self._attr_types = {}     #: (module, Class, attr) -> class name
        self._index(units)
        self._infer_attribute_types()
        for info in list(self.functions.values()):
            self._resolve_calls(info)
        self._mark_entries()

    # ------------------------------------------------------------------
    # Indexing

    def _index(self, units):
        for unit in units:
            _annotate_parents(unit.tree)
            module = module_name(unit)
            for node in ast.walk(unit.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, []).append(
                        (unit, node)
                    )
                    bases = [
                        dotted_name(base) for base in node.bases
                    ]
                    self._class_bases[(module, node.name)] = [
                        b for b in bases if b
                    ]
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    cls = _enclosing(node, ast.ClassDef)
                    enclosing_fn = _enclosing(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    if cls is not None and enclosing_fn is None:
                        qual = f"{module}::{cls.name}.{node.name}"
                        info = FunctionInfo(
                            qual, module, node, unit, cls.name, cls
                        )
                        self._class_methods.setdefault(
                            (module, cls.name), {}
                        )[node.name] = qual
                        self.methods_by_name.setdefault(
                            node.name, []
                        ).append(qual)
                    elif enclosing_fn is None:
                        qual = f"{module}::{node.name}"
                        info = FunctionInfo(qual, module, node, unit)
                        self._module_funcs[(module, node.name)] = qual
                    else:
                        # Nested def: addressed relative to its parent.
                        qual = (
                            f"{module}::"
                            f"{getattr(enclosing_fn, 'name', '<fn>')}"
                            f".<{node.name}>"
                        )
                        info = FunctionInfo(qual, module, node, unit)
                    self.functions[qual] = info

    def _class_qual(self, module, class_name):
        return (module, class_name)

    def _lookup_method(self, module, class_name, method, seen=None):
        """Resolve ``method`` on ``class_name``, following project bases."""
        seen = seen or set()
        key = (module, class_name)
        if key in seen:
            return None
        seen.add(key)
        methods = self._class_methods.get(key)
        if methods and method in methods:
            return methods[method]
        for base in self._class_bases.get(key, ()):  # e.g. BenchContext
            base_name = base.split(".")[-1]
            for unit, node in self.classes.get(base_name, ()):
                base_module = module_name(unit)
                found = self._lookup_method(
                    base_module, base_name, method, seen
                )
                if found:
                    return found
        return None

    # ------------------------------------------------------------------
    # Attribute/local type inference (constructor-call seeding)

    def _expr_class(self, expr, aliases):
        """The project class an expression constructs, or None."""
        if not isinstance(expr, ast.Call):
            return None
        name = dotted_name(expr.func)
        if name is None:
            return None
        resolved = aliases.get(name, name)
        tail = resolved.split(".")[-1]
        return tail if tail in self.classes else None

    def _infer_attribute_types(self):
        """``self.x = Cls(...)`` (or ``= param`` whose every
        construction-site argument is a known class) seeds attr types."""
        ctor_params = {}   # (module, Class, param) -> set of classes
        for info in self.functions.values():
            if info.class_name is None or info.node.name != "__init__":
                continue
            aliases = info.unit.aliases
            params = info.params
            for stmt in ast.walk(info.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    cls = self._expr_class(stmt.value, aliases)
                    if cls is not None:
                        self._attr_types[
                            (info.module, info.class_name, target.attr)
                        ] = cls
                    elif isinstance(stmt.value, ast.Call):
                        self._attr_types.setdefault(
                            (info.module, info.class_name, target.attr),
                            EXTERNAL,
                        )
                    elif isinstance(stmt.value, ast.Name) \
                            and stmt.value.id in params:
                        ctor_params.setdefault(
                            (info.module, info.class_name,
                             stmt.value.id),
                            target.attr,
                        )
        if not ctor_params:
            return
        # One propagation level: find construction sites of each class
        # and, when the argument bound to a recorded __init__ param is
        # itself a recognizable construction, type the attribute.
        seeded = {}
        for info in self.functions.values():
            aliases = info.unit.aliases
            local_types = _local_constructions(info.node, self, aliases)
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                cls = self._expr_class(call, aliases)
                if cls is None:
                    continue
                init = self._find_init(cls)
                if init is None:
                    continue
                params = [p for p in init.params if p != "self"]
                for position, arg in enumerate(call.args):
                    if position >= len(params):
                        break
                    key = (init.module, cls, params[position])
                    attr = ctor_params.get(key)
                    if attr is None:
                        continue
                    arg_cls = self._expr_class(arg, aliases)
                    if arg_cls is None and isinstance(arg, ast.Name):
                        arg_cls = local_types.get(arg.id)
                    if arg_cls is None and isinstance(arg, ast.Attribute):
                        chain = dotted_name(arg)
                        if chain and chain.startswith("self.") \
                                and info.class_name:
                            arg_cls = self._attr_types.get(
                                (info.module, info.class_name,
                                 chain.split(".", 2)[1])
                            )
                    if arg_cls is not None:
                        seeded[(init.module, cls, attr)] = arg_cls
                for keyword in call.keywords:
                    if keyword.arg is None:
                        continue
                    key = (init.module, cls, keyword.arg)
                    attr = ctor_params.get(key)
                    if attr is None:
                        continue
                    arg_cls = self._expr_class(keyword.value, aliases)
                    if arg_cls is None \
                            and isinstance(keyword.value, ast.Name):
                        arg_cls = local_types.get(keyword.value.id)
                    if arg_cls is not None:
                        seeded[(init.module, cls, attr)] = arg_cls
        for key, cls in seeded.items():
            self._attr_types.setdefault(key, cls)

    def _find_init(self, class_name):
        for unit, node in self.classes.get(class_name, ()):
            qual = self._class_methods.get(
                (module_name(unit), class_name), {}
            ).get("__init__")
            if qual:
                return self.functions[qual]
        return None

    def attribute_type(self, module, class_name, attr):
        """The inferred project class of ``self.<attr>``, or None."""
        return self._attr_types.get((module, class_name, attr))

    # ------------------------------------------------------------------
    # Call resolution

    def _resolve_calls(self, info):
        aliases = info.unit.aliases
        module = info.module
        local_types = _local_constructions(info.node, self, aliases)
        for call in ast.walk(info.node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            callee = None
            kind = None
            receiver = None
            if isinstance(func, ast.Name):
                resolved = aliases.get(func.id)
                if resolved and "." in resolved:
                    mod, _, name = resolved.rpartition(".")
                    callee = self._module_funcs.get((mod, name))
                    kind = "import"
                if callee is None:
                    callee = self._module_funcs.get((module, func.id))
                    kind = "direct"
                if callee is None:
                    callee = self._nested_callee(info, func.id)
                    kind = "direct"
            elif isinstance(func, ast.Attribute):
                receiver = dotted_name(func.value)
                if isinstance(func.value, ast.Name) \
                        and func.value.id in ("self", "cls") \
                        and info.class_name:
                    callee = self._lookup_method(
                        module, info.class_name, func.attr
                    )
                    kind = "self"
                if callee is None and receiver:
                    root = receiver.split(".")[0]
                    resolved_root = aliases.get(root)
                    if resolved_root and "." not in receiver:
                        # ``mod.helper(...)`` via ``import mod``
                        callee = self._module_funcs.get(
                            (resolved_root, func.attr)
                        )
                        kind = "import"
                if callee is None:
                    callee, kind = self._typed_or_unique(
                        info, func, receiver, local_types
                    )
            if callee is None:
                continue
            bindings = self._bind_arguments(info, call, callee)
            info.calls.append(CallSite(
                info, callee, call, kind, bindings, receiver
            ))

    def _nested_callee(self, info, name):
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                qual = (
                    f"{info.module}::{info.node.name}.<{name}>"
                    if hasattr(info.node, "name") else None
                )
                if qual in self.functions:
                    return qual
        return None

    def _typed_or_unique(self, info, func, receiver, local_types):
        """Tier 4/5: typed receiver, then unique method name."""
        target_class = None
        if receiver:
            parts = receiver.split(".")
            if parts[0] in ("self", "cls") and len(parts) == 2 \
                    and info.class_name:
                target_class = self.attribute_type(
                    info.module, info.class_name, parts[1]
                )
            elif len(parts) == 1:
                target_class = local_types.get(parts[0])
        if target_class == EXTERNAL:
            return None, None
        if target_class is not None:
            for unit, node in self.classes.get(target_class, ()):
                callee = self._lookup_method(
                    module_name(unit), target_class, func.attr
                )
                if callee:
                    return callee, "typed"
        candidates = self.methods_by_name.get(func.attr, ())
        if len(candidates) == 1:
            return candidates[0], "unique"
        return None, None

    def _bind_arguments(self, info, call, callee_qual):
        callee = self.functions.get(callee_qual)
        if callee is None:
            return {}
        params = callee.params
        offset = 1 if callee.class_name is not None \
            and params and params[0] in ("self", "cls") else 0
        bindings = {}
        if offset and isinstance(call.func, ast.Attribute):
            receiver = dotted_name(call.func.value)
            if receiver:
                bindings[params[0]] = receiver
        for position, arg in enumerate(call.args):
            index = position + offset
            if index >= len(params):
                break
            token = _call_token(arg)
            if token:
                bindings[params[index]] = token
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in params:
                token = _call_token(keyword.value)
                if token:
                    bindings[keyword.arg] = token
        return bindings

    # ------------------------------------------------------------------
    # Executor entries

    def _mark_entries(self):
        for info in list(self.functions.values()):
            if info.class_name and \
                    info.node.name.startswith(HANDLER_METHOD_PREFIX):
                info.is_entry = True
                info.entry_kinds.add("handler")
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                target = self._submitted_target(info, call)
                if target is None:
                    continue
                entry = self.functions.get(target)
                if entry is not None:
                    entry.is_entry = True
                    entry.entry_kinds.add("submit")
                    info.calls.append(CallSite(
                        info, target, call, "submit",
                        self._submit_bindings(info, call, entry),
                    ))

    def _submitted_target(self, info, call):
        """The qualname of a callable handed to an executor, if any."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            name = dotted_name(func)
            if name is not None and \
                    info.unit.aliases.get(name, name) in THREAD_CALLS:
                for keyword in call.keywords:
                    if keyword.arg == "target":
                        return self._callable_qual(info, keyword.value)
            return None
        is_submit = func.attr in SUBMIT_ATTRS or \
            func.attr in CALLBACK_ATTRS
        if not is_submit and func.attr == "map":
            receiver = (dotted_name(func.value) or "").lower()
            is_submit = any(
                f in receiver for f in POOLISH_FRAGMENTS
            )
        if not is_submit or not call.args:
            return None
        return self._callable_qual(info, call.args[0])

    def _callable_qual(self, info, arg):
        if isinstance(arg, ast.Lambda):
            # Lambdas are modelled as part of the submitting function:
            # their body executes with the caller's locals in scope.
            return None
        if isinstance(arg, ast.Attribute) \
                and isinstance(arg.value, ast.Name):
            if arg.value.id in ("self", "cls") and info.class_name:
                return self._lookup_method(
                    info.module, info.class_name, arg.attr
                )
            # Bound method on a typed local: ``job = Job()`` then
            # ``pool.submit(job.run)``.
            local_types = _local_constructions(
                info.node, self, info.unit.aliases
            )
            target_class = local_types.get(arg.value.id)
            if target_class and target_class != EXTERNAL:
                return self._lookup_method(
                    info.module, target_class, arg.attr
                )
        if isinstance(arg, ast.Name):
            qual = self._module_funcs.get((info.module, arg.id))
            if qual:
                return qual
            return self._nested_callee(info, arg.id)
        return None

    def _submit_bindings(self, info, call, entry):
        params = entry.params
        if entry.class_name and params and params[0] in ("self", "cls"):
            receiver = None
            if isinstance(call.args[0], ast.Attribute):
                receiver = dotted_name(call.args[0].value)
            return {params[0]: receiver or "self"}
        return {}

    # ------------------------------------------------------------------
    # Queries

    def entries(self):
        """Every executor entry point (submitted or handler method)."""
        return [f for f in self.functions.values() if f.is_entry]

    def callers_of(self, qualname):
        """Every CallSite whose callee is ``qualname``."""
        sites = []
        for info in self.functions.values():
            for site in info.calls:
                if site.callee == qualname:
                    sites.append(site)
        return sites

    def reachable_from_entries(self):
        """Qualnames reachable from any entry (entries included)."""
        seen = set()
        frontier = [f.qualname for f in self.entries()]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            info = self.functions.get(qual)
            if info is None:
                continue
            for site in info.calls:
                if site.callee not in seen:
                    frontier.append(site.callee)
        return seen


def _local_constructions(fn, graph, aliases):
    """Map of local name -> project class constructed into it."""
    types = {}
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            cls = graph._expr_class(stmt.value, aliases)
            if cls is not None:
                types[stmt.targets[0].id] = cls
    return types
