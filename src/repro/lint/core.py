"""Core types of the invariant checker: findings, rules, file units.

``repro.lint`` exists because the reproduction's headline guarantees —
byte-identical serial/parallel results and sound ``H`` memoization —
rest on conventions no test exercises directly: randomness flows through
:mod:`repro.common.rng`, wall clocks live only in :mod:`repro.obs`,
every :class:`~repro.engine.database.Database` mutator invalidates the
derived-result caches, and state shared across session workers is
lock-guarded.  Each convention is encoded here as a :class:`Rule` over
the stdlib :mod:`ast`, so breaking one fails CI instead of silently
skewing a figure.

A rule sees either one :class:`FileUnit` (``scope = "file"``) or the
whole :class:`Project` (``scope = "project"``, for cross-file passes
such as the report/schema drift check).  Findings are plain value
objects; suppression comments and the committed baseline are applied by
the runner, not by rules.
"""

import ast
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self):
        """The canonical single-line text rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def to_json(self):
        """JSON-serializable dict (the ``--format json`` item shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (the ``RULE000`` id used in suppression
    comments, baselines and ``--rule`` filters), ``description`` (one
    line for ``--list-rules`` and the docs), and ``scope``:

    * ``"file"`` — :meth:`check_file` runs once per parsed file;
    * ``"project"`` — :meth:`check_project` runs once over all files.
    """

    name = ""
    description = ""
    scope = "file"

    def check_file(self, unit):
        """Yield :class:`Finding` objects for one file (file scope)."""
        return iter(())

    def check_project(self, project):
        """Yield :class:`Finding` objects for the project (project scope)."""
        return iter(())


class FileUnit:
    """One parsed source file plus the derived facts rules need."""

    def __init__(self, path, rel, source, tree):
        self.path = path
        self.rel = rel
        #: Relative path with forward slashes — what rules match
        #: exemptions against and what findings report.
        self.posix = rel.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._aliases = None

    @property
    def aliases(self):
        """Import alias map ``{bound name: dotted origin}`` (lazy)."""
        if self._aliases is None:
            self._aliases = import_aliases(self.tree)
        return self._aliases

    def finding(self, rule, node, message):
        """A :class:`Finding` of ``rule`` anchored at ``node``."""
        return Finding(
            path=self.posix,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Project:
    """All file units of one lint run, for cross-file passes.

    ``root`` is the directory lint paths were resolved against; rules
    that cross-reference non-linted files (``KNB001`` reads
    ``docs/cli.md`` and ``tests/``) resolve them relative to it.
    """

    def __init__(self, units, root=None):
        self.units = list(units)
        self.root = root
        self._call_graph = None

    @property
    def call_graph(self):
        """The project :class:`~repro.lint.callgraph.CallGraph` (built
        once per run, shared by every project-scope rule)."""
        if self._call_graph is None:
            from .callgraph import CallGraph
            self._call_graph = CallGraph(self.units)
        return self._call_graph

    def units_defining_function(self, name):
        """Units with a module-level ``def name`` (with the node)."""
        for unit in self.units:
            for node in unit.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    yield unit, node

    def units_assigning(self, name):
        """Units with a module-level ``name = ...`` (with the value node)."""
        for unit in self.units:
            for node in unit.tree.body:
                if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets
                ):
                    yield unit, node


# ----------------------------------------------------------------------
# AST helpers shared by the rules


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Chains rooted in anything but a plain name (calls, subscripts)
    return ``None`` — rules that need those walk the chain themselves.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree):
    """Map every imported binding to its fully dotted origin.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` →
    ``{"pc": "time.perf_counter"}``.  Relative imports are skipped —
    the rules only care about stdlib/third-party absolute origins.
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                aliases[bound] = origin
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(name, aliases):
    """Rewrite the first segment of ``name`` through the alias map.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` becomes
    ``numpy.random.default_rng``; unknown roots pass through unchanged.
    """
    head, _, rest = name.partition(".")
    origin = aliases.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def attribute_chain_root(node):
    """The base expression of an attribute/subscript chain.

    ``self.tables[name]`` and ``self._built.index_data[k]`` both walk
    down to the ``self`` Name node; returns ``(root, first_attr)`` where
    ``first_attr`` is the attribute directly on the root (``"tables"``,
    ``"_built"``), or ``(None, None)`` for non-chain targets.
    """
    first_attr = None
    while True:
        if isinstance(node, ast.Attribute):
            first_attr = node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        return node, first_attr
    return None, None
