"""A small dataflow framework: CFG approximation + forward analyses.

The project-scope rules need more than a tree walk: "is some lock held
on *every* path reaching this write" (a must-analysis with intersection
joins) and "can a nondeterministic value reach this argument" (a
may-analysis with union joins) are path-sensitive questions.  This
module provides the shared machinery:

* :func:`build_cfg` — a per-function control-flow graph approximation.
  Nodes are *operations*: plain statements, branch tests, and paired
  ``acquire``/``release`` pseudo-ops for ``with`` items.  ``if`` /
  ``while`` / ``for`` / ``try`` / ``break`` / ``continue`` / ``return``
  / ``raise`` produce the obvious edges; exception edges are
  approximated by making every handler reachable from the start of its
  ``try`` body (any statement may raise).
* :class:`ForwardAnalysis` — a worklist fixpoint over the CFG.
  Subclasses provide the lattice: ``initial()``, ``join(states)`` and
  ``transfer(op, state)``.  The result maps every operation to its
  *entry* state, which is what rules inspect ("state right before this
  write").
* :class:`LocksetAnalysis` — the must-held-locks instance: state is a
  frozenset of lock tokens, join is set intersection (a lock is held
  only if held on **all** reaching paths), ``with <lock>:`` acquires
  for exactly the body's extent.  ``TOP`` marks not-yet-reached blocks
  so intersection does not drain facts from unvisited paths.

Loops converge because both lattices are finite and the transfers are
monotone; the worklist re-queues a block only when its entry state
changes.
"""

import ast

#: Lattice top for must-analyses: "every fact holds" (unreached code).
TOP = None


class Operation:
    """One CFG operation: a statement, test, or lock pseudo-op."""

    __slots__ = ("kind", "node", "payload")

    def __init__(self, kind, node, payload=None):
        self.kind = kind        #: "stmt" | "test" | "acquire" | "release"
        self.node = node
        self.payload = payload  #: lock tokens for acquire/release

    def __repr__(self):
        return f"<Op {self.kind} L{getattr(self.node, 'lineno', '?')}>"


class Block:
    """A basic block: straight-line operations plus successor edges."""

    __slots__ = ("ops", "succs", "index")

    def __init__(self, index):
        self.index = index
        self.ops = []
        self.succs = []

    def link(self, other):
        if other is not None and other not in self.succs:
            self.succs.append(other)


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self):
        self.blocks = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self):
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def predecessors(self):
        preds = {block: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                preds[succ].append(block)
        return preds


class _Builder:
    """Recursive CFG construction with loop/exception context."""

    def __init__(self, cfg, lock_token):
        self.cfg = cfg
        self.lock_token = lock_token

    def build(self, stmts, current, loop=None, handlers=()):
        """Append ``stmts`` after ``current``; returns the fall-through
        block (or None when every path left the straight line)."""
        for stmt in stmts:
            if current is None:
                # Dead code after return/raise/break: still give it a
                # block so its operations exist (unreached = TOP).
                current = self.cfg.new_block()
            for handler_block in handlers:
                current.link(handler_block)
            current = self._statement(stmt, current, loop, handlers)
        return current

    def _statement(self, stmt, current, loop, handlers):
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            current.ops.append(Operation("test", stmt.test))
            join = cfg.new_block()
            then_entry = cfg.new_block()
            current.link(then_entry)
            then_exit = self.build(stmt.body, then_entry, loop, handlers)
            if then_exit is not None:
                then_exit.link(join)
            if stmt.orelse:
                else_entry = cfg.new_block()
                current.link(else_entry)
                else_exit = self.build(
                    stmt.orelse, else_entry, loop, handlers
                )
                if else_exit is not None:
                    else_exit.link(join)
            else:
                current.link(join)
            return join
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new_block()
            current.link(header)
            test = stmt.test if isinstance(stmt, ast.While) \
                else stmt.iter
            header.ops.append(Operation("test", test))
            after = cfg.new_block()
            body_entry = cfg.new_block()
            header.link(body_entry)
            header.link(after)
            body_exit = self.build(
                stmt.body, body_entry, (header, after), handlers
            )
            if body_exit is not None:
                body_exit.link(header)
            if stmt.orelse:
                else_exit = self.build(stmt.orelse, after, loop, handlers)
                return else_exit
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            tokens = []
            for item in stmt.items:
                token = self.lock_token(item.context_expr)
                if token is not None:
                    tokens.append(token)
            current.ops.append(Operation("acquire", stmt, tuple(tokens)))
            body_exit = self.build(stmt.body, current, loop, handlers)
            if body_exit is None:
                return None
            body_exit.ops.append(
                Operation("release", stmt, tuple(tokens))
            )
            return body_exit
        if isinstance(stmt, ast.Try):
            handler_blocks = [cfg.new_block() for _ in stmt.handlers]
            body_entry = cfg.new_block()
            current.link(body_entry)
            for handler_block in handler_blocks:
                body_entry.link(handler_block)
            body_exit = self.build(
                stmt.body, body_entry, loop,
                tuple(handlers) + tuple(handler_blocks),
            )
            join = cfg.new_block()
            if body_exit is not None:
                else_exit = self.build(stmt.orelse, body_exit, loop,
                                       handlers)
                if else_exit is not None:
                    else_exit.link(join)
            for handler, handler_block in zip(
                    stmt.handlers, handler_blocks):
                handler_exit = self.build(
                    handler.body, handler_block, loop, handlers
                )
                if handler_exit is not None:
                    handler_exit.link(join)
            if stmt.finalbody:
                final_exit = self.build(stmt.finalbody, join, loop,
                                        handlers)
                return final_exit
            return join
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.ops.append(Operation("stmt", stmt))
            current.link(cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if loop is not None:
                current.link(loop[1])
            return None
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                current.link(loop[0])
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions are separate CFGs; defining one is a
            # no-op for the enclosing flow.
            return current
        current.ops.append(Operation("stmt", stmt))
        return current


def build_cfg(fn, lock_token=lambda expr: None):
    """The CFG of a FunctionDef/AsyncFunctionDef body.

    Args:
        fn: the function node.
        lock_token: maps a ``with``-item context expression to a lock
            token (or ``None`` for non-lock contexts); tokens surface
            as ``acquire``/``release`` operation payloads.
    """
    cfg = CFG()
    builder = _Builder(cfg, lock_token)
    tail = builder.build(list(fn.body), cfg.entry)
    if tail is not None:
        tail.link(cfg.exit)
    return cfg


class ForwardAnalysis:
    """Worklist forward dataflow over a :class:`CFG`.

    Subclasses define the lattice::

        initial()            # entry-block state
        join(states)         # merge of predecessor exit states
        transfer(op, state)  # state after one operation

    :meth:`run` returns ``{id(op.node) or op: entry-state}`` via
    :attr:`before` — the state immediately *before* each operation —
    which is what rules query ("held locks at this write").
    """

    def __init__(self):
        self.before = {}

    def initial(self):
        raise NotImplementedError

    def join(self, states):
        raise NotImplementedError

    def transfer(self, op, state):
        raise NotImplementedError

    def run(self, cfg):
        preds = cfg.predecessors()
        entry_state = {block: TOP for block in cfg.blocks}
        entry_state[cfg.entry] = self.initial()
        worklist = [cfg.entry]
        exit_state = {}
        while worklist:
            block = worklist.pop()
            state = entry_state[block]
            if state is TOP:
                continue
            for op in block.ops:
                self.before[op] = state
                state = self.transfer(op, state)
            exit_state[block] = state
            for succ in block.succs:
                incoming = [
                    exit_state[p] for p in preds[succ]
                    if p in exit_state
                ]
                merged = self.join(incoming) if incoming else TOP
                if merged != entry_state[succ]:
                    entry_state[succ] = merged
                    worklist.append(succ)
        return self.before


class LocksetAnalysis(ForwardAnalysis):
    """Must-held locks at every operation (intersection over paths).

    State is a frozenset of lock tokens.  ``entry_locks`` is the set
    guaranteed held by *every* caller path into the function — the
    interprocedural credit computed by the races rule's fixpoint.
    """

    def __init__(self, entry_locks=frozenset()):
        super().__init__()
        self.entry_locks = frozenset(entry_locks)

    def initial(self):
        return self.entry_locks

    def join(self, states):
        states = [s for s in states if s is not TOP]
        if not states:
            return TOP
        merged = states[0]
        for state in states[1:]:
            merged = merged & state
        return merged

    def transfer(self, op, state):
        if op.kind == "acquire" and op.payload:
            return state | frozenset(op.payload)
        if op.kind == "release" and op.payload:
            return state - frozenset(op.payload)
        return state

    def locks_at(self, op):
        """Held lockset before ``op`` (empty for unreached code)."""
        state = self.before.get(op, TOP)
        return frozenset() if state is TOP else state


def statement_operations(before):
    """Iterate ``(stmt-node, entry-state)`` for plain statements."""
    for op, state in before.items():
        if op.kind == "stmt":
            yield op.node, state
