"""The rule registry: every shipped invariant check, by id.

Adding a rule = adding a module with a :class:`~repro.lint.core.Rule`
subclass and listing an instance here; the CLI, the docs catalog
(``docs/static-analysis.md``) and the test fixtures key off
``ALL_RULES``.
"""

from .clock import ClockRule
from .exceptions import ExceptionRule
from .invalidation import InvalidationRule
from .knobs import KnobRule
from .locks import LockRule
from .races import RaceRule
from .rng import RngRule
from .schema_sync import SchemaSyncRule
from .taint import TaintRule

ALL_RULES = {
    rule.name: rule
    for rule in (
        RngRule(),
        ClockRule(),
        InvalidationRule(),
        LockRule(),
        SchemaSyncRule(),
        ExceptionRule(),
        RaceRule(),
        TaintRule(),
        KnobRule(),
    )
}

__all__ = [
    "ALL_RULES",
    "ClockRule",
    "ExceptionRule",
    "InvalidationRule",
    "KnobRule",
    "LockRule",
    "RaceRule",
    "RngRule",
    "SchemaSyncRule",
    "TaintRule",
]
