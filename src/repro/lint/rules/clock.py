"""CLK001 — wall clocks live only in :mod:`repro.obs`.

The engine's clock is *virtual*: elapsed seconds are computed from the
cost model, never measured.  That is the whole reason parallel runs are
byte-identical to serial ones — a measured duration would differ every
run.  Wall-clock reads are therefore confined to the observability
layer (``repro.obs``, where spans report real time *next to* virtual
time); everything else must take timings from the cost model or from
:func:`repro.obs.wall_time` / :func:`repro.obs.perf_seconds` so the one
place real time enters the system stays auditable.

Flags resolved references to ``time.time``/``perf_counter``/
``monotonic``/``process_time`` (and their ``_ns`` variants),
``datetime.datetime.now``/``utcnow``/``today`` and
``datetime.date.today`` — as calls, bare references, or ``from``
imports — in any linted file outside ``repro/obs/``.
"""

import ast

from ..core import Rule, dotted_name, resolve_dotted

_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

_EXEMPT_FRAGMENT = "repro/obs/"


class ClockRule(Rule):
    name = "CLK001"
    description = (
        "no wall-clock reads outside repro.obs (the engine clock is "
        "virtual)"
    )
    scope = "file"

    def check_file(self, unit):
        if _EXEMPT_FRAGMENT in unit.posix:
            return
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                for alias in node.names:
                    origin = f"{node.module}.{alias.name}"
                    if origin in _WALL_CLOCK:
                        yield unit.finding(
                            self.name, node,
                            f"imports wall clock {origin!r}; use the "
                            f"virtual clock, or repro.obs.wall_time/"
                            f"perf_seconds for observability timings",
                        )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                name = dotted_name(node)
                if name is None:
                    continue
                resolved = resolve_dotted(name, unit.aliases)
                if resolved in _WALL_CLOCK:
                    yield unit.finding(
                        self.name, node,
                        f"wall-clock read {resolved!r}; use the virtual "
                        f"clock, or repro.obs.wall_time/perf_seconds "
                        f"for observability timings",
                    )
