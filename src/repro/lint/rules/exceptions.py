"""EXC001 — no bare or silently-swallowed broad exception handlers.

A recommender or runtime path that swallows an exception turns a hard
failure into a silently-wrong figure: a worker that drops a query's
error would still return *some* batch, and nothing downstream could
tell.  The engine's convention is that only specifically-anticipated
exceptions (``QueryTimeout``, a corrupt cache entry's ``OSError``) are
caught, and anything broad must re-raise.

Flags

* ``except:`` — always (it even catches ``KeyboardInterrupt``);
* ``except Exception`` / ``except BaseException`` (alone or in a
  tuple) whose handler body contains no ``raise`` — the handler
  swallows everything.

Handlers for specific exception types are never flagged, whatever
their body does: catching-and-degrading a *named* failure mode is the
sanctioned pattern (see ``ArtifactCache.get``).
"""

import ast

from ..core import Rule, dotted_name, resolve_dotted

_BROAD = frozenset({
    "Exception",
    "BaseException",
    "builtins.Exception",
    "builtins.BaseException",
})


def _broad_types(handler, aliases):
    """Broad exception-type nodes named by an ExceptHandler."""
    node = handler.type
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in types:
        name = dotted_name(item)
        if name is not None and resolve_dotted(name, aliases) in _BROAD:
            yield item


class ExceptionRule(Rule):
    name = "EXC001"
    description = (
        "no bare except and no broad except that swallows (never "
        "re-raises)"
    )
    scope = "file"

    def check_file(self, unit):
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield unit.finding(
                    self.name, node,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt; name the exceptions (or catch "
                    "Exception and re-raise)",
                )
                continue
            broad = list(_broad_types(node, unit.aliases))
            if not broad:
                continue
            if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                continue
            yield unit.finding(
                self.name, broad[0],
                "broad except swallows every error (no raise in the "
                "handler); catch the specific exceptions or re-raise",
            )
