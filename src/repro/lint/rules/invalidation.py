"""INV001 — every ``Database`` mutator must invalidate the caches.

The plan/estimate, environment and what-if caches memoize derived
results keyed by configuration fingerprints; they are only sound while
the underlying state (loaded tables, statistics, the built
configuration) is unchanged.  The contract, stated in
``engine/database.py``, is that **every state transition calls
``invalidate_caches()``** — a contract this rule machine-checks so a
new mutator added two years from now cannot silently serve stale
``H(q, Ch, Ca)`` costs.

Mechanically: in any class that defines ``invalidate_caches``, a method
counts as a *mutator* when it assigns to (or calls a mutating method
on) one of the state attributes ``tables`` / ``statistics`` /
``_view_stats`` / ``_built``, or calls ``append_rows`` on anything.
Each mutator must *reach* ``self.invalidate_caches()`` — directly or
transitively through other methods of the same class (``apply_configuration``
delegates to ``_apply_configuration``, which invalidates).  Dunder
methods are exempt: construction and unpickling build fresh caches
rather than invalidating old ones.
"""

import ast

from ..core import Rule, attribute_chain_root

STATE_ATTRS = frozenset({"tables", "statistics", "_view_stats", "_built"})
MUTATING_METHODS = frozenset({
    "put", "clear", "update", "setdefault", "pop", "popitem",
    "append", "extend", "insert", "remove", "add", "discard",
})
ALWAYS_MUTATING_CALLS = frozenset({"append_rows"})
INVALIDATOR = "invalidate_caches"


def _is_dunder(name):
    return name.startswith("__") and name.endswith("__")


def _chain_is_self_state(node):
    """Whether an attribute/subscript chain is ``self.<state attr>...``."""
    root, first = attribute_chain_root(node)
    return (
        root is not None and root.id == "self"
        and first in STATE_ATTRS
    )


class _MethodFacts(ast.NodeVisitor):
    """Mutation evidence and self-call targets of one method body."""

    def __init__(self):
        self.mutations = []          # (node, description)
        self.self_calls = set()      # names of self.X(...) calls
        self.invalidates = False

    def _check_target(self, target):
        if isinstance(target, (ast.Attribute, ast.Subscript)) \
                and _chain_is_self_state(target):
            _, first = attribute_chain_root(target)
            self.mutations.append((target, f"assigns self.{first}"))

    def visit_Assign(self, node):
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node):
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                if func.attr == INVALIDATOR:
                    self.invalidates = True
                self.self_calls.add(func.attr)
            elif func.attr in ALWAYS_MUTATING_CALLS:
                self.mutations.append(
                    (node, f"calls .{func.attr}()")
                )
            elif func.attr in MUTATING_METHODS \
                    and _chain_is_self_state(func.value):
                _, first = attribute_chain_root(func.value)
                self.mutations.append(
                    (node, f"calls {func.attr}() on self.{first}")
                )
        self.generic_visit(node)


class InvalidationRule(Rule):
    name = "INV001"
    description = (
        "Database mutators must (transitively) call invalidate_caches()"
    )
    scope = "file"

    def check_file(self, unit):
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(unit, node)

    def _check_class(self, unit, cls):
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if INVALIDATOR not in methods:
            return
        facts = {}
        for name, method in methods.items():
            collector = _MethodFacts()
            for stmt in method.body:
                collector.visit(stmt)
            facts[name] = collector

        # Fixed point: a method invalidates if it calls
        # invalidate_caches directly or calls a method that does.
        invalidating = {
            name for name, f in facts.items()
            if f.invalidates or name == INVALIDATOR
        }
        changed = True
        while changed:
            changed = False
            for name, f in facts.items():
                if name not in invalidating \
                        and f.self_calls & invalidating:
                    invalidating.add(name)
                    changed = True

        for name, method in methods.items():
            if _is_dunder(name) or name == INVALIDATOR:
                continue
            f = facts[name]
            if f.mutations and name not in invalidating:
                node, what = f.mutations[0]
                yield unit.finding(
                    self.name, node,
                    f"{cls.name}.{name} {what} but never reaches "
                    f"{INVALIDATOR}(); stale plan/estimate/what-if "
                    f"cache entries would survive the state change",
                )
