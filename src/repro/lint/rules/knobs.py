"""KNB001 — every ``REPRO_*`` knob must honor the registry contract.

:mod:`repro.common.knobs` is the single place a ``REPRO_*`` environment
variable may be declared and read; ``docs/cli.md`` is where users learn
it exists; a test that names it is what keeps both honest.  This rule
cross-references all three, so a knob cannot be added half-way:

* **unregistered** — a ``REPRO_*`` name referenced in source (via
  ``knobs.text``/``knobs.flag``, an ``os.environ`` read, or any string
  constant) that has no ``register("NAME", ...)`` declaration in the
  registry module;
* **undocumented** — a registered-or-read name missing from
  ``docs/cli.md``;
* **untested** — a name no file under ``tests/`` mentions;
* **direct read** — any ``os.environ[...]`` / ``os.environ.get`` /
  ``os.getenv`` of a ``REPRO_*`` name outside the registry module
  itself (the registry's ``text()`` is the one sanctioned accessor).

The registry, docs, and tests are resolved against
:attr:`Project.root`, so the rule also works on fixture mini-trees;
checks whose anchor file does not exist in the tree are skipped rather
than failed (linting a subdirectory must not drown in
missing-docs noise).
"""

import ast
import os
import re

from ..core import Rule, dotted_name

KNOB_RE = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")

REGISTRY_SUFFIX = "repro/common/knobs.py"

ENV_READ_NAMES = frozenset({"os.environ.get", "os.getenv"})


def _string_value(node, constants):
    """The str value of a literal or module-level constant name."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def _module_constants(tree):
    constants = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            constants[stmt.targets[0].id] = stmt.value.value
    return constants


class KnobRule(Rule):
    name = "KNB001"
    description = (
        "REPRO_* knobs must be registered in repro.common.knobs, "
        "documented in docs/cli.md, and named in at least one test"
    )
    scope = "project"

    def check_project(self, project):
        registry_unit = None
        for unit in project.units:
            if unit.posix.endswith(REGISTRY_SUFFIX):
                registry_unit = unit
                break
        registered = self._registered_names(project, registry_unit)
        documented = self._documented_names(project)
        tested = self._tested_names(project)
        referenced = {}     # name -> (unit, anchor node)
        findings = []
        for unit in project.units:
            if unit.posix.endswith(REGISTRY_SUFFIX):
                continue
            if self._is_test_file(unit.posix):
                continue
            constants = _module_constants(unit.tree)
            for node in ast.walk(unit.tree):
                if isinstance(node, ast.Call):
                    name = self._direct_env_read(node, unit, constants)
                    if name is not None:
                        findings.append(unit.finding(
                            self.name, node,
                            f"{name} is read directly from os.environ; "
                            f"route the read through "
                            f"repro.common.knobs.text/flag so the "
                            f"registry stays the single source of "
                            f"truth",
                        ))
                if isinstance(node, ast.Subscript):
                    base = dotted_name(node.value)
                    if base in ("os.environ", "environ"):
                        value = _string_value(node.slice, constants)
                        if value and KNOB_RE.fullmatch(value):
                            findings.append(unit.finding(
                                self.name, node,
                                f"{value} is read directly from "
                                f"os.environ; route the read through "
                                f"repro.common.knobs.text/flag so the "
                                f"registry stays the single source of "
                                f"truth",
                            ))
                if isinstance(node, ast.Constant) \
                        and isinstance(node.value, str):
                    for name in KNOB_RE.findall(node.value):
                        current = referenced.get(name)
                        anchor = (unit, node)
                        if current is None or self._anchor_key(anchor) \
                                < self._anchor_key(current):
                            referenced[name] = anchor
        for name in sorted(referenced):
            unit, node = referenced[name]
            if registered is not None and name not in registered:
                findings.append(unit.finding(
                    self.name, node,
                    f"{name} is not registered in repro.common.knobs; "
                    f"add a register(\"{name}\", ...) declaration",
                ))
            if documented is not None and name not in documented:
                findings.append(unit.finding(
                    self.name, node,
                    f"{name} is not documented in docs/cli.md; add it "
                    f"to the environment-variable table",
                ))
            if tested is not None and name not in tested:
                findings.append(unit.finding(
                    self.name, node,
                    f"{name} is not named in any test under tests/; "
                    f"add a test that exercises or at least names it",
                ))
        seen = set()
        for finding in sorted(findings):
            if finding not in seen:
                seen.add(finding)
                yield finding

    def _anchor_key(self, anchor):
        unit, node = anchor
        return (unit.posix, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0))

    def _is_test_file(self, posix):
        base = posix.rsplit("/", 1)[-1]
        return base.startswith("test_") or "/tests/" in f"/{posix}"

    # ------------------------------------------------------------------
    # The three cross-referenced surfaces

    def _registered_names(self, project, registry_unit):
        """Names declared via ``register("NAME", ...)``; None skips."""
        tree = None
        if registry_unit is not None:
            tree = registry_unit.tree
        elif project.root:
            for rel in (f"src/{REGISTRY_SUFFIX}", REGISTRY_SUFFIX):
                path = os.path.join(project.root, rel)
                if os.path.isfile(path):
                    try:
                        with open(path, encoding="utf-8") as fh:
                            tree = ast.parse(fh.read())
                    except (OSError, SyntaxError):
                        return None
                    break
        if tree is None:
            return None
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func) or ""
                if callee.split(".")[-1] == "register" and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) \
                            and isinstance(first.value, str):
                        names.add(first.value)
        return names

    def _documented_names(self, project):
        if not project.root:
            return None
        path = os.path.join(project.root, "docs", "cli.md")
        if not os.path.isfile(path):
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                return set(KNOB_RE.findall(fh.read()))
        except OSError:
            return None

    def _tested_names(self, project):
        if not project.root:
            return None
        tests_dir = os.path.join(project.root, "tests")
        if not os.path.isdir(tests_dir):
            return None
        names = set()
        for dirpath, dirnames, filenames in os.walk(tests_dir):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    with open(path, encoding="utf-8") as fh:
                        names |= set(KNOB_RE.findall(fh.read()))
                except OSError:
                    continue
        return names

    # ------------------------------------------------------------------
    # Direct environment reads

    def _direct_env_read(self, call, unit, constants):
        """The REPRO_* name of a raw os.environ read, or None."""
        func = call.func
        name = dotted_name(func)
        if name is None:
            return None
        resolved = name
        head, _, rest = name.partition(".")
        origin = unit.aliases.get(head)
        if origin:
            resolved = f"{origin}.{rest}" if rest else origin
        if resolved in ENV_READ_NAMES or name in ENV_READ_NAMES:
            if call.args:
                value = _string_value(call.args[0], constants)
                if value and KNOB_RE.fullmatch(value):
                    return value
        return None
