"""LCK001 — state shared with session workers must be lock-guarded.

``MeasurementSession`` fans callables out over a thread pool.  The
byte-identity guarantee only covers *results* (collected in submission
order); it says nothing about side effects, so an attribute write
inside a pooled callable is a data race unless it is guarded by a lock
or lands in thread-local storage.  Racy counters are the classic
failure: the run "works" but its reported statistics are silently
wrong, which for a measurement framework is the worst kind of bug.

Mechanically: for every callable submitted to ``map_batch`` /
``submit`` / ``_map`` (or ``.map`` on a receiver whose name mentions a
pool or executor) — an inline lambda, a nested ``def``, or a bound
method of the enclosing class (``pool.submit(self._work, job)``) —
this rule inspects the callable's body — following ``self.method()``
calls into methods of the enclosing class, same file, bounded depth —
and flags

* assignments/augmented assignments to attributes whose base object is
  not local to the callable (``self.hits += 1``, ``shared.total = x``),
* augmented assignments to ``nonlocal``/``global`` names,

unless the write sits under ``with <something named *lock*>:`` or the
attribute chain mentions thread-local storage (a segment containing
``local``).  Both escapes are heuristics by design — the rule is meant
to force the author to *name* the synchronization.
"""

import ast

from ..core import Rule, dotted_name

SUBMIT_ATTRS = frozenset({"map_batch", "submit", "_map"})
POOLISH_FRAGMENTS = ("pool", "executor")
MAX_DEPTH = 4


def _annotate_parents(tree):
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node


def _enclosing(node, kinds):
    node = getattr(node, "_lint_parent", None)
    while node is not None:
        if isinstance(node, kinds):
            return node
        node = getattr(node, "_lint_parent", None)
    return None


def _is_submission(call):
    """Whether a Call node hands its first argument to a worker pool."""
    func = call.func
    if not isinstance(func, ast.Attribute) or not call.args:
        return False
    if func.attr in SUBMIT_ATTRS:
        return True
    if func.attr == "map":
        receiver = (dotted_name(func.value) or "").lower()
        return any(f in receiver for f in POOLISH_FRAGMENTS)
    return False


def _is_lockish(expr):
    """Whether a with-item context expression names a lock."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = dotted_name(expr) or ""
    return "lock" in name.lower()


def _chain_mentions_local(node):
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and "local" in node.attr.lower():
            return True
        node = node.value
    return isinstance(node, ast.Name) and "local" in node.id.lower()


def _local_names(fn):
    """Names bound inside ``fn`` (params + plain-name stores)."""
    names = set()
    args = fn.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    if isinstance(fn, ast.Lambda):
        return names
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _self_method_calls(fn):
    """Names of ``self.X(...)`` calls anywhere in ``fn``."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "self":
            yield node.func.attr


class LockRule(Rule):
    name = "LCK001"
    description = (
        "attribute writes in pool-submitted callables must be "
        "lock-guarded or thread-local"
    )
    scope = "file"

    def check_file(self, unit):
        _annotate_parents(unit.tree)
        methods_by_class = {}
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ClassDef):
                methods_by_class[node] = {
                    stmt.name: stmt for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                }
        for call in ast.walk(unit.tree):
            if not (isinstance(call, ast.Call) and _is_submission(call)):
                continue
            target = self._resolve_callable(call)
            if target is None:
                continue
            cls = _enclosing(call, ast.ClassDef)
            yield from self._check_callable(
                unit, target, methods_by_class.get(cls, {}),
                depth=0, visited=set(),
            )

    def _resolve_callable(self, call):
        """The Lambda/FunctionDef node submitted by ``call``, if local.

        Resolves three shapes: an inline lambda, a plain name bound by
        an enclosing ``def`` (the nested-worker idiom), and a bound
        method of the enclosing class (``pool.submit(self._work, job)``
        — the long-lived-service idiom, where the worker body lives in
        a method rather than a closure).
        """
        arg = call.args[0]
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Attribute) \
                and isinstance(arg.value, ast.Name) \
                and arg.value.id in ("self", "cls"):
            cls = _enclosing(call, ast.ClassDef)
            if cls is not None:
                for stmt in cls.body:
                    if isinstance(stmt, ast.FunctionDef) \
                            and stmt.name == arg.attr:
                        return stmt
            return None
        if not isinstance(arg, ast.Name):
            return None
        scope = _enclosing(call, (ast.FunctionDef, ast.Module))
        while scope is not None:
            for stmt in scope.body:
                if isinstance(stmt, ast.FunctionDef) \
                        and stmt.name == arg.id:
                    return stmt
            if isinstance(scope, ast.Module):
                break
            scope = _enclosing(scope, (ast.FunctionDef, ast.Module))
        return None

    def _check_callable(self, unit, fn, methods, depth, visited):
        if fn in visited or depth > MAX_DEPTH:
            return
        visited.add(fn)
        if not isinstance(fn, ast.Lambda):
            locals_ = _local_names(fn)
            locals_.discard("self")
            locals_.discard("cls")
            nonlocals = set()
            for node in ast.walk(fn):
                if isinstance(node, (ast.Nonlocal, ast.Global)):
                    nonlocals.update(node.names)
            yield from self._scan(
                unit, fn.body, locals_, nonlocals, guarded=False
            )
        for name in _self_method_calls(fn):
            if name in methods:
                yield from self._check_callable(
                    unit, methods[name], methods, depth + 1, visited
                )

    def _scan(self, unit, stmts, locals_, nonlocals, guarded):
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = guarded or any(
                    _is_lockish(item.context_expr) for item in stmt.items
                )
                yield from self._scan(
                    unit, stmt.body, locals_, nonlocals, inner
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue    # nested defs are analyzed only if submitted
            else:
                if not guarded:
                    yield from self._flag_writes(
                        unit, stmt, locals_, nonlocals
                    )
                for attr in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, attr, None)
                    if isinstance(block, list):
                        yield from self._scan(
                            unit, block, locals_, nonlocals, guarded
                        )
                for handler in getattr(stmt, "handlers", ()):
                    yield from self._scan(
                        unit, handler.body, locals_, nonlocals, guarded
                    )

    def _flag_writes(self, unit, stmt, locals_, nonlocals):
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        else:
            return
        for target in targets:
            if isinstance(target, ast.Attribute):
                base = target.value
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                if base.id in locals_:
                    continue
                if _chain_mentions_local(target):
                    continue
                name = dotted_name(target) or f"...{target.attr}"
                yield unit.finding(
                    self.name, stmt,
                    f"unguarded write to shared attribute {name!r} "
                    f"inside a pool-submitted callable; wrap it in "
                    f"'with <lock>:' or move it to thread-local state",
                )
            elif isinstance(target, ast.Name) \
                    and isinstance(stmt, ast.AugAssign) \
                    and target.id in nonlocals:
                yield unit.finding(
                    self.name, stmt,
                    f"unguarded augmented assignment to nonlocal/global "
                    f"{target.id!r} inside a pool-submitted callable; "
                    f"guard it with a lock",
                )
