"""LCK002 — interprocedural lockset race detection.

``LCK001`` is syntactic: it looks at the body of a pool-submitted
callable and wants writes wrapped in ``with <lock>:`` *textually*.
That misses the two shapes the server code actually uses:

* **caller holds the lock** — ``_evict_lru`` writes shared maps with no
  ``with`` in sight, because every caller acquires ``self._lock``
  first; LCK001 cannot credit that, LCK002 can (the interprocedural
  fixpoint propagates held locksets across call edges);
* **helper escape** — a method runs both under the lock (from one call
  site) and outside it (from a handler thread); the *intersection*
  over reaching paths is empty, so its shared writes are races even
  though some executions are guarded.

Mechanically, per lint run:

1. every class that *owns a lock* (an ``__init__`` attribute built from
   ``threading.Lock/RLock/Condition``, or any attribute whose name
   contains ``lock``) opts into lockset discipline — classes without
   locks are assumed thread-confined and stay out of scope;
2. the call graph's executor entries (pool-submitted callables,
   ``Thread(target=...)``, ``add_done_callback`` hooks, ``do_*`` HTTP
   handler methods) seed a fixpoint that computes, for every reachable
   function, the set of locks held on **all** paths into it
   (:class:`~repro.lint.dataflow.LocksetAnalysis` per body,
   intersection across call sites, lock tokens translated through each
   edge's argument bindings);
3. inside reachable methods of lock-owning classes, every write to
   shared state — ``self.<attr>``, or a local aliased from ``self``
   state (``session = self._sessions[sid]; session.hits += 1``) — must
   have at least one of the owning class's locks in its must-held
   lockset.

Lock tokens are class-scoped (``SessionStore._lock``): the server holds
exactly one store/queue instance, so class identity approximates object
identity; module-level locks are module-scoped, and parameter locks are
frame-scoped and renamed across edges via the binding maps.
``__init__`` is exempt (the instance is not yet shared while it runs).
"""

import ast

from ..core import Rule, dotted_name
from ..dataflow import LocksetAnalysis, build_cfg
from ..callgraph import module_name

#: Constructors whose result is a synchronization object.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "Lock", "RLock", "Condition",
})

#: The fixpoint is monotone (locksets only shrink), so this bound is a
#: backstop, not a tuning knob.
MAX_PASSES = 20


def _is_lock_value(expr, aliases):
    """Whether an assigned value constructs a synchronization object."""
    if not isinstance(expr, ast.Call):
        return False
    name = dotted_name(expr.func)
    if name is None:
        return False
    return aliases.get(name, name) in LOCK_FACTORIES or \
        name in LOCK_FACTORIES


def _lockish_name(name):
    """Name-based lock heuristic; ``clock`` is famously not a lock."""
    lowered = name.lower()
    return "lock" in lowered and "clock" not in lowered


def _chain_mentions_local(name):
    return "local" in name.lower() and "lock" not in name.lower()


class RaceRule(Rule):
    name = "LCK002"
    description = (
        "shared attributes of lock-owning classes reached from executor "
        "entries must be written with a class lock held on every path"
    )
    scope = "project"

    def check_project(self, project):
        graph = project.call_graph
        lock_attrs = self._lock_attributes(graph)
        if not lock_attrs:
            return
        entry_locks = self._interprocedural_locksets(graph, lock_attrs)
        reachable = graph.reachable_from_entries()
        findings = []
        for qual in sorted(reachable):
            info = graph.functions.get(qual)
            if info is None or info.class_name is None:
                continue
            if info.node.name == "__init__":
                continue
            class_key = (info.module, info.class_name)
            tokens = self._class_tokens(graph, info, lock_attrs)
            if not tokens:
                continue
            findings.extend(self._check_function(
                graph, info, lock_attrs,
                entry_locks.get(qual, frozenset()), tokens,
            ))
        seen = set()
        for finding in sorted(findings):
            if finding not in seen:
                seen.add(finding)
                yield finding

    # ------------------------------------------------------------------
    # Lock discovery

    def _lock_attributes(self, graph):
        """``(module, Class) -> {attr}`` for classes that own locks."""
        lock_attrs = {}
        for info in graph.functions.values():
            if info.class_name is None or info.node.name != "__init__":
                continue
            aliases = info.unit.aliases
            attrs = set()
            for stmt in ast.walk(info.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        if _is_lock_value(stmt.value, aliases) \
                                or _lockish_name(target.attr):
                            attrs.add(target.attr)
            if attrs:
                lock_attrs[(info.module, info.class_name)] = attrs
        return lock_attrs

    def _class_tokens(self, graph, info, lock_attrs):
        """The lock tokens that guard ``info``'s class (incl. bases)."""
        tokens = set()
        frontier = [(info.module, info.class_name)]
        seen = set()
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            for attr in lock_attrs.get(key, ()):
                tokens.add(f"{key[1]}.{attr}")
            for base in graph._class_bases.get(key, ()):
                base_name = base.split(".")[-1]
                for unit, _node in graph.classes.get(base_name, ()):
                    frontier.append((module_name(unit), base_name))
        return frozenset(tokens)

    def _lock_token(self, expr, info):
        """The global token of a ``with``-item lock expression."""
        if isinstance(expr, ast.Call):
            # ``with threading.Lock():`` guards nothing shared.
            return None
        name = dotted_name(expr)
        if name is None or not _lockish_name(name):
            return None
        parts = name.split(".")
        if parts[0] in ("self", "cls") and len(parts) >= 2 \
                and info.class_name:
            return f"{info.class_name}.{parts[1]}"
        if len(parts) == 1:
            # A bare name: module-level lock if the module assigns it,
            # otherwise a frame-local (parameter) lock.
            for stmt in info.unit.tree.body:
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == parts[0]
                    for t in stmt.targets
                ):
                    return f"{info.module}.{parts[0]}"
            return f"{info.qualname}::{parts[0]}"
        return f"{info.module}.{name}"

    # ------------------------------------------------------------------
    # Interprocedural fixpoint

    def _run_lockset(self, info, entry):
        cfg = build_cfg(
            info.node, lambda expr: self._lock_token(expr, info)
        )
        analysis = LocksetAnalysis(entry_locks=entry)
        analysis.run(cfg)
        return analysis

    def _translate(self, tokens, site, callee_info):
        """Rename caller-held tokens into the callee's frame.

        Class- and module-scoped tokens are global and pass through
        unchanged; frame-scoped tokens survive only when the edge's
        binding map carries the lock into a callee parameter.
        """
        out = set()
        for token in tokens:
            if "::" not in token:
                out.add(token)
                continue
            local = token.split("::", 1)[1]
            for param, bound in site.bindings.items():
                if bound == local:
                    out.add(f"{callee_info.qualname}::{param}")
        return frozenset(out)

    def _interprocedural_locksets(self, graph, lock_attrs):
        """``qualname -> locks held on every path from every entry``."""
        entry_locks = {}
        for info in graph.entries():
            entry_locks[info.qualname] = frozenset()
        worklist = sorted(entry_locks)
        passes = 0
        analyses = {}
        while worklist and passes < MAX_PASSES * len(graph.functions):
            passes += 1
            qual = worklist.pop()
            info = graph.functions.get(qual)
            if info is None:
                continue
            analysis = self._run_lockset(info, entry_locks[qual])
            analyses[qual] = analysis
            held_at = {}
            for op, state in analysis.before.items():
                held_at[id(op.node)] = state
            for site in info.calls:
                callee = graph.functions.get(site.callee)
                if callee is None:
                    continue
                held = self._locks_at_call(analysis, site)
                incoming = self._translate(held, site, callee)
                current = entry_locks.get(site.callee)
                merged = incoming if current is None \
                    else current & incoming
                if merged != current:
                    entry_locks[site.callee] = merged
                    if site.callee not in worklist:
                        worklist.append(site.callee)
        return entry_locks

    def _locks_at_call(self, analysis, site):
        """Must-held lockset at a call site's statement.

        Only ``stmt``/``test`` operations are candidates: an
        ``acquire`` op's node is the whole ``with`` statement, whose
        subtree contains every call of the body — matching it would
        read the state from *before* the acquire.
        """
        target = site.node
        for op, state in analysis.before.items():
            if op.kind not in ("stmt", "test"):
                continue
            for sub in ast.walk(op.node):
                if sub is target:
                    return frozenset() if state is None else state
        return frozenset()

    # ------------------------------------------------------------------
    # Write checking

    def _shared_aliases(self, fn):
        """Locals aliased from ``self`` state (shared, not private)."""
        shared = set()
        for _ in range(2):   # one re-pass catches alias-of-alias
            for stmt in ast.walk(fn):
                if not (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)):
                    continue
                value = stmt.value
                while isinstance(value, (ast.Subscript, ast.Attribute,
                                         ast.Call)):
                    value = value.func if isinstance(value, ast.Call) \
                        else value.value
                if isinstance(value, ast.Name) and (
                        value.id == "self" or value.id in shared):
                    shared.add(stmt.targets[0].id)
        return shared

    def _check_function(self, graph, info, lock_attrs, entry, tokens):
        analysis = self._run_lockset(info, entry)
        class_key = (info.module, info.class_name)
        own_locks = set()
        for attr in lock_attrs.get(class_key, ()):
            own_locks.add(attr)
        shared_locals = self._shared_aliases(info.node)
        for op, state in analysis.before.items():
            if op.kind != "stmt":
                continue
            held = frozenset() if state is None else state
            for target, name in self._write_targets(op.node):
                base = name.split(".")[0]
                if base in ("self", "cls"):
                    attr = name.split(".")[1] if "." in name else ""
                    if attr in own_locks:
                        continue
                elif base not in shared_locals:
                    continue
                if _chain_mentions_local(name):
                    continue
                if held & tokens:
                    continue
                lock_list = ", ".join(sorted(tokens))
                yield info.unit.finding(
                    self.name, op.node,
                    f"write to shared attribute {name!r} in "
                    f"{info.class_name}.{info.node.name} is reachable "
                    f"from an executor entry without holding "
                    f"{lock_list} on every path; acquire the lock or "
                    f"make the caller hold it",
                )

    def _write_targets(self, stmt):
        """``(target-node, dotted-name)`` attribute writes of one stmt."""
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        else:
            return
        for target in targets:
            if isinstance(target, ast.Tuple):
                continue
            node = target
            parts = []
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                if isinstance(node, ast.Attribute):
                    parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                continue
            if not parts and not isinstance(target, ast.Subscript):
                continue   # plain local rebind, not shared state
            parts.append(node.id)
            name = ".".join(reversed(parts))
            if isinstance(target, ast.Subscript) and "." not in name \
                    and node.id not in ("self", "cls"):
                # ``local[k] = v`` where local is a shared alias is a
                # shared write; anything else is local mutation.
                name = node.id
            yield target, name
