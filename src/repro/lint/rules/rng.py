"""RNG001 — all randomness flows through :mod:`repro.common.rng`.

Every experiment in the reproduction is seed-addressed: the same seed
must produce byte-identical data, workloads and recommendations across
runs, machines and pool widths.  That only holds if no component reaches
for an ambient entropy source.  This rule flags

* ``import random`` / ``from random import ...`` (the stdlib module is
  seeded per-process and shared across threads),
* ``import uuid`` / ``from uuid import ...`` (host/time-derived ids),
* any use of ``numpy.random`` — including ``np.random.default_rng`` —
  outside :mod:`repro.common.rng`, which is the one sanctioned wrapper
  (``make_rng`` / ``spawn`` give every consumer its own derived stream).
"""

import ast

from ..core import Rule, dotted_name, resolve_dotted

_BANNED_MODULES = ("random", "uuid")
_EXEMPT_SUFFIX = "repro/common/rng.py"


class RngRule(Rule):
    name = "RNG001"
    description = (
        "no direct random/numpy.random/uuid use outside repro.common.rng"
    )
    scope = "file"

    def check_file(self, unit):
        if unit.posix.endswith(_EXEMPT_SUFFIX):
            return
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield unit.finding(
                            self.name, node,
                            f"direct import of {alias.name!r}; derive "
                            f"randomness from repro.common.rng instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                root = node.module.split(".")[0]
                if root in _BANNED_MODULES:
                    yield unit.finding(
                        self.name, node,
                        f"direct import from {node.module!r}; derive "
                        f"randomness from repro.common.rng instead",
                    )
                elif node.module == "numpy.random" or \
                        node.module.startswith("numpy.random."):
                    yield unit.finding(
                        self.name, node,
                        f"direct import from {node.module!r}; use "
                        f"repro.common.rng.make_rng/spawn instead",
                    )
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                resolved = resolve_dotted(name, unit.aliases)
                if resolved == "numpy.random" or \
                        resolved.startswith("numpy.random."):
                    # Report the innermost chain that reaches
                    # numpy.random, once (parent Attribute nodes of the
                    # same chain resolve deeper and also match; keep the
                    # shortest by only firing when the child does not).
                    child = dotted_name(node.value)
                    if child is not None:
                        child = resolve_dotted(child, unit.aliases)
                        if child == "numpy.random" or \
                                child.startswith("numpy.random."):
                            continue
                    yield unit.finding(
                        self.name, node,
                        f"direct use of {resolved!r}; use "
                        f"repro.common.rng.make_rng/spawn instead",
                    )
