"""SCH001 — the run report and its schema must not drift.

``repro.obs.report.build_run_report`` emits the ``repro.report/v1``
document and ``repro.obs.schemas.RUN_REPORT_SCHEMA`` pins its shape;
CI validates real reports, but validation only catches drift *when the
drifting key is exercised by the CI run*.  This cross-file pass catches
it statically, in both directions:

* a key emitted by the report builder that the schema does not allow
  (``additionalProperties: False`` levels) — validation would fail at
  runtime;
* a key the schema ``require``\\ s that the builder never emits;
* a schema property no code path emits — dead schema, the subtler
  drift, because every report silently stops carrying a documented key.

The comparison walks the dict literal returned by ``build_run_report``
against the schema's ``properties``, recursing wherever *both* sides
are literal dicts; levels built dynamically (variables, ``**`` splats)
are skipped, since their keys are not statically known.  The pass is
a no-op for projects that define neither symbol.
"""

import ast

from ..core import Rule

REPORT_FUNCTION = "build_run_report"
SCHEMA_NAME = "RUN_REPORT_SCHEMA"


def _module_constants(tree):
    """Module-level ``NAME = <dict literal>`` assignments."""
    constants = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value
    return constants


def _resolve_dict(node, constants):
    """A Dict node, following one level of Name indirection."""
    if isinstance(node, ast.Name):
        node = constants.get(node.id)
    return node if isinstance(node, ast.Dict) else None


def _literal_keys(dict_node):
    """``{key: value node}`` for constant-string keys; ``None`` when the
    dict uses dynamic keys or ``**`` splats (not statically knowable)."""
    keys = {}
    for key, value in zip(dict_node.keys, dict_node.values):
        if key is None:     # ** splat
            return None
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys[key.value] = value
    return keys


def _schema_level(schema_node, constants):
    """(properties {name: subschema node}, required set, closed bool)."""
    keys = _literal_keys(schema_node)
    if keys is None:
        return None
    properties = {}
    props_node = _resolve_dict(keys.get("properties"), constants)
    if props_node is not None:
        prop_keys = _literal_keys(props_node)
        if prop_keys is None:
            return None
        properties = {
            name: _resolve_dict(value, constants)
            for name, value in prop_keys.items()
        }
    required = set()
    req_node = keys.get("required")
    if isinstance(req_node, (ast.List, ast.Tuple)):
        for element in req_node.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                required.add(element.value)
    closed = False
    extra = keys.get("additionalProperties")
    if isinstance(extra, ast.Constant) and extra.value is False:
        closed = True
    return properties, required, closed


class SchemaSyncRule(Rule):
    name = "SCH001"
    description = (
        "keys emitted by build_run_report and RUN_REPORT_SCHEMA "
        "properties must agree"
    )
    scope = "project"

    def check_project(self, project):
        emitters = list(project.units_defining_function(REPORT_FUNCTION))
        schemas = list(project.units_assigning(SCHEMA_NAME))
        if not emitters or not schemas:
            return
        report_unit, report_fn = emitters[0]
        schema_unit, schema_assign = schemas[0]
        if not isinstance(schema_assign.value, ast.Dict):
            return

        returned = None
        for node in ast.walk(report_fn):
            if isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Dict):
                returned = node.value
        if returned is None:
            yield report_unit.finding(
                self.name, report_fn,
                f"{REPORT_FUNCTION} does not return a dict literal; "
                f"SCH001 cannot check it against {SCHEMA_NAME}",
            )
            return

        constants = _module_constants(schema_unit.tree)
        yield from self._compare(
            report_unit, schema_unit, returned, schema_assign.value,
            constants, path="$",
        )

    def _compare(self, report_unit, schema_unit, emitted_node, schema_node,
                 constants, path):
        emitted = _literal_keys(emitted_node)
        level = _schema_level(schema_node, constants)
        if emitted is None or level is None:
            return
        properties, required, closed = level

        for key, value in emitted.items():
            if key not in properties:
                if closed:
                    yield report_unit.finding(
                        self.name, value,
                        f"{path}.{key} is emitted by {REPORT_FUNCTION} "
                        f"but is not a property of {SCHEMA_NAME} "
                        f"(additionalProperties is false): every "
                        f"report would fail validation",
                    )
                continue
            subschema = properties[key]
            if isinstance(value, ast.Dict) and subschema is not None:
                yield from self._compare(
                    report_unit, schema_unit, value, subschema,
                    constants, f"{path}.{key}",
                )

        for key in sorted(required - set(emitted)):
            yield report_unit.finding(
                self.name, emitted_node,
                f"{path}.{key} is required by {SCHEMA_NAME} but "
                f"{REPORT_FUNCTION} never emits it: every report "
                f"would fail validation",
            )

        for key in sorted(set(properties) - set(emitted)):
            if key not in required:
                yield schema_unit.finding(
                    self.name, schema_node,
                    f"{path}.{key} is a property of {SCHEMA_NAME} but "
                    f"{REPORT_FUNCTION} never emits it: dead schema "
                    f"(drop the property or emit the key)",
                )
