"""TNT001 — determinism taint: nondeterminism must not reach artifacts.

The reproduction's contract is that every derived artifact — plan
costs, fingerprints, cache keys, report fields — is a pure function of
(inputs, seed, configuration).  ``CLK001``/``RNG001`` ban the *sources*
syntactically in most of the tree, but a value produced legitimately
(a wall-clock duration inside ``repro.obs``, an ``os.environ`` read
inside knob plumbing) can still leak into an artifact several calls
later.  This rule tracks that flow.

Two taint kinds ride the may-analysis lattice
(:mod:`repro.lint.dataflow`, union joins):

* ``value`` — the value itself differs between runs: wall clocks
  (``time.time``, ``perf_counter``, ``wall_time``/``perf_seconds``),
  environment reads, ``id(...)``, ambient RNG (``random.*``,
  ``uuid``), ``object()`` addresses;
* ``order`` — the value's *iteration order* is unstable: ``set`` /
  ``frozenset`` construction, ``os.listdir``.  ``sorted(...)``
  sanitizes order taint (and only order taint).

Sinks are where determinism is load-bearing: arguments of
``*fingerprint*`` / ``*_key`` callees, the key argument of cache
``put/get/get_or_build/peek`` calls, ``*cost*`` callees, and subscript
stores into ``report``-named dicts.

Propagation is interprocedural: each function gets a summary —
endogenous taint of its return value, parameters that flow to its
return, parameters that reach a sink inside it — and summaries are
iterated to a fixpoint over the call graph, so a clock read three
helpers away from ``artifact_key`` is still caught.

``repro/obs/`` and ``repro/common/`` are exempt (they *are* the
sanctioned homes of clocks and env plumbing — the rule polices their
outputs' use elsewhere, not their bodies), as is ``repro/lint/``
itself (lint timings are tooling diagnostics, not run artifacts).
"""

import ast

from ..core import Rule, dotted_name
from ..dataflow import ForwardAnalysis, build_cfg

VALUE = "value"
ORDER = "order"

#: Dotted call names whose result differs between runs.
VALUE_SOURCES = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.getenv", "os.environ.get", "id",
    "uuid.uuid1", "uuid.uuid4",
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.shuffle", "random.sample",
    "random.uniform", "random.getrandbits",
})

#: Bare names that are clock reads wherever they appear — the
#: ``repro.obs`` clock API is imported relatively, so the alias map
#: cannot resolve it; the names are distinctive enough to match as-is.
CLOCK_NAMES = frozenset({"wall_time", "perf_seconds"})

#: Calls whose result has unstable iteration order.
ORDER_SOURCES = frozenset({"set", "frozenset", "os.listdir"})

SANITIZERS = frozenset({"sorted"})

CACHE_METHODS = frozenset({"put", "get", "get_or_build", "peek"})
CACHE_RECEIVER_FRAGMENTS = ("cache", "artifact")

EXEMPT_FRAGMENTS = ("repro/obs/", "repro/common/", "repro/lint/")

MAX_SUMMARY_PASSES = 6


def _taint_union(*sets):
    out = frozenset()
    for s in sets:
        out |= s
    return out


class _Summary:
    """What a function does with taint, as seen from a call site."""

    __slots__ = ("returns", "param_to_return", "param_to_sink")

    def __init__(self):
        self.returns = frozenset()   #: endogenous taint of the return
        self.param_to_return = frozenset()  #: params flowing to return
        self.param_to_sink = {}      #: param -> sink description

    def snapshot(self):
        return (self.returns, self.param_to_return,
                tuple(sorted(self.param_to_sink)))


class TaintAnalysis(ForwardAnalysis):
    """Per-function may-taint: ``{token: {kinds}}`` with union joins.

    Tokens are local names and ``self.<attr>`` chains.  Parameter
    taint is seeded by ``entry`` (used when re-analyzing a function
    under the assumption that a parameter is tainted).
    """

    def __init__(self, rule, info, entry=None):
        super().__init__()
        self.rule = rule
        self.info = info
        self.entry = dict(entry or {})

    def initial(self):
        return dict(self.entry)

    def join(self, states):
        states = [s for s in states if s is not None]
        if not states:
            return None
        merged = {}
        for state in states:
            for token, kinds in state.items():
                merged[token] = merged.get(token, frozenset()) | kinds
        return merged

    def transfer(self, op, state):
        if op.kind != "stmt":
            return state
        node = op.node
        if isinstance(node, ast.Assign):
            kinds = self.rule.expr_taint(node.value, state, self.info)
            if node.targets:
                state = dict(state)
                for target in node.targets:
                    self._store(state, target, kinds)
            return state
        if isinstance(node, ast.AugAssign):
            kinds = self.rule.expr_taint(node.value, state, self.info)
            token = _target_token(node.target)
            if token is not None:
                state = dict(state)
                state[token] = state.get(token, frozenset()) | kinds
            return state
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            kinds = self.rule.expr_taint(node.value, state, self.info)
            state = dict(state)
            self._store(state, node.target, kinds)
            return state
        if isinstance(node, (ast.For, ast.AsyncFor)):
            kinds = self.rule.expr_taint(node.iter, state, self.info)
            state = dict(state)
            self._store(state, node.target, kinds)
            return state
        return state

    def _store(self, state, target, kinds):
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._store(state, element, kinds)
            return
        token = _target_token(target)
        if token is None:
            return
        if kinds:
            state[token] = kinds
        else:
            state.pop(token, None)


def _target_token(target):
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        return dotted_name(node)
    return None


class TaintRule(Rule):
    name = "TNT001"
    description = (
        "nondeterministic values (clocks, env, id(), ambient RNG, set "
        "order) must not flow into fingerprints, cache keys, costs, or "
        "report fields"
    )
    scope = "project"

    def check_project(self, project):
        graph = project.call_graph
        self._graph = graph
        self._summaries = {
            qual: _Summary() for qual in graph.functions
        }
        self._compute_summaries(graph)
        findings = []
        for qual in sorted(graph.functions):
            info = graph.functions[qual]
            if self._exempt(info.unit):
                continue
            findings.extend(self._check_function(info))
        seen = set()
        for finding in sorted(findings):
            if finding not in seen:
                seen.add(finding)
                yield finding

    def _exempt(self, unit):
        return any(f in unit.posix for f in EXEMPT_FRAGMENTS)

    # ------------------------------------------------------------------
    # Expression taint

    def _call_name(self, call, info):
        name = dotted_name(call.func)
        if name is None:
            return None
        aliases = info.unit.aliases
        head, _, rest = name.partition(".")
        origin = aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin

    def expr_taint(self, expr, state, info):
        """The may-taint kinds of one expression under ``state``."""
        if expr is None or isinstance(expr, ast.Constant):
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            node = expr
            while isinstance(node, ast.Subscript):
                node = node.value
            token = dotted_name(node)
            kinds = state.get(token, frozenset()) if token else frozenset()
            # A tainted object taints its attributes.
            root = token.split(".")[0] if token else None
            if root and root != token:
                kinds |= state.get(root, frozenset())
            if isinstance(expr, ast.Subscript):
                kinds |= self.expr_taint(expr.slice, state, info)
            return kinds
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, state, info)
        if isinstance(expr, (ast.BinOp,)):
            return _taint_union(
                self.expr_taint(expr.left, state, info),
                self.expr_taint(expr.right, state, info),
            )
        if isinstance(expr, ast.BoolOp):
            return _taint_union(*[
                self.expr_taint(v, state, info) for v in expr.values
            ])
        if isinstance(expr, ast.UnaryOp):
            return self.expr_taint(expr.operand, state, info)
        if isinstance(expr, ast.IfExp):
            return _taint_union(
                self.expr_taint(expr.body, state, info),
                self.expr_taint(expr.orelse, state, info),
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            kinds = _taint_union(*[
                self.expr_taint(e, state, info) for e in expr.elts
            ])
            if isinstance(expr, ast.Set):
                kinds |= frozenset({ORDER})
            return kinds
        if isinstance(expr, ast.Dict):
            parts = [k for k in expr.keys if k is not None]
            parts += expr.values
            return _taint_union(*[
                self.expr_taint(e, state, info) for e in parts
            ])
        if isinstance(expr, ast.JoinedStr):
            return _taint_union(*[
                self.expr_taint(v.value, state, info)
                for v in expr.values
                if isinstance(v, ast.FormattedValue)
            ])
        if isinstance(expr, ast.Compare):
            return frozenset()    # booleans of tainted data stay clean
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            kinds = frozenset()
            for gen in expr.generators:
                kinds |= self.expr_taint(gen.iter, state, info)
            if isinstance(expr, ast.SetComp):
                kinds |= frozenset({ORDER})
            return kinds
        if isinstance(expr, ast.Starred):
            return self.expr_taint(expr.value, state, info)
        return frozenset()

    def _call_taint(self, call, state, info):
        name = self._call_name(call, info)
        arg_taints = [
            self.expr_taint(a, state, info) for a in call.args
        ] + [
            self.expr_taint(k.value, state, info) for k in call.keywords
        ]
        if name in SANITIZERS:
            return _taint_union(*arg_taints) - frozenset({ORDER})
        if name is not None:
            if name in VALUE_SOURCES:
                return frozenset({VALUE})
            if name in ORDER_SOURCES:
                return frozenset({ORDER}) | _taint_union(*arg_taints)
            if name.split(".")[-1] in CLOCK_NAMES:
                return frozenset({VALUE})
        # Resolved project callee: apply its summary.
        callee = self._resolved_callee(call, info)
        if callee is not None:
            summary = self._summaries.get(callee.qualname)
            if summary is not None:
                kinds = summary.returns
                for param, taint in self._bound_args(
                        call, callee, state, info):
                    if param in summary.param_to_return:
                        kinds |= taint
                return kinds
        # Unresolved call: assume taint flows through.
        return _taint_union(*arg_taints)

    def _resolved_callee(self, call, info):
        for site in info.calls:
            if site.node is call and site.kind != "submit":
                return self._graph.functions.get(site.callee)
        return None

    def _bound_args(self, call, callee, state, info):
        params = callee.params
        offset = 1 if callee.class_name is not None and params \
            and params[0] in ("self", "cls") else 0
        for position, arg in enumerate(call.args):
            index = position + offset
            if index < len(params):
                yield params[index], self.expr_taint(arg, state, info)
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in params:
                yield keyword.arg, self.expr_taint(
                    keyword.value, state, info
                )

    # ------------------------------------------------------------------
    # Sinks

    def _sink_of(self, call, info):
        """``(description, key-args)`` when ``call`` is a sink."""
        name = self._call_name(call, info)
        if name is None:
            return None
        tail = name.split(".")[-1]
        if "fingerprint" in tail or tail.endswith("_key"):
            return (f"{tail}()", list(call.args)
                    + [k.value for k in call.keywords])
        if tail in CACHE_METHODS and isinstance(call.func, ast.Attribute):
            receiver = (dotted_name(call.func.value) or "").lower()
            if any(f in receiver for f in CACHE_RECEIVER_FRAGMENTS):
                # Key arguments only: ``put``/``get_or_build`` take
                # ``(kind, key, ...)``; dict-style ``get``/``peek``
                # take ``(key, default)`` and the default — often an
                # ``object()`` sentinel — is not part of the key.
                count = 2 if tail in ("put", "get_or_build") else 1
                return (f"{receiver}.{tail}() key",
                        list(call.args[:count]))
        if "cost" in tail and tail not in ("cost_report",):
            return (f"{tail}()", list(call.args)
                    + [k.value for k in call.keywords])
        return None

    def _report_store(self, stmt):
        """A ``report[...] = value`` style subscript store, if any."""
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not isinstance(target, ast.Subscript):
            return None
        base = dotted_name(target.value) or ""
        if "report" in base.split(".")[-1].lower():
            return base
        return None

    # ------------------------------------------------------------------
    # Summaries and checking

    def _analyze(self, info, entry=None):
        analysis = TaintAnalysis(self, info, entry)
        cfg = build_cfg(info.node)
        analysis.run(cfg)
        return analysis

    def _compute_summaries(self, graph):
        for _ in range(MAX_SUMMARY_PASSES):
            changed = False
            for qual in sorted(graph.functions):
                info = graph.functions[qual]
                summary = self._summaries[qual]
                old = summary.snapshot()
                self._summarize(info, summary)
                if summary.snapshot() != old:
                    changed = True
            if not changed:
                break

    def _summarize(self, info, summary):
        # Endogenous pass: no parameter taint.
        analysis = self._analyze(info)
        returns = frozenset()
        for op, state in analysis.before.items():
            if op.kind != "stmt" or state is None:
                continue
            node = op.node
            if isinstance(node, ast.Return) and node.value is not None:
                returns |= self.expr_taint(node.value, state, info)
        summary.returns |= returns
        # Parameter passes: taint one param, see where it goes.
        params = [p for p in info.params if p not in ("self", "cls")]
        for param in params:
            if param in summary.param_to_return \
                    and param in summary.param_to_sink:
                continue
            seeded = self._analyze(
                info, entry={param: frozenset({VALUE, ORDER})}
            )
            for op, state in seeded.before.items():
                if op.kind != "stmt" or state is None:
                    continue
                node = op.node
                if isinstance(node, ast.Return) \
                        and node.value is not None:
                    extra = self.expr_taint(node.value, state, info) \
                        - summary.returns
                    if extra:
                        summary.param_to_return |= frozenset({param})
                for call in ast.walk(node):
                    if not isinstance(call, ast.Call):
                        continue
                    sink = self._sink_of(call, info)
                    if sink is None:
                        continue
                    for key in sink[1]:
                        if self.expr_taint(key, state, info):
                            summary.param_to_sink.setdefault(
                                param, sink[0]
                            )

    def _check_function(self, info):
        analysis = self._analyze(info)
        for op in sorted(
                analysis.before, key=lambda o: (
                    getattr(o.node, "lineno", 0),
                    getattr(o.node, "col_offset", 0))):
            state = analysis.before[op]
            if op.kind not in ("stmt", "test") or state is None:
                continue
            node = op.node
            if op.kind == "test":
                for call in ast.walk(node):
                    if isinstance(call, ast.Call):
                        yield from self._check_call(call, state, info)
                continue
            store = self._report_store(node)
            if store is not None:
                kinds = self.expr_taint(node.value, state, info)
                if kinds:
                    yield info.unit.finding(
                        self.name, node,
                        f"nondeterministic value "
                        f"({', '.join(sorted(kinds))} taint) stored "
                        f"into report field {store!r}; derive report "
                        f"fields from seeds and inputs only",
                    )
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                yield from self._check_call(call, state, info)

    def _check_call(self, call, state, info):
        sink = self._sink_of(call, info)
        if sink is not None:
            for key in sink[1]:
                kinds = self.expr_taint(key, state, info)
                if kinds:
                    yield info.unit.finding(
                        self.name, call,
                        f"nondeterministic value "
                        f"({', '.join(sorted(kinds))} taint) flows "
                        f"into {sink[0]}; artifacts must be pure "
                        f"functions of inputs, seed and configuration",
                    )
                    break
        callee = self._resolved_callee(call, info)
        if callee is None or self._exempt(callee.unit):
            return
        summary = self._summaries.get(callee.qualname)
        if summary is None or not summary.param_to_sink:
            return
        for param, taint in self._bound_args(call, callee, state, info):
            sink_name = summary.param_to_sink.get(param)
            if sink_name and taint:
                yield info.unit.finding(
                    self.name, call,
                    f"nondeterministic value "
                    f"({', '.join(sorted(taint))} taint) passed to "
                    f"{callee.node.name}({param}=...) reaches "
                    f"{sink_name} inside it; artifacts must be pure "
                    f"functions of inputs, seed and configuration",
                )
