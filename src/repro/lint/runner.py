"""The lint driver: collect files, run rules, filter, render.

One :func:`run_lint` call is one lint run: parse every ``.py`` file
under the given paths, run the selected file-scope rules per file and
project-scope rules once, drop findings silenced by suppression
comments, then subtract the baseline.  The result object carries
everything the CLI (and the tests) need — surviving findings, the
suppressed/baselined/stale counts, and per-file parse errors (reported
as ``PARSE`` findings so a syntactically-broken file fails the run
instead of silently skipping its rules).
"""

import ast
import os
from dataclasses import dataclass, field

from .baseline import apply_baseline, load_baseline
from .core import FileUnit, Finding, Project
from .rules import ALL_RULES
from .suppress import parse_suppressions

PARSE_RULE = "PARSE"

LINT_REPORT_SCHEMA_ID = "repro.lint/v1"

#: Shape of the ``--format json`` document (validated in the tests with
#: :func:`repro.obs.schemas.validate_instance`).
LINT_REPORT_SCHEMA = {
    "type": "object",
    "required": ["schema", "summary", "findings"],
    "properties": {
        "schema": {"enum": [LINT_REPORT_SCHEMA_ID]},
        "summary": {
            "type": "object",
            "required": ["files", "rules", "findings", "suppressed",
                         "baselined", "stale_baseline_entries"],
            "properties": {
                "files": {"type": "integer", "minimum": 0},
                "rules": {"type": "array", "items": {"type": "string"}},
                "findings": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
                "baselined": {"type": "integer", "minimum": 0},
                "stale_baseline_entries": {
                    "type": "integer", "minimum": 0,
                },
            },
            "additionalProperties": False,
        },
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rule", "path", "line", "col", "message"],
                "properties": {
                    "rule": {"type": "string"},
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "col": {"type": "integer", "minimum": 1},
                    "message": {"type": "string"},
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list = field(default_factory=list)
    files: int = 0
    rules: tuple = ()
    suppressed: int = 0
    baselined: int = 0
    stale_baseline_entries: int = 0

    @property
    def ok(self):
        return not self.findings

    def to_json(self):
        """The ``--format json`` document (schema ``repro.lint/v1``)."""
        return {
            "schema": LINT_REPORT_SCHEMA_ID,
            "summary": {
                "files": self.files,
                "rules": sorted(self.rules),
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline_entries": self.stale_baseline_entries,
            },
            "findings": [f.to_json() for f in self.findings],
        }

    def render_text(self):
        """Human-oriented multi-line rendering (the default output)."""
        lines = [f.render() for f in self.findings]
        tail = (
            f"{len(self.findings)} finding(s) in {self.files} file(s)"
        )
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.stale_baseline_entries:
            extras.append(
                f"{self.stale_baseline_entries} stale baseline entries"
            )
        if extras:
            tail += " (" + ", ".join(extras) + ")"
        lines.append(tail)
        return "\n".join(lines)


def collect_files(paths):
    """Every ``.py`` file under ``paths`` (dirs recursed, sorted)."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            files.append(path)
    return files


def run_lint(paths, rules=None, baseline_path=None, root=None):
    """Run the linter; returns a :class:`LintResult`.

    Args:
        paths: files and/or directories to lint.
        rules: rule ids to run (default: every registered rule).
        baseline_path: optional baseline file to subtract.
        root: directory findings are reported relative to (default:
            the current working directory).

    Raises:
        KeyError: an unknown rule id in ``rules``.
        OSError / ValueError: unreadable or malformed baseline.
    """
    selected = list(ALL_RULES) if rules is None else list(rules)
    for rule_id in selected:
        if rule_id not in ALL_RULES:
            raise KeyError(rule_id)
    root = os.getcwd() if root is None else root

    units = []
    findings = []
    suppressions = {}
    for file_path in collect_files(paths):
        rel = os.path.relpath(file_path, root)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=file_path)
        except (OSError, SyntaxError, ValueError) as err:
            findings.append(Finding(
                path=rel.replace("\\", "/"),
                line=getattr(err, "lineno", None) or 1,
                col=1,
                rule=PARSE_RULE,
                message=f"file cannot be linted: {err}",
            ))
            continue
        unit = FileUnit(file_path, rel, source, tree)
        suppressions[unit.posix] = parse_suppressions(source)
        units.append(unit)

    file_rules = [
        ALL_RULES[r] for r in selected if ALL_RULES[r].scope == "file"
    ]
    project_rules = [
        ALL_RULES[r] for r in selected if ALL_RULES[r].scope == "project"
    ]
    for unit in units:
        for rule in file_rules:
            findings.extend(rule.check_file(unit))
    project = Project(units)
    for rule in project_rules:
        findings.extend(rule.check_project(project))

    kept, suppressed = [], 0
    for finding in sorted(findings):
        filters = suppressions.get(finding.path)
        if filters is not None and finding.rule != PARSE_RULE \
                and filters.is_suppressed(finding):
            suppressed += 1
        else:
            kept.append(finding)

    baselined = stale = 0
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        kept, baselined, stale = apply_baseline(kept, baseline)

    return LintResult(
        findings=kept,
        files=len(units),
        rules=tuple(selected),
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline_entries=stale,
    )
