"""The lint driver: collect files, run rules, filter, render.

One :func:`run_lint` call is one lint run: parse every ``.py`` file
under the given paths, run the selected file-scope rules per file and
project-scope rules once, drop findings silenced by suppression
comments, then subtract the baseline.  The result object carries
everything the CLI (and the tests) need — surviving findings, the
suppressed/baselined/stale counts, and per-file parse errors (reported
as ``PARSE`` findings so a syntactically-broken file fails the run
instead of silently skipping its rules).

The per-file phase (parse + file-scope rules + suppression scan) is
embarrassingly parallel and runs on a thread pool (``jobs``; default
``os.cpu_count()``).  Files are processed shared-nothing and results
are collected in submission order, then globally sorted — the output
is byte-identical for every ``jobs`` value.  Wall-clock per phase is
recorded via :func:`repro.obs.perf_seconds` and exposed when
``timings=True`` (the CLI's ``--timings``).
"""

import ast
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..obs import perf_seconds
from .baseline import apply_baseline, load_baseline
from .core import FileUnit, Finding, Project
from .rules import ALL_RULES
from .suppress import parse_suppressions

PARSE_RULE = "PARSE"

#: CPython 3.11 keeps the AST constructor's recursion-depth accounting in
#: interpreter-global state, so concurrent ``ast.parse`` calls from threads
#: at different stack depths can die with ``SystemError: AST constructor
#: recursion depth mismatch``.  Parsing is a small slice of lint time (the
#: rule traversals dominate and stay parallel), so serialize it.
_AST_PARSE_LOCK = threading.Lock()

LINT_REPORT_SCHEMA_ID = "repro.lint/v1"

#: Shape of the ``--format json`` document (validated in the tests with
#: :func:`repro.obs.schemas.validate_instance`).
LINT_REPORT_SCHEMA = {
    "type": "object",
    "required": ["schema", "summary", "findings"],
    "properties": {
        "schema": {"enum": [LINT_REPORT_SCHEMA_ID]},
        "summary": {
            "type": "object",
            "required": ["files", "rules", "findings", "suppressed",
                         "baselined", "stale_baseline_entries"],
            "properties": {
                "files": {"type": "integer", "minimum": 0},
                "rules": {"type": "array", "items": {"type": "string"}},
                "findings": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
                "baselined": {"type": "integer", "minimum": 0},
                "stale_baseline_entries": {
                    "type": "integer", "minimum": 0,
                },
            },
            "additionalProperties": False,
        },
        "timings": {
            # Present only when the run was asked to time itself
            # (``--timings``): wall seconds per phase plus the worker
            # count.  Values vary run to run by construction, so they
            # are excluded from byte-stability comparisons.
            "type": "object",
            "required": ["total_s", "files_s", "project_s", "jobs"],
            "properties": {
                "total_s": {"type": "number", "minimum": 0},
                "files_s": {"type": "number", "minimum": 0},
                "project_s": {"type": "number", "minimum": 0},
                "jobs": {"type": "integer", "minimum": 1},
                "per_project_rule_s": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "number", "minimum": 0,
                    },
                },
            },
            "additionalProperties": False,
        },
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rule", "path", "line", "col", "message"],
                "properties": {
                    "rule": {"type": "string"},
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "col": {"type": "integer", "minimum": 1},
                    "message": {"type": "string"},
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list = field(default_factory=list)
    files: int = 0
    rules: tuple = ()
    suppressed: int = 0
    baselined: int = 0
    stale_baseline_entries: int = 0
    timings: dict = None

    @property
    def ok(self):
        return not self.findings

    def to_json(self):
        """The ``--format json`` document (schema ``repro.lint/v1``)."""
        document = {
            "schema": LINT_REPORT_SCHEMA_ID,
            "summary": {
                "files": self.files,
                "rules": sorted(self.rules),
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline_entries": self.stale_baseline_entries,
            },
            "findings": [f.to_json() for f in self.findings],
        }
        if self.timings is not None:
            document["timings"] = self.timings
        return document

    def to_sarif(self):
        """The ``--format sarif`` document (SARIF 2.1.0).

        One run, one driver; every selected rule is listed so viewers
        can show descriptions even for rules with zero results.
        """
        rule_ids = sorted(set(self.rules) | {
            f.rule for f in self.findings
        })
        sarif_rules = []
        for rule_id in rule_ids:
            rule = ALL_RULES.get(rule_id)
            entry = {"id": rule_id}
            if rule is not None:
                entry["shortDescription"] = {"text": rule.description}
            sarif_rules.append(entry)
        results = []
        for finding in self.findings:
            results.append({
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    },
                }],
            })
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri":
                            "docs/static-analysis.md",
                        "rules": sarif_rules,
                    },
                },
                "results": results,
            }],
        }

    def render_text(self):
        """Human-oriented multi-line rendering (the default output)."""
        lines = [f.render() for f in self.findings]
        tail = (
            f"{len(self.findings)} finding(s) in {self.files} file(s)"
        )
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.stale_baseline_entries:
            extras.append(
                f"{self.stale_baseline_entries} stale baseline entries"
            )
        if extras:
            tail += " (" + ", ".join(extras) + ")"
        lines.append(tail)
        if self.timings is not None:
            per_rule = ", ".join(
                f"{name} {secs:.3f}s" for name, secs in sorted(
                    self.timings.get("per_project_rule_s", {}).items()
                )
            )
            line = (
                f"timing: total {self.timings['total_s']:.3f}s, "
                f"files {self.timings['files_s']:.3f}s, "
                f"project {self.timings['project_s']:.3f}s "
                f"({self.timings['jobs']} job(s))"
            )
            if per_rule:
                line += f" [{per_rule}]"
            lines.append(line)
        return "\n".join(lines)


def collect_files(paths):
    """Every ``.py`` file under ``paths`` (dirs recursed, sorted)."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            files.append(path)
    return files


def _lint_one_file(file_path, root, file_rules):
    """Parse and file-rule one file (runs on the worker pool).

    Returns ``(unit_or_None, findings, suppressions_or_None)`` —
    shared-nothing, so any number of these can run concurrently.
    """
    rel = os.path.relpath(file_path, root)
    try:
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        with _AST_PARSE_LOCK:
            tree = ast.parse(source, filename=file_path)
    except (OSError, SyntaxError, ValueError) as err:
        finding = Finding(
            path=rel.replace("\\", "/"),
            line=getattr(err, "lineno", None) or 1,
            col=1,
            rule=PARSE_RULE,
            message=f"file cannot be linted: {err}",
        )
        return None, [finding], None
    unit = FileUnit(file_path, rel, source, tree)
    filters = parse_suppressions(source, tree)
    findings = []
    for rule in file_rules:
        findings.extend(rule.check_file(unit))
    return unit, findings, filters


def run_lint(paths, rules=None, baseline_path=None, root=None,
             jobs=None, timings=False):
    """Run the linter; returns a :class:`LintResult`.

    Args:
        paths: files and/or directories to lint.
        rules: rule ids to run (default: every registered rule).
        baseline_path: optional baseline file to subtract.
        root: directory findings are reported relative to (default:
            the current working directory).
        jobs: worker threads for the per-file phase (default:
            ``os.cpu_count()``); findings are globally sorted, so the
            output does not depend on this.
        timings: record per-phase wall clock in ``result.timings``.

    Raises:
        KeyError: an unknown rule id in ``rules``.
        OSError / ValueError: unreadable or malformed baseline.
    """
    started = perf_seconds()
    selected = list(ALL_RULES) if rules is None else list(rules)
    for rule_id in selected:
        if rule_id not in ALL_RULES:
            raise KeyError(rule_id)
    root = os.getcwd() if root is None else root
    file_rules = [
        ALL_RULES[r] for r in selected if ALL_RULES[r].scope == "file"
    ]
    project_rules = [
        ALL_RULES[r] for r in selected if ALL_RULES[r].scope == "project"
    ]

    files = collect_files(paths)
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(int(jobs), len(files) or 1))

    files_started = perf_seconds()
    if jobs == 1:
        per_file = [
            _lint_one_file(path, root, file_rules) for path in files
        ]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            # ``map`` yields in submission order, so the unit list —
            # and with it every downstream pass — is independent of
            # worker scheduling.
            per_file = list(pool.map(
                lambda path: _lint_one_file(path, root, file_rules),
                files,
            ))
    units = []
    findings = []
    suppressions = {}
    for unit, file_findings, filters in per_file:
        findings.extend(file_findings)
        if unit is not None:
            units.append(unit)
            suppressions[unit.posix] = filters
    files_elapsed = perf_seconds() - files_started

    project = Project(units, root=root)
    per_rule = {}
    project_started = perf_seconds()
    for rule in project_rules:
        rule_started = perf_seconds()
        findings.extend(rule.check_project(project))
        per_rule[rule.name] = round(perf_seconds() - rule_started, 6)
    project_elapsed = perf_seconds() - project_started

    kept, suppressed = [], 0
    for finding in sorted(findings):
        filters = suppressions.get(finding.path)
        if filters is not None and finding.rule != PARSE_RULE \
                and filters.is_suppressed(finding):
            suppressed += 1
        else:
            kept.append(finding)

    baselined = stale = 0
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        kept, baselined, stale = apply_baseline(kept, baseline)

    timing_data = None
    if timings:
        timing_data = {
            "total_s": round(perf_seconds() - started, 6),
            "files_s": round(files_elapsed, 6),
            "project_s": round(project_elapsed, 6),
            "per_project_rule_s": per_rule,
            "jobs": jobs,
        }

    return LintResult(
        findings=kept,
        files=len(units),
        rules=tuple(selected),
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline_entries=stale,
        timings=timing_data,
    )
