"""Suppression comments: silencing a finding at its source line.

Two forms, mirroring the usual linter conventions:

* ``# repro-lint: disable=RULE1,RULE2`` on the offending line silences
  those rules for that line only;
* ``# repro-lint: disable-file=RULE1,RULE2`` anywhere in a file
  silences those rules for the whole file.

``disable=all`` (or ``disable-file=all``) silences every rule.  A
suppression is the *reviewed* escape hatch — grandfathered findings
that nobody has reviewed belong in the baseline instead (see
:mod:`repro.lint.baseline`).
"""

import re

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

ALL = "all"


class Suppressions:
    """Parsed suppression directives of one source file."""

    def __init__(self, line_rules, file_rules):
        self._line_rules = line_rules
        self._file_rules = file_rules

    def is_suppressed(self, finding):
        """Whether ``finding`` is silenced by a directive."""
        for rules in (self._file_rules,
                      self._line_rules.get(finding.line, ())):
            if ALL in rules or finding.rule in rules:
                return True
        return False

    @property
    def count_directives(self):
        return len(self._line_rules) + (1 if self._file_rules else 0)


def parse_suppressions(source):
    """Scan ``source`` for directives; returns a :class:`Suppressions`.

    Directives are matched textually per line, so one inside a string
    literal would also count — acceptable for a project-internal tool,
    and it keeps the scan independent of tokenization errors.
    """
    line_rules = {}
    file_rules = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(line)
        if not match:
            continue
        kind, spec = match.groups()
        rules = {r.strip() for r in spec.split(",") if r.strip()}
        if kind == "disable-file":
            file_rules |= rules
        else:
            line_rules.setdefault(lineno, set()).update(rules)
    return Suppressions(line_rules, file_rules)
