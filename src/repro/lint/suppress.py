"""Suppression comments: silencing a finding at its source line.

Two forms, mirroring the usual linter conventions:

* ``# repro-lint: disable=RULE1,RULE2`` on the offending line silences
  those rules for that line only;
* ``# repro-lint: disable-file=RULE1,RULE2`` anywhere in a file
  silences those rules for the whole file.

``disable=all`` (or ``disable-file=all``) silences every rule.  A
suppression is the *reviewed* escape hatch — grandfathered findings
that nobody has reviewed belong in the baseline instead (see
:mod:`repro.lint.baseline`).

A directive covers the whole *statement* it sits on, not just its
physical line: on the first line of a multi-line call it also silences
findings anchored inside the parenthesized continuation, and on a
decorator line (or the ``def`` line of a decorated function) it covers
the decorated definition.  This needs the parsed tree, so
:func:`parse_suppressions` takes it as an optional second argument;
without a tree the match stays strictly per-line.
"""

import ast
import re

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

ALL = "all"


class Suppressions:
    """Parsed suppression directives of one source file."""

    def __init__(self, line_rules, file_rules):
        self._line_rules = line_rules
        self._file_rules = file_rules

    def is_suppressed(self, finding):
        """Whether ``finding`` is silenced by a directive."""
        for rules in (self._file_rules,
                      self._line_rules.get(finding.line, ())):
            if ALL in rules or finding.rule in rules:
                return True
        return False

    @property
    def count_directives(self):
        return len(self._line_rules) + (1 if self._file_rules else 0)


#: Statements whose first-line directive extends over the whole span
#: (the multi-line call / literal case).
_SIMPLE_STMTS = (
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return,
    ast.Raise, ast.Assert, ast.Delete,
)


def parse_suppressions(source, tree=None):
    """Scan ``source`` for directives; returns a :class:`Suppressions`.

    Directives are matched textually per line, so one inside a string
    literal would also count — acceptable for a project-internal tool,
    and it keeps the scan independent of tokenization errors.  When
    ``tree`` is given, directives are widened from lines to statement
    spans (see the module docstring).
    """
    line_rules = {}
    file_rules = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(line)
        if not match:
            continue
        kind, spec = match.groups()
        rules = {r.strip() for r in spec.split(",") if r.strip()}
        if kind == "disable-file":
            file_rules |= rules
        else:
            line_rules.setdefault(lineno, set()).update(rules)
    if tree is not None and line_rules:
        _expand_statement_spans(tree, line_rules)
    return Suppressions(line_rules, file_rules)


def _expand_statement_spans(tree, line_rules):
    """Widen first-line / decorator-line directives to statement spans."""
    for node in ast.walk(tree):
        end = getattr(node, "end_lineno", None)
        if end is None:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node.decorator_list:
            # The directive may sit on any decorator line or on the
            # signature itself; either way the user means "this
            # definition".
            first = node.decorator_list[0].lineno
            header_end = node.body[0].lineno - 1 if node.body else end
            _widen(line_rules, range(first, header_end + 1),
                   range(first, end + 1))
        elif isinstance(node, _SIMPLE_STMTS) and end > node.lineno:
            _widen(line_rules, (node.lineno,),
                   range(node.lineno, end + 1))


def _widen(line_rules, directive_lines, span):
    rules = set()
    for lineno in directive_lines:
        rules |= line_rules.get(lineno, set())
    if not rules:
        return
    for lineno in span:
        line_rules.setdefault(lineno, set()).update(rules)
