"""repro.obs — the observability layer.

First-class instrumentation for the whole measurement pipeline:

* **spans** (:mod:`repro.obs.spans`) — hierarchical timed regions
  carrying wall-clock *and* virtual-clock time (``db.execute``,
  ``session.measure``, ``bench.recommend``, …);
* **metrics** (:mod:`repro.obs.metrics`) — a thread-safe registry of
  counters/gauges/histograms fed by the engine (rows scanned, pages
  read), the optimizer (plans enumerated, what-if calls, hypothetical
  index probes), and the runtime caches (hits/misses/evictions);
* **recorders** (:mod:`repro.obs.recorder`) — the dispatch point.  A
  :class:`NullRecorder` is installed by default, making every
  instrumentation site a no-op: observability is strictly zero-cost and
  side-effect-free when disabled, which is what keeps traced and
  untraced bench runs byte-identical.  Install a :class:`TraceRecorder`
  (usually via :func:`recording`) to collect spans, events, and metrics;
* **exports** — a JSONL trace (:meth:`TraceRecorder.write_trace`) and a
  structured per-run report (:mod:`repro.obs.report`), both validated
  against pinned schemas (:mod:`repro.obs.schemas`,
  ``python -m repro.obs.validate``).

The bench CLI exposes all of it as ``--trace FILE``, ``--metrics`` and
``--report FILE``; see ``docs/observability.md`` for the span/metric
vocabulary and the file schemas.
"""

from .clock import perf_seconds, wall_time
from .metrics import MetricsRegistry
from .recorder import (
    NullRecorder,
    TraceRecorder,
    counter_add,
    event,
    gauge_set,
    get_recorder,
    install,
    is_enabled,
    observe,
    recording,
    span,
)
from .report import (
    REPORT_SCHEMA_ID,
    build_run_report,
    canonicalize_run_report,
    render_metrics,
    render_text,
    write_report,
)
from .schemas import (
    BENCH_ENCODING_SCHEMA,
    BENCH_LATEMAT_SCHEMA,
    BENCH_MULTIQUERY_SCHEMA,
    BENCH_SHARDING_SCHEMA,
    BENCH_WHATIF_SCHEMA,
    EVENT_RECORD_SCHEMA,
    RUN_REPORT_SCHEMA,
    SPAN_RECORD_SCHEMA,
    SchemaError,
    validate_bench_encoding,
    validate_bench_latemat,
    validate_bench_multiquery,
    validate_bench_sharding,
    validate_bench_whatif,
    validate_run_report,
    validate_trace_record,
)
from .spans import Span

__all__ = [
    "BENCH_ENCODING_SCHEMA",
    "BENCH_LATEMAT_SCHEMA",
    "BENCH_MULTIQUERY_SCHEMA",
    "BENCH_SHARDING_SCHEMA",
    "BENCH_WHATIF_SCHEMA",
    "EVENT_RECORD_SCHEMA",
    "MetricsRegistry",
    "NullRecorder",
    "REPORT_SCHEMA_ID",
    "RUN_REPORT_SCHEMA",
    "SPAN_RECORD_SCHEMA",
    "SchemaError",
    "Span",
    "TraceRecorder",
    "build_run_report",
    "canonicalize_run_report",
    "counter_add",
    "event",
    "gauge_set",
    "get_recorder",
    "install",
    "is_enabled",
    "observe",
    "perf_seconds",
    "recording",
    "render_metrics",
    "render_text",
    "span",
    "validate_bench_encoding",
    "validate_bench_latemat",
    "validate_bench_multiquery",
    "validate_bench_sharding",
    "validate_bench_whatif",
    "validate_run_report",
    "validate_trace_record",
    "wall_time",
    "write_report",
]
