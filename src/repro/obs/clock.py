"""The one place real time enters the system.

The engine's clock is *virtual* — every elapsed second a figure reports
is computed from the cost model, which is what makes parallel runs
byte-identical to serial ones.  Wall-clock reads exist only to describe
the run itself (stage timings, span durations, console progress), and
they all go through these two helpers so the lint rule ``CLK001`` can
confine direct ``time.*`` access to ``repro.obs``.  Nothing read from
this module may influence a result: if a value derived from it ever
feeds a cost, a cache key, or an ordering decision, determinism is
gone.
"""

import time


def wall_time():
    """Seconds since the epoch (``time.time``) — timestamps only."""
    return time.time()


def perf_seconds():
    """A monotonic high-resolution reading (``time.perf_counter``).

    Differences of two readings give wall durations for stage timings
    and tracing spans.
    """
    return time.perf_counter()
