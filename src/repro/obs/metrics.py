"""The metrics registry: counters, gauges, and log-bucket histograms.

A :class:`MetricsRegistry` is a flat, thread-safe namespace of named
instruments.  Producers never hold instrument objects — they call
``registry.counter_add("engine.rows_scanned", n)`` and the registry
creates the counter on first touch.  That keeps the instrumentation
sites trivial (one line, no setup) and makes the whole registry
serializable as a single :meth:`MetricsRegistry.snapshot` dict, which is
what the run report embeds.

Metric names are dotted paths: the first segment is the producing layer
(``engine``, ``optimizer``, ``cache``, ``session``, ``recommender``,
``artifact``), documented in ``docs/observability.md``.
"""

import math
import threading

# Histogram buckets are powers of ten; values outside this exponent range
# are clamped into the edge buckets so the bucket set is fixed and small.
_MIN_EXP = -6
_MAX_EXP = 6


class _Histogram:
    """Count/sum/min/max plus decade (log10) bucket counts."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets = {}

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        if value <= 0:
            exp = _MIN_EXP - 1          # dedicated "<= 0" bucket
        else:
            exp = min(_MAX_EXP, max(_MIN_EXP, math.floor(math.log10(value))))
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    def snapshot(self):
        labelled = {}
        for exp in sorted(self.buckets):
            if exp < _MIN_EXP:
                label = "<=0"
            else:
                label = f"[1e{exp},1e{exp + 1})"
            labelled[label] = self.buckets[exp]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": labelled,
        }


class MetricsRegistry:
    """A thread-safe, create-on-first-touch registry of named metrics.

    Three instrument kinds are supported:

    * **counters** — monotonically increasing integers
      (:meth:`counter_add`);
    * **gauges** — last-write-wins numbers (:meth:`gauge_set`);
    * **histograms** — decade-bucketed distributions of observed values
      (:meth:`observe`), used for per-query virtual seconds.

    All mutations take one shared lock, so a :class:`MetricsRegistry`
    may be fed concurrently by every worker of a ``REPRO_JOBS`` pool;
    counter totals are exact regardless of interleaving.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def counter_add(self, name, value=1):
        """Add ``value`` (default 1) to the counter called ``name``.

        Args:
            name: dotted metric name, e.g. ``"engine.rows_scanned"``.
            value: non-negative increment (coerced to ``int`` so numpy
                integers from the executor stay JSON-serializable).
        """
        value = int(value)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter_value(self, name):
        """Current value of a counter (0 when it was never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_set(self, name, value):
        """Set the gauge called ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name, value):
        """Record one observation into the histogram called ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(value)

    def snapshot(self):
        """A plain-dict copy of every instrument.

        Returns:
            ``{"counters": {name: int}, "gauges": {name: number},
            "histograms": {name: {count, sum, min, max, buckets}}}`` —
            the exact shape embedded in the run report's ``metrics``
            block (see ``docs/observability.md``).
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.snapshot()
                    for name, h in self._histograms.items()
                },
            }
