"""Recorders: where instrumentation calls go.

The whole observability layer funnels through one process-global
*recorder*.  Two implementations exist:

* :class:`NullRecorder` — the default.  Every method is a ``pass`` and
  :meth:`NullRecorder.span` returns a shared no-op context manager, so
  instrumentation sites cost one attribute lookup and one call when
  observability is off.  Nothing is allocated, nothing is locked, and —
  crucially for the fig3 byte-identity smoke — nothing can perturb the
  virtual clock or any result.
* :class:`TraceRecorder` — collects finished :class:`~repro.obs.spans.Span`
  trees, ordered events, and a :class:`~repro.obs.metrics.MetricsRegistry`,
  and can export the lot as JSONL (:meth:`TraceRecorder.write_trace`).

Instrumented code never imports a recorder class; it calls the
module-level helpers (:func:`span`, :func:`counter_add`, :func:`event`,
…) which dispatch to whatever recorder is installed *at call time*.
Install one with :func:`install` or, preferably, the :func:`recording`
context manager which restores the previous recorder on exit (what the
bench CLI and the tests use).
"""

import itertools
import json
import threading
from contextlib import contextmanager

from .clock import perf_seconds, wall_time
from .metrics import MetricsRegistry
from .spans import Span


class _NullSpanHandle:
    """Reusable, stateless no-op stand-in for an open span."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpanHandle()


class NullRecorder:
    """The disabled recorder: every instrumentation call is a no-op.

    ``enabled`` is ``False`` so rare call sites that would do real work
    just to *prepare* observability data (e.g. serializing a per-query
    cost list) can skip it entirely.
    """

    enabled = False

    def span(self, name, **attrs):
        """A no-op context manager (one shared instance, never allocates)."""
        return _NULL_SPAN

    def counter_add(self, name, value=1):
        pass

    def gauge_set(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def event(self, kind, /, **payload):
        pass


class _SpanHandle:
    """Context manager that opens/closes one span on a TraceRecorder."""

    __slots__ = ("_recorder", "_span", "_t0")

    def __init__(self, recorder, name, attrs):
        self._recorder = recorder
        self._span = Span(
            span_id=0,              # assigned at __enter__
            parent_id=None,
            name=name,
            start=0.0,
            attrs=dict(attrs),
        )
        self._t0 = 0.0

    def __enter__(self):
        recorder = self._recorder
        stack = recorder._stack()
        span = self._span
        span.span_id = next(recorder._ids)
        span.parent_id = stack[-1].span_id if stack else None
        span.start = wall_time()
        stack.append(span)
        self._t0 = perf_seconds()
        return span

    def __exit__(self, *exc_info):
        span = self._span
        span.wall_s = perf_seconds() - self._t0
        stack = self._recorder._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._recorder._finish(span)
        return False


class TraceRecorder:
    """Collects spans, events, and metrics for one observed run.

    The recorder is thread-safe: span parentage is tracked per thread
    (each ``REPRO_JOBS`` worker grows its own span tree), while span
    ids, the finished-span list, the event log, and the metrics registry
    are shared under locks.

    Attributes:
        metrics: the run's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    enabled = True

    def __init__(self):
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._event_seq = itertools.count(1)
        self._finished = []
        self._events = []
        self._local = threading.local()

    # -- span plumbing --------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span):
        with self._lock:
            self._finished.append(span)

    def span(self, name, **attrs):
        """Open a span named ``name`` when entered as a context manager.

        Args:
            name: dotted span name (``"db.execute"``, …).
            **attrs: initial attributes; the yielded
                :class:`~repro.obs.spans.Span` accepts more via ``set``.

        Returns:
            A context manager yielding the open span.
        """
        return _SpanHandle(self, name, attrs)

    # -- metrics --------------------------------------------------------

    def counter_add(self, name, value=1):
        self.metrics.counter_add(name, value)

    def gauge_set(self, name, value):
        self.metrics.gauge_set(name, value)

    def observe(self, name, value):
        self.metrics.observe(name, value)

    # -- events ---------------------------------------------------------

    def event(self, kind, /, **payload):
        """Append one ordered, structured event to the run log.

        Events carry data that is not a duration: configuration
        fingerprints (``kind="configuration"``) and per-query workload
        cost breakdowns (``kind="measurement"``).

        Args:
            kind: event discriminator (see ``docs/observability.md``).
                Positional-only, so payloads may themselves carry a
                ``kind`` field (the measurement A/E/H tag does).
            **payload: JSON-serializable event body.
        """
        with self._lock:
            self._events.append(
                {"type": "event", "seq": next(self._event_seq),
                 "kind": kind, "payload": payload}
            )

    # -- export ---------------------------------------------------------

    def spans(self):
        """Finished spans, in completion order (a copied list)."""
        with self._lock:
            return list(self._finished)

    def events(self, kind=None):
        """Recorded events (copies), optionally filtered by ``kind``."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        return events

    def trace_records(self):
        """Every span and event as JSONL-ready dicts.

        Spans come first (ordered by ``span_id``), then events (ordered
        by ``seq``); both orders are deterministic for a serial run.
        """
        with self._lock:
            spans = sorted(self._finished, key=lambda s: s.span_id)
            events = list(self._events)
        return [s.to_record() for s in spans] + events

    def write_trace(self, path):
        """Write the trace as JSON Lines (one record per line).

        Args:
            path: destination file path (parent directory must exist).

        Returns:
            The number of records written.
        """
        records = self.trace_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(records)


# ----------------------------------------------------------------------
# The process-global recorder

_active = NullRecorder()


def get_recorder():
    """The currently installed recorder (a NullRecorder by default)."""
    return _active


def install(recorder):
    """Install ``recorder`` globally; returns the previous recorder.

    Passing ``None`` installs a fresh :class:`NullRecorder` (i.e.
    disables observability).
    """
    global _active
    previous = _active
    _active = recorder if recorder is not None else NullRecorder()
    return previous


@contextmanager
def recording(recorder=None):
    """Run a block with ``recorder`` installed, then restore the old one.

    Args:
        recorder: the recorder to install; ``None`` creates a fresh
            :class:`TraceRecorder`.

    Yields:
        The installed recorder.
    """
    if recorder is None:
        recorder = TraceRecorder()
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


# ----------------------------------------------------------------------
# Dispatch helpers — what instrumented modules actually call.  They look
# up the active recorder at call time, so `recording(...)` affects code
# that imported these functions long before.

def span(name, **attrs):
    """Open a span on the active recorder (no-op when disabled)."""
    return _active.span(name, **attrs)


def counter_add(name, value=1):
    """Increment a counter on the active recorder (no-op when disabled)."""
    _active.counter_add(name, value)


def gauge_set(name, value):
    """Set a gauge on the active recorder (no-op when disabled)."""
    _active.gauge_set(name, value)


def observe(name, value):
    """Record a histogram observation (no-op when disabled)."""
    _active.observe(name, value)


def event(kind, /, **payload):
    """Record a structured event (no-op when disabled)."""
    _active.event(kind, **payload)


def is_enabled():
    """Whether a real (non-null) recorder is installed."""
    return _active.enabled
