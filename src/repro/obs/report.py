"""Structured run reports: one JSON document describing a bench run.

The run report is the durable answer to "what happened in that run?":
the manifest (seed, scale, workload size, jobs), every configuration
fingerprint the run touched, wall-clock per pipeline stage, hit/miss
counters of every cache, the metrics registry, and the per-query A/E/H
cost breakdown of every measured workload — the provenance the paper's
Figures 10–11 analysis needs (tracing a bad recommendation back to the
optimizer's hypothetical estimates).

:func:`build_run_report` assembles the document from a bench context
(duck-typed: anything with ``settings``/``timings``/``artifacts``/
``live_databases``) plus, optionally, the run's
:class:`~repro.obs.recorder.TraceRecorder`.  The shape is pinned by
:data:`repro.obs.schemas.RUN_REPORT_SCHEMA`; :func:`render_text` and
:func:`render_metrics` turn report/metrics dicts back into the
human-oriented ``--stats``/``--metrics`` console output, so the printed
numbers can never drift from the exported ones.
"""

import copy
import json

REPORT_SCHEMA_ID = "repro.report/v1"


def build_run_report(context, recorder=None, experiments=None):
    """Assemble the structured report of one bench run.

    Args:
        context: a ``BenchContext`` (or compatible object exposing
            ``settings``, ``jobs``, ``timings``, ``artifacts`` and
            ``live_databases()``).
        recorder: the run's ``TraceRecorder``, if observability was on;
            supplies the metrics block, recorded configuration
            fingerprints, and per-query measurement events.  ``None``
            still produces a complete report from context state alone.
        experiments: experiment ids the run executed (manifest only).

    Returns:
        A JSON-serializable dict matching
        :data:`repro.obs.schemas.RUN_REPORT_SCHEMA`.
    """
    settings = context.settings
    fingerprints = {}
    measurements = []
    metrics = {}
    if recorder is not None and recorder.enabled:
        for event in recorder.events("configuration"):
            payload = event["payload"]
            key = f"{payload['database']}:{payload['configuration']}"
            fingerprints[key] = payload["fingerprint"]
        measurements = [
            dict(event["payload"])
            for event in recorder.events("measurement")
        ]
        metrics = recorder.metrics.snapshot()

    databases = {}
    for (system_name, dataset), db in sorted(context.live_databases()):
        label = f"{system_name}/{dataset}"
        databases[label] = db.cache_stats()
        config = db.configuration
        fingerprints.setdefault(
            f"{db.name}:{config.name}", config.fingerprint
        )

    return {
        "schema": REPORT_SCHEMA_ID,
        "run": {
            "seed": settings.seed,
            "scale": settings.scale,
            "workload_size": settings.workload_size,
            "timeout": settings.timeout,
            "jobs": context.jobs,
            "shards": getattr(context, "shards", 0),
            "experiments": list(experiments or ()),
        },
        "fingerprints": fingerprints,
        "stages": context.timings.snapshot(),
        "caches": {
            "artifact": context.artifacts.snapshot(),
            "databases": databases,
        },
        "metrics": metrics,
        "measurements": measurements,
    }


def canonicalize_run_report(report):
    """A deep copy of ``report`` with wall-clock durations zeroed.

    Everything in a run report is deterministic — fingerprints, virtual
    seconds, cache and engine counters — *except* the wall-clock
    ``stages.*.seconds`` accounting, which necessarily differs between
    two runs of the same work.  The canonical form zeroes exactly those
    fields (the ``count`` per stage stays, it is deterministic), so two
    reports of the same run can be compared byte-for-byte after
    :func:`write_report`-style serialization.  This is how CI and the
    tuning server prove that a report served over HTTP describes the
    same run as the one-shot CLI's ``--report`` file.

    Args:
        report: a dict matching :data:`repro.obs.schemas.RUN_REPORT_SCHEMA`.

    Returns:
        A new, schema-valid report dict; the input is not mutated.
    """
    canonical = copy.deepcopy(report)
    for row in canonical.get("stages", {}).values():
        row["seconds"] = 0.0
    return canonical


def write_report(report, path):
    """Write a run report as pretty-printed, key-sorted JSON.

    Args:
        report: the dict from :func:`build_run_report`.
        path: destination file path.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Console rendering (the --stats / --metrics output)

def render_stages(stages, title="bench stage timings"):
    """Stage-timings block of the console report.

    Args:
        stages: the report's ``stages`` dict
            (``{name: {"seconds": float, "count": int}}``).
        title: heading line.
    """
    if not stages:
        return f"{title}: (no stages recorded)"
    width = max(len(name) for name in stages)
    lines = [f"{title}:"]
    for name, row in sorted(
        stages.items(), key=lambda item: -item[1]["seconds"]
    ):
        lines.append(
            f"  {name:<{width}}  {row['seconds']:9.3f}s  x{row['count']}"
        )
    return "\n".join(lines)


def render_text(report):
    """The full ``--stats`` console rendering of a run report.

    Shows stage timings, artifact-cache traffic, and each database's
    planner/bind cache hit rates — all read back out of the structured
    report, so console and JSON never disagree.
    """
    lines = [render_stages(report["stages"])]
    artifact = report["caches"]["artifact"]
    line = (
        "artifact cache: "
        f"{artifact['memory_hits']} memory hits, "
        f"{artifact['disk_hits']} disk hits, "
        f"{artifact['misses']} misses, "
        f"{artifact['entries']} entries"
    )
    if artifact.get("directory"):
        line += f", dir={artifact['directory']}"
    lines.append(line)
    for label, caches in sorted(report["caches"]["databases"].items()):
        plan = caches["plan_cache"]
        bind = caches["bind_cache"]
        lookups = plan["hits"] + plan["misses"]
        line = (
            f"db {label}: plan cache {plan['hits']}/{lookups} hits "
            f"(rate {plan['hit_rate']:.2f}), "
            f"bind cache rate {bind['hit_rate']:.2f}"
        )
        whatif = caches.get("whatif_cache")
        if whatif and whatif["hits"] + whatif["misses"]:
            line += f", what-if cache rate {whatif['hit_rate']:.2f}"
        dictionary = caches.get("dict_cache")
        if dictionary and dictionary["hits"] + dictionary["misses"]:
            line += f", dict cache rate {dictionary['hit_rate']:.2f}"
        template = caches.get("template_cache")
        if template and template["hits"] + template["misses"]:
            line += f", template cache rate {template['hit_rate']:.2f}"
        subplan = caches.get("subplan_cache")
        if subplan and subplan["hits"] + subplan["misses"]:
            line += f", subplan cache rate {subplan['hit_rate']:.2f}"
        kernels = caches.get("kernel_cache")
        if kernels and kernels["hits"] + kernels["misses"]:
            line += f", kernel cache rate {kernels['hit_rate']:.2f}"
        lines.append(line)
    shards = report["run"].get("shards", 0)
    if shards:
        counters = report.get("metrics", {}).get("counters", {})
        line = f"sharding: {shards} shards"
        scanned = counters.get("sharding.shards_scanned", 0)
        if scanned:
            line += (
                f", {scanned} shard scans, "
                f"{counters.get('sharding.pool_tasks', 0)} pool tasks, "
                f"{counters.get('sharding.bytes_shared', 0)} bytes shared"
            )
        lines.append(line)
    return "\n".join(lines)


def render_metrics(snapshot, title="metrics"):
    """Console rendering of a metrics-registry snapshot (``--metrics``).

    Args:
        snapshot: dict from ``MetricsRegistry.snapshot()``.
        title: heading line.
    """
    lines = [f"{title}:"]
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        lines.append(f"  {name} = {counters[name]}")
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        lines.append(f"  {name} = {gauges[name]} (gauge)")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        h = histograms[name]
        lines.append(
            f"  {name}: n={h['count']} sum={h['sum']:.3f} "
            f"min={h['min']} max={h['max']}"
        )
        for bucket, count in h["buckets"].items():
            lines.append(f"    {bucket}: {count}")
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)
