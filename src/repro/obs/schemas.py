"""Documented schemas for the trace and report files, plus a validator.

The observability exports are consumed outside this process (CI checks
them, notebooks read them), so their shapes are pinned here as data and
validated with a deliberately small JSON-Schema subset — ``type``,
``properties``, ``required``, ``additionalProperties``, ``items``,
``enum``, ``minimum`` — implemented in :func:`validate_instance` so no
third-party ``jsonschema`` dependency is needed.

Prose versions of both schemas live in ``docs/observability.md``; CI
runs ``python -m repro.obs.validate`` against a real traced benchmark
to keep code, schema, and docs honest.
"""


class SchemaError(ValueError):
    """An instance does not match its schema (message carries the path)."""


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, type_name):
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[type_name])


def validate_instance(instance, schema, path="$"):
    """Validate ``instance`` against a schema dict; raise on mismatch.

    Args:
        instance: any JSON-decodable value.
        schema: a schema dict using the subset described in the module
            docstring.
        path: JSONPath-ish location prefix used in error messages.

    Raises:
        SchemaError: naming the first offending location and constraint.
    """
    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, name) for name in names):
            raise SchemaError(
                f"{path}: expected {'/'.join(names)}, "
                f"got {type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} not in enum {schema['enum']!r}"
        )
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance!r} below minimum {schema['minimum']!r}"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            if key in properties:
                validate_instance(value, properties[key], f"{path}.{key}")
            elif additional is False:
                raise SchemaError(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                validate_instance(value, additional, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            validate_instance(item, schema["items"], f"{path}[{index}]")
    return instance


# ----------------------------------------------------------------------
# Trace file (JSON Lines): every line is a span record or an event record.

SPAN_RECORD_SCHEMA = {
    "type": "object",
    "required": ["type", "span_id", "parent_id", "name", "start", "wall_s"],
    "properties": {
        "type": {"enum": ["span"]},
        "span_id": {"type": "integer", "minimum": 1},
        "parent_id": {"type": ["integer", "null"]},
        "name": {"type": "string"},
        "start": {"type": "number"},
        "wall_s": {"type": "number", "minimum": 0},
        "attrs": {"type": "object"},
    },
    "additionalProperties": False,
}

EVENT_RECORD_SCHEMA = {
    "type": "object",
    "required": ["type", "seq", "kind", "payload"],
    "properties": {
        "type": {"enum": ["event"]},
        "seq": {"type": "integer", "minimum": 1},
        "kind": {"type": "string"},
        "payload": {"type": "object"},
    },
    "additionalProperties": False,
}


def validate_trace_record(record, path="$"):
    """Validate one decoded trace line (span or event record)."""
    if not isinstance(record, dict) or "type" not in record:
        raise SchemaError(f"{path}: trace record must carry a 'type' key")
    if record["type"] == "span":
        return validate_instance(record, SPAN_RECORD_SCHEMA, path)
    if record["type"] == "event":
        return validate_instance(record, EVENT_RECORD_SCHEMA, path)
    raise SchemaError(f"{path}: unknown trace record type {record['type']!r}")


# ----------------------------------------------------------------------
# Run report (a single JSON object).

_CACHE_COUNTERS_SCHEMA = {
    "type": "object",
    "required": ["name", "hits", "misses", "evictions", "invalidations",
                 "hit_rate"],
    "properties": {
        "name": {"type": "string"},
        "hits": {"type": "integer", "minimum": 0},
        "misses": {"type": "integer", "minimum": 0},
        "evictions": {"type": "integer", "minimum": 0},
        "invalidations": {"type": "integer", "minimum": 0},
        "hit_rate": {"type": "number", "minimum": 0},
    },
    "additionalProperties": False,
}

_STAGE_SCHEMA = {
    "type": "object",
    "required": ["seconds", "count"],
    "properties": {
        "seconds": {"type": "number", "minimum": 0},
        "count": {"type": "integer", "minimum": 0},
    },
    "additionalProperties": False,
}

_MEASUREMENT_SCHEMA = {
    "type": "object",
    "required": ["workload", "configuration", "kind", "queries",
                 "total_seconds", "timed_out", "per_query"],
    "properties": {
        "workload": {"type": "string"},
        "configuration": {"type": "string"},
        "kind": {"enum": ["A", "E", "H"]},
        "queries": {"type": "integer", "minimum": 0},
        "total_seconds": {"type": "number", "minimum": 0},
        "timed_out": {"type": "integer", "minimum": 0},
        "per_query": {"type": "array", "items": {"type": "number"}},
    },
    "additionalProperties": False,
}

RUN_REPORT_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "fingerprints", "stages", "caches",
                 "metrics", "measurements"],
    "properties": {
        "schema": {"enum": ["repro.report/v1"]},
        "run": {
            "type": "object",
            "required": ["seed", "scale", "workload_size", "timeout",
                         "jobs", "shards", "experiments"],
            "properties": {
                "seed": {"type": "integer"},
                "scale": {"type": "number"},
                "workload_size": {"type": "integer"},
                "timeout": {"type": "number"},
                "jobs": {"type": "integer", "minimum": 1},
                "shards": {"type": "integer", "minimum": 0},
                "experiments": {
                    "type": "array", "items": {"type": "string"},
                },
            },
            "additionalProperties": False,
        },
        "fingerprints": {
            "type": "object",
            "additionalProperties": {"type": "string"},
        },
        "stages": {
            "type": "object",
            "additionalProperties": _STAGE_SCHEMA,
        },
        "caches": {
            "type": "object",
            "required": ["artifact", "databases"],
            "properties": {
                "artifact": {"type": "object"},
                "databases": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "additionalProperties": _CACHE_COUNTERS_SCHEMA,
                    },
                },
            },
            "additionalProperties": False,
        },
        "metrics": {"type": "object"},
        "measurements": {"type": "array", "items": _MEASUREMENT_SCHEMA},
    },
    "additionalProperties": False,
}


def validate_run_report(report, path="$"):
    """Validate a decoded run report against :data:`RUN_REPORT_SCHEMA`."""
    return validate_instance(report, RUN_REPORT_SCHEMA, path)


# ----------------------------------------------------------------------
# What-if perf benchmark (BENCH_whatif.json, written by
# scripts/bench_perf.py; prose version in docs/performance.md).

_WHATIF_MODE_SCHEMA = {
    "type": "object",
    "required": ["wall_seconds", "what_if_calls", "plans_enumerated",
                 "whatif_cache_hits", "whatif_cache_misses",
                 "whatif_cache_hit_rate"],
    "properties": {
        "wall_seconds": {"type": "number", "minimum": 0},
        # Present when the bench ran with --repeat N (N > 1):
        # wall_seconds is then the median of N runs.
        "wall_seconds_min": {"type": "number", "minimum": 0},
        "wall_seconds_max": {"type": "number", "minimum": 0},
        "what_if_calls": {"type": "integer", "minimum": 0},
        "plans_enumerated": {"type": "integer", "minimum": 0},
        "env_builds": {"type": "integer", "minimum": 0},
        "env_delta_builds": {"type": "integer", "minimum": 0},
        "candidates_pruned": {"type": "integer", "minimum": 0},
        "whatif_cache_hits": {"type": "integer", "minimum": 0},
        "whatif_cache_misses": {"type": "integer", "minimum": 0},
        "whatif_cache_hit_rate": {"type": "number", "minimum": 0},
        "fingerprint": {"type": ["string", "null"]},
    },
    "additionalProperties": False,
}

BENCH_WHATIF_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "targets"],
    "properties": {
        "schema": {"enum": ["repro.bench_whatif/v1"]},
        "run": {
            "type": "object",
            "required": ["id", "smoke", "scale", "workload_size", "seed",
                         "jobs"],
            "properties": {
                "id": {"type": "string"},
                "smoke": {"type": "boolean"},
                "scale": {"type": "number"},
                "workload_size": {"type": "integer", "minimum": 1},
                "seed": {"type": "integer"},
                "jobs": {"type": "integer", "minimum": 1},
                # Optional: wall times are the median of this many runs.
                "repeat": {"type": "integer", "minimum": 1},
            },
            "additionalProperties": False,
        },
        "targets": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["target", "system", "family", "identical",
                             "speedup", "plans_ratio", "cached",
                             "uncached"],
                "properties": {
                    "target": {"type": "string"},
                    "system": {"type": "string"},
                    "family": {"type": "string"},
                    "identical": {"type": "boolean"},
                    "speedup": {"type": "number", "minimum": 0},
                    "plans_ratio": {"type": "number", "minimum": 0},
                    "cached": _WHATIF_MODE_SCHEMA,
                    "uncached": _WHATIF_MODE_SCHEMA,
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


def validate_bench_whatif(document, path="$"):
    """Validate a decoded ``BENCH_whatif.json`` document."""
    return validate_instance(document, BENCH_WHATIF_SCHEMA, path)


# ----------------------------------------------------------------------
# Column-dictionary perf benchmark (BENCH_encoding.json, written by
# benchmarks/bench_perf_encoding.py; prose version in
# docs/performance.md).

_ENCODING_MODE_SCHEMA = {
    "type": "object",
    "required": ["wall_seconds", "unique_calls", "dict_builds",
                 "dict_hits", "codes_reused", "figure_fingerprint",
                 "costs_fingerprint"],
    "properties": {
        "wall_seconds": {"type": "number", "minimum": 0},
        "unique_calls": {"type": "integer", "minimum": 0},
        "dict_builds": {"type": "integer", "minimum": 0},
        "dict_hits": {"type": "integer", "minimum": 0},
        "codes_reused": {"type": "integer", "minimum": 0},
        "figure_fingerprint": {"type": "string"},
        "costs_fingerprint": {"type": "string"},
    },
    "additionalProperties": False,
}

BENCH_ENCODING_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "targets"],
    "properties": {
        "schema": {"enum": ["repro.bench_encoding/v1"]},
        "run": {
            "type": "object",
            "required": ["id", "smoke", "scale", "workload_size", "seed",
                         "jobs"],
            "properties": {
                "id": {"type": "string"},
                "smoke": {"type": "boolean"},
                "scale": {"type": "number"},
                "workload_size": {"type": "integer", "minimum": 1},
                "seed": {"type": "integer"},
                "jobs": {"type": "integer", "minimum": 1},
            },
            "additionalProperties": False,
        },
        "targets": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["target", "system", "family", "identical",
                             "speedup", "unique_calls_ratio", "cached",
                             "uncached"],
                "properties": {
                    "target": {"type": "string"},
                    "system": {"type": "string"},
                    "family": {"type": "string"},
                    "identical": {"type": "boolean"},
                    "speedup": {"type": "number", "minimum": 0},
                    "unique_calls_ratio": {"type": "number", "minimum": 0},
                    "cached": _ENCODING_MODE_SCHEMA,
                    "uncached": _ENCODING_MODE_SCHEMA,
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


def validate_bench_encoding(document, path="$"):
    """Validate a decoded ``BENCH_encoding.json`` document."""
    return validate_instance(document, BENCH_ENCODING_SCHEMA, path)


# ----------------------------------------------------------------------
# Sharded-execution perf benchmark (BENCH_sharding.json, written by
# benchmarks/bench_perf_sharding.py; prose version in
# docs/performance.md).

_SHARDING_MODE_SCHEMA = {
    "type": "object",
    "required": ["wall_seconds", "shards", "shard_jobs", "shards_scanned",
                 "pool_tasks", "bytes_shared", "figure_fingerprint",
                 "costs_fingerprint"],
    "properties": {
        "wall_seconds": {"type": "number", "minimum": 0},
        "shards": {"type": "integer", "minimum": 0},
        "shard_jobs": {"type": "integer", "minimum": 1},
        "shards_scanned": {"type": "integer", "minimum": 0},
        "pool_tasks": {"type": "integer", "minimum": 0},
        "bytes_shared": {"type": "integer", "minimum": 0},
        "figure_fingerprint": {"type": "string"},
        "costs_fingerprint": {"type": "string"},
    },
    "additionalProperties": False,
}

BENCH_SHARDING_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "targets"],
    "properties": {
        "schema": {"enum": ["repro.bench_sharding/v1"]},
        "run": {
            "type": "object",
            "required": ["id", "smoke", "scale", "workload_size", "seed",
                         "jobs", "cpus"],
            "properties": {
                "id": {"type": "string"},
                "smoke": {"type": "boolean"},
                "scale": {"type": "number"},
                "workload_size": {"type": "integer", "minimum": 1},
                "seed": {"type": "integer"},
                "jobs": {"type": "integer", "minimum": 1},
                "cpus": {"type": "integer", "minimum": 1},
            },
            "additionalProperties": False,
        },
        "targets": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["target", "system", "family", "identical",
                             "speedup", "sharded", "unsharded"],
                "properties": {
                    "target": {"type": "string"},
                    "system": {"type": "string"},
                    "family": {"type": "string"},
                    "identical": {"type": "boolean"},
                    "speedup": {"type": "number", "minimum": 0},
                    "sharded": _SHARDING_MODE_SCHEMA,
                    "unsharded": _SHARDING_MODE_SCHEMA,
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


def validate_bench_sharding(document, path="$"):
    """Validate a decoded ``BENCH_sharding.json`` document."""
    return validate_instance(document, BENCH_SHARDING_SCHEMA, path)


# ----------------------------------------------------------------------
# Cross-query optimization perf benchmark (BENCH_multiquery.json,
# written by benchmarks/bench_perf_multiquery.py; prose version in
# docs/performance.md#cross-query-optimization).

_MULTIQUERY_MODE_SCHEMA = {
    "type": "object",
    "required": ["wall_seconds", "plans_enumerated", "plan_builds",
                 "plan_replays", "bind_builds", "bind_replays",
                 "fallbacks", "subplan_hits", "subplan_builds",
                 "morsel_batches", "figure_fingerprint",
                 "costs_fingerprint"],
    "properties": {
        "wall_seconds": {"type": "number", "minimum": 0},
        "plans_enumerated": {"type": "integer", "minimum": 0},
        "plan_builds": {"type": "integer", "minimum": 0},
        "plan_replays": {"type": "integer", "minimum": 0},
        "bind_builds": {"type": "integer", "minimum": 0},
        "bind_replays": {"type": "integer", "minimum": 0},
        "fallbacks": {"type": "integer", "minimum": 0},
        "subplan_hits": {"type": "integer", "minimum": 0},
        "subplan_builds": {"type": "integer", "minimum": 0},
        "morsel_batches": {"type": "integer", "minimum": 0},
        "figure_fingerprint": {"type": "string"},
        "costs_fingerprint": {"type": "string"},
    },
    "additionalProperties": False,
}

BENCH_MULTIQUERY_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "targets"],
    "properties": {
        "schema": {"enum": ["repro.bench_multiquery/v1"]},
        "run": {
            "type": "object",
            "required": ["id", "smoke", "scale", "workload_size", "seed",
                         "jobs"],
            "properties": {
                "id": {"type": "string"},
                "smoke": {"type": "boolean"},
                "scale": {"type": "number"},
                "workload_size": {"type": "integer", "minimum": 1},
                "seed": {"type": "integer"},
                "jobs": {"type": "integer", "minimum": 1},
            },
            "additionalProperties": False,
        },
        "targets": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["target", "system", "family", "identical",
                             "speedup", "plans_ratio", "optimized",
                             "baseline"],
                "properties": {
                    "target": {"type": "string"},
                    "system": {"type": "string"},
                    "family": {"type": "string"},
                    "identical": {"type": "boolean"},
                    "speedup": {"type": "number", "minimum": 0},
                    "plans_ratio": {"type": "number", "minimum": 0},
                    "optimized": _MULTIQUERY_MODE_SCHEMA,
                    "baseline": _MULTIQUERY_MODE_SCHEMA,
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


def validate_bench_multiquery(document, path="$"):
    """Validate a decoded ``BENCH_multiquery.json`` document."""
    return validate_instance(document, BENCH_MULTIQUERY_SCHEMA, path)


# ----------------------------------------------------------------------
# Late-materialization perf benchmark (BENCH_latemat.json, written by
# benchmarks/bench_perf_latemat.py; prose version in
# docs/performance.md#late-materialization).

_LATEMAT_MODE_SCHEMA = {
    "type": "object",
    "required": ["wall_seconds", "gathers_deferred",
                 "gather_bytes_avoided", "columns_pruned",
                 "kernel_builds", "kernel_hits", "figure_fingerprint",
                 "costs_fingerprint"],
    "properties": {
        "wall_seconds": {"type": "number", "minimum": 0},
        # Present when the bench ran with --repeat N (N > 1):
        # wall_seconds is then the median of N runs.
        "wall_seconds_min": {"type": "number", "minimum": 0},
        "wall_seconds_max": {"type": "number", "minimum": 0},
        "gathers_deferred": {"type": "integer", "minimum": 0},
        "gather_bytes_avoided": {"type": "integer", "minimum": 0},
        "columns_pruned": {"type": "integer", "minimum": 0},
        "kernel_builds": {"type": "integer", "minimum": 0},
        "kernel_hits": {"type": "integer", "minimum": 0},
        "figure_fingerprint": {"type": "string"},
        "costs_fingerprint": {"type": "string"},
    },
    "additionalProperties": False,
}

BENCH_LATEMAT_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "targets"],
    "properties": {
        "schema": {"enum": ["repro.bench_latemat/v1"]},
        "run": {
            "type": "object",
            "required": ["id", "smoke", "scale", "workload_size", "seed",
                         "jobs"],
            "properties": {
                "id": {"type": "string"},
                "smoke": {"type": "boolean"},
                "scale": {"type": "number"},
                "workload_size": {"type": "integer", "minimum": 1},
                "seed": {"type": "integer"},
                "jobs": {"type": "integer", "minimum": 1},
                # Optional: wall times are the median of this many runs.
                "repeat": {"type": "integer", "minimum": 1},
            },
            "additionalProperties": False,
        },
        "targets": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["target", "system", "family", "identical",
                             "speedup", "optimized", "baseline"],
                "properties": {
                    "target": {"type": "string"},
                    "system": {"type": "string"},
                    "family": {"type": "string"},
                    "identical": {"type": "boolean"},
                    "speedup": {"type": "number", "minimum": 0},
                    "optimized": _LATEMAT_MODE_SCHEMA,
                    "baseline": _LATEMAT_MODE_SCHEMA,
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


def validate_bench_latemat(document, path="$"):
    """Validate a decoded ``BENCH_latemat.json`` document."""
    return validate_instance(document, BENCH_LATEMAT_SCHEMA, path)
