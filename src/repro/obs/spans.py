"""Hierarchical tracing spans.

A :class:`Span` is one timed region of the pipeline — planning a query,
measuring a workload, building a configuration.  Spans nest: each thread
keeps its own stack of open spans, and a span opened while another is
open on the *same thread* records it as its parent.  Worker threads of a
``REPRO_JOBS`` pool therefore start their own span trees (their work has
no meaningful single parent on the submitting thread), which keeps the
trace deterministic in *structure* even though wall-clock numbers vary.

Every span carries two clocks:

* ``wall_s`` — real elapsed seconds (``time.perf_counter`` delta), the
  number profiles care about;
* ``attrs["virtual_s"]`` — when the instrumented region has a meaningful
  virtual-clock cost (query execution, workload measurement), the
  deterministic virtual seconds charged by the cost model.

Span names are dotted, layer-first (``db.execute``, ``session.measure``,
``bench.recommend``); the full vocabulary is listed in
``docs/observability.md``.
"""

from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished (or still-open) region of a trace.

    Attributes:
        span_id: process-unique positive integer, assigned at open time.
        parent_id: ``span_id`` of the enclosing span on the same thread,
            or ``None`` for a root span.
        name: dotted span name (see ``docs/observability.md``).
        start: wall-clock start, seconds since the Unix epoch.
        wall_s: wall-clock duration in seconds (0 while still open).
        attrs: free-form JSON-serializable attributes; the well-known
            keys ``virtual_s`` (virtual seconds) and ``timed_out`` are
            set by the engine integrations.
    """

    span_id: int
    parent_id: object
    name: str
    start: float
    wall_s: float = 0.0
    attrs: dict = field(default_factory=dict)

    def set(self, **attrs):
        """Attach attributes to the span (chainable).

        Args:
            **attrs: JSON-serializable values; keys already present are
                overwritten.

        Returns:
            The span itself, so instrumented code can write
            ``span.set(virtual_s=total)`` inside a ``with`` block.
        """
        self.attrs.update(attrs)
        return self

    def to_record(self):
        """The span as a JSONL trace record (a plain dict).

        Returns:
            ``{"type": "span", "span_id", "parent_id", "name", "start",
            "wall_s", "attrs"}`` — the shape validated by
            :data:`repro.obs.schemas.SPAN_RECORD_SCHEMA`.
        """
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "wall_s": self.wall_s,
            "attrs": dict(self.attrs),
        }
