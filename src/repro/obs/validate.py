"""Schema validation CLI for observability exports.

Usage::

    python -m repro.obs.validate --trace trace.jsonl --report report.json

Validates every line of a JSONL trace against the span/event record
schemas and a run report against :data:`repro.obs.schemas.RUN_REPORT_SCHEMA`.
Exit status 0 means everything validated; 1 means a schema violation
(including undecodable JSON — the content is wrong); 2 means an input
file could not be read at all (missing, permission denied) — distinct
codes so CI and scripts can tell "bad document" from "bad path".  The
offending location is printed either way.  CI runs this against the
artifacts of a real traced benchmark.
"""

import argparse
import json
import sys

from .schemas import (
    SchemaError,
    validate_bench_encoding,
    validate_bench_latemat,
    validate_bench_multiquery,
    validate_bench_sharding,
    validate_bench_whatif,
    validate_run_report,
    validate_trace_record,
)


def validate_trace_file(path):
    """Validate a JSONL trace file line by line.

    Args:
        path: trace file written by ``TraceRecorder.write_trace`` (or
            the bench CLI's ``--trace``).

    Returns:
        ``(spans, events)`` record counts.

    Raises:
        SchemaError: on the first malformed line.
    """
    spans = events = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SchemaError(
                    f"{path}:{lineno}: not valid JSON ({err})"
                ) from None
            validate_trace_record(record, path=f"{path}:{lineno}")
            if record["type"] == "span":
                spans += 1
            else:
                events += 1
    return spans, events


def validate_report_file(path):
    """Validate a run-report JSON file.

    Args:
        path: report file written by the bench CLI's ``--report``.

    Returns:
        The decoded (and valid) report dict.

    Raises:
        SchemaError: when the document violates the report schema.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from None
    validate_run_report(report, path=path)
    return report


def validate_bench_file(path):
    """Validate a ``BENCH_whatif.json`` perf-trajectory file.

    Args:
        path: benchmark file written by ``scripts/bench_perf.py``.

    Returns:
        The decoded (and valid) benchmark dict.

    Raises:
        SchemaError: when the document violates the benchmark schema.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from None
    validate_bench_whatif(document, path=path)
    return document


def validate_bench_encoding_file(path):
    """Validate a ``BENCH_encoding.json`` perf-trajectory file.

    Args:
        path: benchmark file written by
            ``benchmarks/bench_perf_encoding.py``.

    Returns:
        The decoded (and valid) benchmark dict.

    Raises:
        SchemaError: when the document violates the benchmark schema.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from None
    validate_bench_encoding(document, path=path)
    return document


def validate_bench_sharding_file(path):
    """Validate a ``BENCH_sharding.json`` perf-trajectory file.

    Args:
        path: benchmark file written by
            ``benchmarks/bench_perf_sharding.py``.

    Returns:
        The decoded (and valid) benchmark dict.

    Raises:
        SchemaError: when the document violates the benchmark schema.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from None
    validate_bench_sharding(document, path=path)
    return document


def validate_bench_multiquery_file(path):
    """Validate a ``BENCH_multiquery.json`` perf-trajectory file.

    Args:
        path: benchmark file written by
            ``benchmarks/bench_perf_multiquery.py``.

    Returns:
        The decoded (and valid) benchmark dict.

    Raises:
        SchemaError: when the document violates the benchmark schema.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from None
    validate_bench_multiquery(document, path=path)
    return document


def validate_bench_latemat_file(path):
    """Validate a ``BENCH_latemat.json`` perf-trajectory file.

    Args:
        path: benchmark file written by
            ``benchmarks/bench_perf_latemat.py``.

    Returns:
        The decoded (and valid) benchmark dict.

    Raises:
        SchemaError: when the document violates the benchmark schema.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            raise SchemaError(f"{path}: not valid JSON ({err})") from None
    validate_bench_latemat(document, path=path)
    return document


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate trace/report files against their schemas.",
    )
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="JSONL trace file to validate")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="run report JSON file to validate")
    parser.add_argument("--bench-whatif", default=None, metavar="FILE",
                        help="BENCH_whatif.json perf benchmark to validate")
    parser.add_argument("--bench-encoding", default=None, metavar="FILE",
                        help="BENCH_encoding.json perf benchmark to "
                             "validate")
    parser.add_argument("--bench-sharding", default=None, metavar="FILE",
                        help="BENCH_sharding.json perf benchmark to "
                             "validate")
    parser.add_argument("--bench-multiquery", default=None, metavar="FILE",
                        help="BENCH_multiquery.json perf benchmark to "
                             "validate")
    parser.add_argument("--bench-latemat", default=None, metavar="FILE",
                        help="BENCH_latemat.json perf benchmark to "
                             "validate")
    args = parser.parse_args(argv)
    if args.trace is None and args.report is None \
            and args.bench_whatif is None and args.bench_encoding is None \
            and args.bench_sharding is None \
            and args.bench_multiquery is None \
            and args.bench_latemat is None:
        parser.error("nothing to validate: pass --trace, --report, "
                     "--bench-whatif, --bench-encoding, --bench-sharding, "
                     "--bench-multiquery and/or --bench-latemat")
    try:
        if args.trace is not None:
            spans, events = validate_trace_file(args.trace)
            print(f"trace OK: {spans} spans, {events} events "
                  f"({args.trace})")
        if args.report is not None:
            report = validate_report_file(args.report)
            print(f"report OK: {len(report['measurements'])} measurements, "
                  f"{len(report['fingerprints'])} fingerprints "
                  f"({args.report})")
        if args.bench_whatif is not None:
            document = validate_bench_file(args.bench_whatif)
            print(f"bench OK: {len(document['targets'])} targets "
                  f"({args.bench_whatif})")
        if args.bench_encoding is not None:
            document = validate_bench_encoding_file(args.bench_encoding)
            print(f"bench OK: {len(document['targets'])} targets "
                  f"({args.bench_encoding})")
        if args.bench_sharding is not None:
            document = validate_bench_sharding_file(args.bench_sharding)
            print(f"bench OK: {len(document['targets'])} targets "
                  f"({args.bench_sharding})")
        if args.bench_multiquery is not None:
            document = validate_bench_multiquery_file(args.bench_multiquery)
            print(f"bench OK: {len(document['targets'])} targets "
                  f"({args.bench_multiquery})")
        if args.bench_latemat is not None:
            document = validate_bench_latemat_file(args.bench_latemat)
            print(f"bench OK: {len(document['targets'])} targets "
                  f"({args.bench_latemat})")
    except SchemaError as err:
        print(f"validation FAILED: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"validation FAILED: cannot read input: {err}",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
