"""Cost-based optimizer: estimator, cost model, planner, what-if."""

from .environment import IndexInfo, PlannerEnv, ViewInfo
from .estimator import Estimator
from .planner import Planner
from .plans import explain
from .policy import EstimatorPolicy

__all__ = [
    "Estimator", "EstimatorPolicy", "IndexInfo", "Planner", "PlannerEnv",
    "ViewInfo", "explain",
]
