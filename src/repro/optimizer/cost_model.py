"""Cost model shared by the optimizer and the executor.

Every formula takes explicit row/page counts, so the optimizer can feed it
*estimated* cardinalities while the executor feeds it *actual* ones and
charges the result to the virtual clock.  This makes the paper's
estimated-vs-actual methodology exact: ``E`` and ``A`` differ only through
cardinality estimation error, and ``H`` additionally through hypothetical
index metadata (cluster factor, geometry).
"""

import math

from ..common.hardware import PAGE_SIZE, pages_for_bytes
from ..index.definition import heap_fetch_pages


def seq_scan(hw, pages, rows):
    """Full scan of a heap (or view) of ``pages`` pages and ``rows`` rows."""
    return pages * hw.seq_page_read_s + rows * hw.cpu_row_s


def filter_rows(hw, rows, n_predicates=1):
    """Predicate evaluation over ``rows`` rows."""
    return rows * max(1, n_predicates) * hw.cpu_row_s


def index_descend(hw, height):
    """Root-to-leaf descent.

    Upper levels are assumed cached, so the descent costs one I/O
    regardless of ``height`` (kept in the signature for cost-model
    symmetry and future cold-cache modeling).
    """
    del height
    return hw.random_page_read_s


def index_leaf_range(hw, matched, entries, leaf_pages):
    """Reading the leaf range holding ``matched`` of ``entries`` entries."""
    if entries <= 0:
        return 0.0
    frac = min(1.0, matched / entries)
    pages = max(1.0, math.ceil(frac * leaf_pages)) if matched > 0 else 0.0
    return pages * hw.seq_page_read_s + matched * hw.cpu_row_s


def heap_fetch(hw, matched, cluster_factor, table_pages, table_rows=None):
    """Fetching ``matched`` rows from the heap through an index.

    ``cluster_factor`` is the measured fraction of a random page read per
    row (1.0 for hypothetical indexes).  The engine is assumed to switch
    to a bitmap-style fetch (sort the row ids, read the distinct pages
    near-sequentially) when that is cheaper, as every commercial executor
    of the paper's era did.
    """
    if matched <= 0:
        return 0.0
    scattered = min(matched * cluster_factor, float(table_pages))
    scattered_cost = scattered * hw.random_page_read_s
    if table_rows:
        bitmap_pages = heap_fetch_pages(matched, table_rows, table_pages)
    else:
        bitmap_pages = float(table_pages)
    bitmap_cost = bitmap_pages * hw.seq_page_read_s * 1.5
    return min(scattered_cost, bitmap_cost) + matched * hw.cpu_row_s


def index_probes(hw, probes, entries, leaf_pages):
    """Batch equality probes into an index (index-nested-loop inner side).

    Distinct leaves touched follow the Yao approximation; upper levels are
    cached after the first descent, and a large sorted probe batch reads
    the touched leaves near-sequentially (bitmap-style).
    """
    if probes <= 0:
        return 0.0
    leaves = heap_fetch_pages(probes, max(1, entries), max(1, leaf_pages))
    leaves = max(1.0, leaves)
    leaf_cost = min(
        leaves * hw.random_page_read_s,
        leaves * hw.seq_page_read_s * 1.5,
    )
    return hw.random_page_read_s + leaf_cost + probes * hw.cpu_row_s


def spill(hw, n_bytes, work_mem_bytes=None):
    """Write+read penalty when an intermediate exceeds working memory."""
    limit = hw.work_mem_bytes if work_mem_bytes is None else work_mem_bytes
    if n_bytes <= limit:
        return 0.0
    pages = pages_for_bytes(n_bytes)
    return pages * (hw.page_write_s + hw.seq_page_read_s)


def hash_build(hw, rows, row_width):
    """Building a hash table over ``rows`` rows (spills when too large)."""
    return rows * (hw.hash_row_s + hw.cpu_row_s) + spill(hw, rows * row_width)


def hash_probe(hw, rows):
    """Probing a hash table with ``rows`` rows."""
    return rows * hw.hash_row_s


def join_output(hw, rows, row_width):
    """Producing and materializing ``rows`` join output rows."""
    return rows * hw.cpu_row_s + spill(hw, rows * row_width)


def hash_aggregate(hw, in_rows, groups, group_width):
    """Hash aggregation of ``in_rows`` input rows into ``groups`` groups."""
    return (
        in_rows * hw.hash_row_s
        + groups * hw.cpu_row_s
        + spill(hw, groups * (group_width + 16))
    )


def sort(hw, rows, row_width):
    """In-memory / external sort of ``rows`` rows."""
    if rows <= 1:
        return 0.0
    cpu = rows * math.log2(rows) * hw.sort_row_s
    return cpu + spill(hw, rows * row_width)


def build_index(hw, table_pages, rows, key_width, index_pages):
    """Creating an index: scan the heap, sort the entries, write the leaves."""
    return (
        seq_scan(hw, table_pages, rows)
        + sort(hw, rows, key_width + 12)
        + index_pages * hw.page_write_s
    )


def build_view(hw, input_cost, out_rows, out_width):
    """Materializing a view: compute the input, then write the result."""
    pages = pages_for_bytes(out_rows * out_width)
    return input_cost + out_rows * hw.cpu_row_s + pages * hw.page_write_s


def insert_rows(hw, rows, row_width, index_heights):
    """Appending ``rows`` heap rows and maintaining the given indexes.

    ``index_heights`` is one entry per index on the table.  Insert cost is
    linear in the row count (the paper observes exactly this in §4.4) with
    a per-index random-I/O surcharge, which is why inserting into 1C is
    slower than into R, which is slower than into P.
    """
    heap_pages = pages_for_bytes(rows * row_width)
    cost = heap_pages * hw.page_write_s + rows * hw.cpu_row_s
    # Each index charges an amortized fraction of a random I/O per row
    # (leaf pages are hot for bulk appends), independent of its height.
    cost += len(index_heights) * rows * (
        0.25 * hw.random_page_read_s + hw.cpu_row_s
    )
    return cost


def shard_counts(total, weights):
    """Apportion an integer ``total`` across shards proportionally.

    Largest-remainder apportionment over the shard ``weights`` (row
    counts): every shard gets the floor of its proportional share, and
    the leftover units go to the largest fractional remainders
    (ties broken by shard index).  The parts always sum to ``total``
    exactly, which is what keeps shard-aware size and cost accounting
    conserved — plans and CFC values cannot drift when a table is
    viewed through its shards.
    """
    weights = [max(0, int(w)) for w in weights]
    total = int(total)
    if not weights:
        return []
    denominator = sum(weights)
    if denominator == 0:
        parts = [0] * len(weights)
        parts[0] = total
        return parts
    shares = [total * w / denominator for w in weights]
    parts = [math.floor(s) for s in shares]
    remainder = total - sum(parts)
    order = sorted(
        range(len(weights)),
        key=lambda i: (parts[i] - shares[i], i),
    )
    for i in order[:remainder]:
        parts[i] += 1
    return parts


def sharded_seq_scan(hw, pages, rows, shard_rows):
    """Full scan of a sharded heap: per-shard scans, charged over totals.

    Floating-point addition is not associative, so summing per-shard
    ``seq_scan`` charges would differ from the unsharded charge in the
    last bits and break byte-identical figures.  The model therefore
    validates that the shard row counts conserve the table total and
    charges the *total* formula — the per-shard decomposition changes
    where the work runs, never what it costs.
    """
    shard_total = sum(int(r) for r in shard_rows)
    if shard_total != int(rows):
        raise ValueError(
            f"shard rows {shard_total} do not conserve table rows {rows}"
        )
    return seq_scan(hw, pages, rows)


def bytes_to_pages(n_bytes):
    """Convenience re-export for callers sizing intermediates."""
    return pages_for_bytes(n_bytes)


ROW_OVERHEAD = 8
PAGE = PAGE_SIZE
