"""Planner environment: what physical structures exist (or would exist).

The same planner serves three estimation modes, distinguished purely by
what the environment contains:

* **real** — built indexes/views with measured metadata (cluster factors,
  actual view sizes); used for ``E(q, C)`` estimates and for execution;
* **hypothetical** — :class:`IndexInfo`/:class:`ViewInfo` derived from
  size formulas with worst-case cluster factors, paired with the degraded
  estimator policy; used for ``H(q, Ch, Ca)`` what-if calls, i.e. by the
  recommenders.
"""

from dataclasses import dataclass, field

from ..index.definition import estimate_index_size


@dataclass
class IndexInfo:
    """Metadata the optimizer needs about one (possibly hypothetical) index."""

    definition: object             # IndexDefinition
    entries: int
    leaf_pages: int
    height: int
    cluster_factor: float
    hypothetical: bool = False
    data: object = None            # IndexData when built

    @classmethod
    def from_data(cls, index_data):
        """Wrap a built index."""
        return cls(
            definition=index_data.definition,
            entries=index_data.entry_count,
            leaf_pages=index_data.size.leaf_pages,
            height=index_data.size.height,
            cluster_factor=index_data.cluster_factor,
            hypothetical=False,
            data=index_data,
        )

    @classmethod
    def hypothetical_on(cls, definition, row_count, key_width,
                        overhead_factor=1.0):
        """Derive what-if metadata for an index that does not exist.

        The cluster factor is pinned at the conservative worst case (1.0):
        without building the index the system cannot know how correlated
        the key order is with the heap order.  This is the main driver of
        the paper's H-vs-E estimate gap (Figure 10).
        """
        size = estimate_index_size(row_count, key_width, overhead_factor)
        return cls(
            definition=definition,
            entries=row_count,
            leaf_pages=size.leaf_pages,
            height=size.height,
            cluster_factor=1.0,
            hypothetical=True,
        )


@dataclass
class ViewInfo:
    """Metadata about one (possibly hypothetical) materialized view."""

    definition: object             # MatViewDefinition
    rows: int
    page_count: int
    row_width: int
    indexes: list = field(default_factory=list)
    hypothetical: bool = False
    data: object = None            # built Table when real

    def index_on(self, column):
        """A view index led by ``column``, if any."""
        for info in self.indexes:
            if info.definition.columns[0] == column:
                return info
        return None


@dataclass
class PlannerEnv:
    """Everything the planner consults besides the query itself."""

    catalog: object                # Catalog
    estimator: object              # Estimator
    hardware: object               # HardwareProfile
    indexes: dict = field(default_factory=dict)   # table -> [IndexInfo]
    views: list = field(default_factory=list)     # [ViewInfo]

    def indexes_on(self, table):
        return self.indexes.get(table, [])

    def views_on_table(self, table):
        """Single-table aggregate views over ``table``."""
        return [
            v for v in self.views
            if not v.definition.is_join_view and v.definition.tables[0] == table
        ]

    def join_views(self):
        return [v for v in self.views if v.definition.is_join_view]
