"""Cardinality estimation.

The estimator is deliberately faithful to the mid-2000s commercial
estimators the paper studied: attribute-value independence across
predicates, the containment assumption for equality joins, damped
distinct-product estimates for GROUP BY.  These assumptions are the
mechanism behind the paper's observations — join estimates degrade under
skew (Section 4.3) and hypothetical estimates degrade further
(Section 5.1).
"""

from ..common.errors import PlanError


class Estimator:
    """Cardinality/selectivity estimates over a statistics catalog."""

    def __init__(self, stats_catalog, policy):
        self._stats = stats_catalog
        self.policy = policy

    # ------------------------------------------------------------------
    # Base tables

    def table_rows(self, table):
        return self._stats.table(table).row_count

    def table_pages(self, table):
        return self._stats.table(table).page_count

    def row_width(self, table):
        return self._stats.table(table).row_width

    def column(self, table, column):
        return self._stats.table(table).column(column)

    def n_distinct(self, table, column):
        return max(1, self.column(table, column).n_distinct)

    # ------------------------------------------------------------------
    # Selectivities

    def filter_selectivity(self, table, flt):
        """Selectivity of ``col op literal`` on a base table."""
        stats = self.column(table, flt.target.column)
        if flt.op == "=":
            return stats.eq_selectivity(flt.value, self.policy.use_mcvs)
        if flt.op == "<>":
            eq = stats.eq_selectivity(flt.value, self.policy.use_mcvs)
            return max(0.0, 1.0 - eq)
        # Range predicates: without histogram support pretend a third
        # qualifies, the classic System-R default.
        return 1.0 / 3.0

    def semijoin_selectivity(self, table, semi):
        """Selectivity of the benchmark's frequency-based IN-subquery."""
        if not self.policy.use_frequency_profile:
            return self.policy.default_semijoin_selectivity
        if semi.sub_table == table and semi.sub_column == semi.target.column:
            stats = self.column(table, semi.target.column)
            return stats.frequency_selectivity(
                semi.having_op, semi.having_value
            )
        # Cross-table membership: fraction of the target's distinct values
        # produced by the subquery, under containment.
        sub_stats = self.column(semi.sub_table, semi.sub_column)
        qualifying = sub_stats.distinct_count_with_frequency(
            semi.having_op, semi.having_value
        )
        target_ndv = self.n_distinct(table, semi.target.column)
        return min(1.0, qualifying / max(1, target_ndv))

    def semijoin_allowed_values(self, semi):
        """Estimated size of the subquery result (the allowed-value set)."""
        stats = self.column(semi.sub_table, semi.sub_column)
        if not self.policy.use_frequency_profile:
            return max(
                1,
                int(stats.n_distinct * self.policy.default_semijoin_selectivity),
            )
        return max(
            1,
            stats.distinct_count_with_frequency(
                semi.having_op, semi.having_value
            ),
        )

    def join_selectivity(self, left_table, left_col, right_table, right_col):
        """Equality join selectivity under the containment assumption."""
        left_ndv = self.n_distinct(left_table, left_col)
        right_ndv = self.n_distinct(right_table, right_col)
        return 1.0 / max(left_ndv, right_ndv)

    def join_rows(self, left_rows, right_rows, selectivity):
        """Estimated join output size."""
        return max(1.0, left_rows * right_rows * selectivity)

    def group_count(self, input_rows, ndv_list):
        """Estimated number of groups for a GROUP BY.

        Product of per-column distinct counts, damped and capped by the
        input size — the standard commercial heuristic.
        """
        if not ndv_list:
            return 1.0
        product = 1.0
        for ndv in ndv_list:
            product *= max(1, ndv)
            if product > 1e18:
                break
        damped = product ** self.policy.groupby_damping
        return max(1.0, min(damped, input_rows))

    def scaled_ndv(self, table, column, selected_rows):
        """Distinct values surviving a selection of ``selected_rows`` rows."""
        total = self.table_rows(table)
        ndv = self.n_distinct(table, column)
        if total <= 0:
            return 1
        frac = min(1.0, selected_rows / total)
        # Distinct-value survival under random selection.
        survived = ndv * (1.0 - (1.0 - frac) ** max(1.0, total / ndv))
        return max(1.0, survived)

    def require(self, condition, message):
        if not condition:
            raise PlanError(message)
