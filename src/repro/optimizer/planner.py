"""The cost-based planner.

Structure of an optimization run:

1. plan every IN-subquery (semijoin source): base-table scan+aggregate,
   index-only streaming aggregate, or a matching single-table view;
2. enumerate access paths per relation alias (seq scan, equality index
   scan, covering index-only scan);
3. try join-view rewrites that replace a joined pair of aliases by a
   materialized view scan;
4. dynamic-programming join enumeration (hash join both orientations,
   index-nested-loop join when the inner join column leads an index);
5. hash aggregation / projection on top.

All costs come from :mod:`repro.optimizer.cost_model` applied to the
estimator's cardinalities, so the executor can later charge identical
formulas with actual cardinalities.
"""

from .. import obs
from ..common.errors import PlanError
from . import cost_model as cm
from .plans import (
    HashAggregate,
    HashJoin,
    IndexNLJoin,
    IndexScan,
    PlanEstimate,
    Project,
    ScanFilter,
    SemiFilter,
    SemiIndexScan,
    SemiSource,
    SeqScan,
    ViewScan,
)

MAX_DP_RELATIONS = 6


class Planner:
    """Plans one bound query against a :class:`PlannerEnv`."""

    def __init__(self, env):
        self._env = env
        self._est = env.estimator
        self._hw = env.hardware

    # ------------------------------------------------------------------
    # Entry point

    def plan(self, bound):
        if not bound.relations:
            raise PlanError("query has no relations")
        if len(bound.relations) > MAX_DP_RELATIONS:
            raise PlanError(
                f"too many relations ({len(bound.relations)}) for the DP"
            )
        semi_sources = {
            id(semi): self._plan_semi_source(semi) for semi in bound.semijoins
        }
        paths = {
            alias: self._access_paths(bound, alias, semi_sources)
            for alias in bound.relations
        }
        obs.counter_add("optimizer.plans_enumerated")
        obs.counter_add(
            "optimizer.access_paths_considered",
            sum(len(alias_paths) for alias_paths in paths.values()),
        )
        best = self._enumerate_joins(bound, paths)
        return self._finalize(bound, best)

    # ------------------------------------------------------------------
    # Semijoin sources

    def _plan_semi_source(self, semi):
        table = semi.sub_table
        rows = self._est.table_rows(table)
        pages = self._est.table_pages(table)
        ndv = self._est.n_distinct(table, semi.sub_column)
        allowed = self._est.semijoin_allowed_values(semi)
        col_width = self._env.catalog.table(table).column(semi.sub_column).width

        candidates = []

        scan_cost = (
            cm.seq_scan(self._hw, pages, rows)
            + cm.hash_aggregate(self._hw, rows, ndv, col_width)
        )
        candidates.append((scan_cost, SemiSource(semi=semi, via="scan")))

        for info in self._env.indexes_on(table):
            if info.definition.columns[0] != semi.sub_column:
                continue
            cost = (
                cm.index_descend(self._hw, info.height)
                + info.leaf_pages * self._hw.seq_page_read_s
                + info.entries * self._hw.cpu_row_s * 2
            )
            candidates.append(
                (cost, SemiSource(semi=semi, via="index_only", index=info))
            )

        for view in self._env.views_on_table(table):
            gcols = view.definition.group_columns
            if len(gcols) != 1 or gcols[0].column != semi.sub_column:
                continue
            cost = cm.seq_scan(self._hw, view.page_count, view.rows)
            candidates.append(
                (cost, SemiSource(semi=semi, via="view", view=view))
            )

        cost, source = min(candidates, key=lambda item: item[0])
        source.est = PlanEstimate(rows=allowed, width=col_width, cost=cost)
        return source

    # ------------------------------------------------------------------
    # Access paths

    def _access_paths(self, bound, alias, semi_sources):
        table = bound.relations[alias]
        needed = bound.columns_of(alias)
        if not needed:
            # COUNT(*)-only references: carry the narrowest column so the
            # batch keeps its row count.
            schema_cols = self._env.catalog.table(table).columns
            needed = [min(schema_cols, key=lambda c: c.width).name]
        filters = [
            f for f in bound.filters if f.target.alias == alias
        ]
        semis = [
            s for s in bound.semijoins if s.target.alias == alias
        ]
        schema = self._env.catalog.table(table)
        rows = self._est.table_rows(table)
        pages = self._est.table_pages(table)

        filter_sel = 1.0
        for flt in filters:
            filter_sel *= self._est.filter_selectivity(table, flt)
        semi_sel = 1.0
        for semi in semis:
            semi_sel *= self._est.semijoin_selectivity(table, semi)
        out_rows = max(1.0, rows * filter_sel * semi_sel)
        out_width = sum(schema.column(c).width for c in needed) + cm.ROW_OVERHEAD

        semi_filters = [
            SemiFilter(
                key=f"{alias}.{s.target.column}",
                source=semi_sources[id(s)],
                selectivity=self._est.semijoin_selectivity(table, s),
            )
            for s in semis
        ]
        semi_cost = sum(sf.source.est.cost for sf in semi_filters)

        def scan_filters(subset):
            return [
                ScanFilter(
                    key=f"{alias}.{f.target.column}",
                    column=f.target.column,
                    op=f.op,
                    value=f.value,
                )
                for f in subset
            ]

        paths = []

        # Sequential scan.
        seq = SeqScan(
            alias=alias,
            table=table,
            columns=list(needed),
            filters=scan_filters(filters),
            semi_filters=semi_filters,
        )
        seq_cost = (
            cm.seq_scan(self._hw, pages, rows)
            + cm.filter_rows(self._hw, rows, len(filters) + len(semis))
            + semi_cost
        )
        seq.est = PlanEstimate(rows=out_rows, width=out_width, cost=seq_cost)
        paths.append(seq)

        eq_filters = [f for f in filters if f.op == "="]
        eq_by_col = {f.target.column: f for f in eq_filters}

        for info in self._env.indexes_on(table):
            prefix = []
            for col in info.definition.columns:
                if col in eq_by_col:
                    prefix.append(eq_by_col[col])
                else:
                    break
            covered = set(info.definition.columns)
            # Index-only is possible when the key covers everything the
            # scan touches; semijoin target columns count as touched.
            covering_with_semis = set(needed) <= covered and all(
                f.target.column in covered for f in filters
            ) and all(s.target.column in covered for s in semis)

            if prefix:
                prefix_sel = 1.0
                for flt in prefix:
                    prefix_sel *= self._est.filter_selectivity(table, flt)
                matched = max(1.0, rows * prefix_sel)
                residual = [f for f in filters if f not in prefix]
                index_only = covering_with_semis
                cost = (
                    cm.index_descend(self._hw, info.height)
                    + cm.index_leaf_range(
                        self._hw, matched, info.entries, info.leaf_pages
                    )
                    + semi_cost
                )
                if not index_only:
                    cost += cm.heap_fetch(
                        self._hw, matched, info.cluster_factor, pages, rows
                    )
                cost += cm.filter_rows(
                    self._hw, matched, len(residual) + len(semis)
                )
                node = IndexScan(
                    alias=alias,
                    table=table,
                    index=info,
                    columns=list(needed),
                    prefix_filters=scan_filters(prefix),
                    residual_filters=scan_filters(residual),
                    semi_filters=semi_filters,
                    index_only=index_only,
                )
                node.est = PlanEstimate(
                    rows=out_rows, width=out_width, cost=cost
                )
                paths.append(node)
            if not prefix and semi_filters:
                # Semijoin-driven probes: the subquery's allowed values
                # drive index lookups instead of a scan + membership test.
                for drive_pos, driving in enumerate(semi_filters):
                    target_col = semis[drive_pos].target.column
                    if info.definition.columns[0] != target_col:
                        continue
                    probes = driving.source.est.rows
                    matched = max(
                        1.0, rows * driving.selectivity
                    )
                    others = [
                        sf for j, sf in enumerate(semi_filters)
                        if j != drive_pos
                    ]
                    cost = (
                        semi_cost
                        + cm.index_probes(
                            self._hw, probes, info.entries, info.leaf_pages
                        )
                        + cm.heap_fetch(
                            self._hw, matched, info.cluster_factor, pages,
                            rows,
                        )
                        + cm.filter_rows(
                            self._hw, matched,
                            max(1, len(filters) + len(others)),
                        )
                    )
                    node = SemiIndexScan(
                        alias=alias,
                        table=table,
                        index=info,
                        driving=driving,
                        columns=list(needed),
                        residual_filters=scan_filters(filters),
                        semi_filters=others,
                    )
                    node.est = PlanEstimate(
                        rows=out_rows, width=out_width, cost=cost
                    )
                    paths.append(node)
            if not prefix and covering_with_semis and covered:
                # Full index-only scan: cheaper than the heap when the
                # index is much narrower than the table.
                cost = (
                    cm.index_descend(self._hw, info.height)
                    + info.leaf_pages * self._hw.seq_page_read_s
                    + cm.filter_rows(
                        self._hw, info.entries,
                        max(1, len(filters) + len(semis)),
                    )
                    + semi_cost
                )
                node = IndexScan(
                    alias=alias,
                    table=table,
                    index=info,
                    columns=list(needed),
                    prefix_filters=[],
                    residual_filters=scan_filters(filters),
                    semi_filters=semi_filters,
                    index_only=True,
                )
                node.est = PlanEstimate(
                    rows=out_rows, width=out_width, cost=cost
                )
                paths.append(node)
        return paths

    # ------------------------------------------------------------------
    # Join enumeration

    def _enumerate_joins(self, bound, paths):
        aliases = list(bound.relations)
        dp = {}
        for alias in aliases:
            best = min(paths[alias], key=lambda p: p.est.cost)
            dp[frozenset([alias])] = best

        self._seed_view_pairs(bound, dp)
        # A single-alias view rewrite must also be joinable as the
        # *extension* side of the DP, not only as the seed.
        for alias in aliases:
            seeded = dp.get(frozenset([alias]))
            if isinstance(seeded, ViewScan) and seeded not in paths[alias]:
                paths[alias] = paths[alias] + [seeded]

        n = len(aliases)
        for size in range(2, n + 1):
            for subset in _subsets(aliases, size):
                key = frozenset(subset)
                # A view pair may already be seeded at this key; joins can
                # still beat it, so keep enumerating against it.
                best = dp.get(key)
                for alias in subset:
                    rest = key - {alias}
                    if rest not in dp:
                        continue
                    outer = dp[rest]
                    preds = _connecting_preds(bound, rest, alias)
                    if not preds:
                        continue
                    for candidate in self._join_candidates(
                        bound, outer, alias, paths[alias], preds
                    ):
                        if best is None or candidate.est.cost < best.est.cost:
                            best = candidate
                if best is not None:
                    dp[key] = best

        full = frozenset(aliases)
        if full not in dp:
            # Disconnected join graph: fall back to cartesian extension.
            dp_full = self._cartesian_fallback(bound, dp, paths, aliases)
            if dp_full is None:
                raise PlanError("could not connect the join graph")
            dp[full] = dp_full
        return dp[full]

    def _join_candidates(self, bound, outer, alias, alias_paths, preds,
                         sel=None):
        table = bound.relations[alias]
        outer_rows = outer.est.rows
        if sel is None:
            sel = 1.0
            for pred in preds:
                (o_alias, o_col), (i_col,) = _orient(pred, alias)
                sel *= self._est.join_selectivity(
                    bound.relations[o_alias], o_col, table, i_col
                )
        candidates = []

        for inner_path in alias_paths:
            inner_rows = inner_path.est.rows
            out_rows = self._est.join_rows(outer_rows, inner_rows, sel)
            width = outer.est.width + inner_path.est.width
            left_keys, right_keys = [], []
            for pred in preds:
                (o_alias, o_col), (i_col,) = _orient(pred, alias)
                left_keys.append(f"{o_alias}.{o_col}")
                right_keys.append(f"{alias}.{i_col}")
            # Build on the smaller input.
            build_is_inner = inner_rows <= outer_rows
            build_rows = inner_rows if build_is_inner else outer_rows
            probe_rows = outer_rows if build_is_inner else inner_rows
            build_width = (
                inner_path.est.width if build_is_inner else outer.est.width
            )
            cost = (
                outer.est.cost
                + inner_path.est.cost
                + cm.hash_build(self._hw, build_rows, build_width)
                + cm.hash_probe(self._hw, probe_rows)
                + cm.join_output(self._hw, out_rows, width)
            )
            if build_is_inner:
                node = HashJoin(outer, inner_path, left_keys, right_keys)
            else:
                node = HashJoin(inner_path, outer, right_keys, left_keys)
            node.est = PlanEstimate(rows=out_rows, width=width, cost=cost)
            candidates.append(node)

        candidates.extend(
            self._inl_candidates(bound, outer, alias, preds, sel)
        )
        return candidates

    def _inl_candidates(self, bound, outer, alias, preds, sel):
        table = bound.relations[alias]
        needed = bound.columns_of(alias)
        schema = self._env.catalog.table(table)
        pages = self._est.table_pages(table)
        rows = self._est.table_rows(table)
        filters = [f for f in bound.filters if f.target.alias == alias]
        semis = [s for s in bound.semijoins if s.target.alias == alias]
        if semis:
            # Keep INL simple: inner semijoins force the scan-based paths.
            return []
        filter_sel = 1.0
        for flt in filters:
            filter_sel *= self._est.filter_selectivity(table, flt)

        candidates = []
        for pred in preds:
            (o_alias, o_col), (i_col,) = _orient(pred, alias)
            for info in self._env.indexes_on(table):
                if info.definition.columns[0] != i_col:
                    continue
                outer_rows = outer.est.rows
                matched = self._est.join_rows(outer_rows, rows, sel)
                out_rows = max(1.0, matched * filter_sel)
                width = outer.est.width + sum(
                    schema.column(c).width for c in needed
                ) + cm.ROW_OVERHEAD
                covered = set(info.definition.columns)
                index_only = set(needed) <= covered and all(
                    f.target.column in covered for f in filters
                )
                cost = outer.est.cost + cm.index_probes(
                    self._hw, outer_rows, info.entries, info.leaf_pages
                )
                if not index_only:
                    cost += cm.heap_fetch(
                        self._hw, matched, info.cluster_factor, pages, rows
                    )
                cost += cm.filter_rows(
                    self._hw, matched, max(1, len(filters))
                )
                cost += cm.join_output(self._hw, out_rows, width)
                extra = [p for p in preds if p is not pred]
                residual = [
                    ScanFilter(
                        key=f"{alias}.{f.target.column}",
                        column=f.target.column,
                        op=f.op,
                        value=f.value,
                    )
                    for f in filters
                ]
                node = IndexNLJoin(
                    outer=outer,
                    alias=alias,
                    table=table,
                    index=info,
                    outer_key=f"{o_alias}.{o_col}",
                    inner_column=i_col,
                    columns=list(needed),
                    residual_filters=residual,
                    semi_filters=[],
                    index_only=index_only,
                )
                node.extra_preds = [
                    (
                        f"{oa}.{oc}", ic
                    )
                    for (oa, oc), (ic,) in (_orient(p, alias) for p in extra)
                ]
                node.est = PlanEstimate(
                    rows=out_rows, width=width, cost=cost
                )
                candidates.append(node)
        return candidates

    # ------------------------------------------------------------------
    # View rewrites

    def _seed_view_pairs(self, bound, dp):
        # Only COUNT aggregates are decomposable over a pre-aggregated
        # view (COUNT(*) via batch weights, COUNT(DISTINCT c) because the
        # view preserves the distinct values of its group columns).
        if any(a.func != "count" for a in bound.aggregates):
            return
        self._seed_single_table_views(bound, dp)
        for view in self._env.join_views():
            pair = self._match_join_view(bound, view)
            if pair is None:
                continue
            aliases, column_map, filters = pair
            sel = 1.0
            table_by_alias = bound.relations
            for flt in filters:
                alias = flt.key.split(".", 1)[0]
                sel *= self._est.filter_selectivity(
                    table_by_alias[alias],
                    _FilterShim(flt),
                )
            rows = max(1.0, view.rows * sel)
            width = view.row_width
            cost = cm.seq_scan(self._hw, view.page_count, view.rows)
            cost += cm.filter_rows(self._hw, view.rows, max(1, len(filters)))
            node = ViewScan(
                view=view,
                aliases=aliases,
                column_map=column_map,
                filters=filters,
            )
            node.est = PlanEstimate(rows=rows, width=width, cost=cost)
            key = frozenset(aliases)
            if key not in dp or node.est.cost < dp[key].est.cost:
                dp[key] = node

    def _seed_single_table_views(self, bound, dp):
        """Replace one alias by a pre-aggregated single-table view.

        Valid when every column the query touches on the alias is a group
        column of the view and the alias carries no IN-subquery (count
        semantics then decompose through the view's ``cnt`` weights).
        """
        for view in self._env.views:
            vdef = view.definition
            if vdef.is_join_view:
                continue
            table = vdef.tables[0]
            for alias, alias_table in bound.relations.items():
                if alias_table != table:
                    continue
                if any(s.target.alias == alias for s in bound.semijoins):
                    continue
                column_map, ok = {}, True
                for col in bound.columns_of(alias):
                    vcol = vdef.column_for(table, col)
                    if vcol is None:
                        ok = False
                        break
                    column_map[f"{alias}.{col}"] = vcol.name
                if not ok or not column_map:
                    continue
                filters = [
                    ScanFilter(
                        key=f"{alias}.{f.target.column}",
                        column=vdef.column_for(
                            table, f.target.column
                        ).name,
                        op=f.op,
                        value=f.value,
                    )
                    for f in bound.filters
                    if f.target.alias == alias
                ]
                sel = 1.0
                for flt in bound.filters:
                    if flt.target.alias == alias:
                        sel *= self._est.filter_selectivity(table, flt)
                rows = max(1.0, view.rows * sel)
                cost = cm.seq_scan(self._hw, view.page_count, view.rows)
                if filters:
                    cost += cm.filter_rows(
                        self._hw, view.rows, len(filters)
                    )
                node = ViewScan(
                    view=view,
                    aliases=(alias,),
                    column_map=column_map,
                    filters=filters,
                )
                node.est = PlanEstimate(
                    rows=rows, width=view.row_width, cost=cost
                )
                key = frozenset([alias])
                if key not in dp or node.est.cost < dp[key].est.cost:
                    dp[key] = node

    def _match_join_view(self, bound, view):
        """Match a join view against a pair of the query's aliases."""
        vdef = view.definition
        (vt1, vc1), (vt2, vc2) = vdef.join_pred
        for pred in bound.join_preds:
            la, lc = pred.left.alias, pred.left.column
            ra, rc = pred.right.alias, pred.right.column
            lt, rt = bound.relations[la], bound.relations[ra]
            if la == ra:
                continue
            direct = (lt, lc, rt, rc) == (vt1, vc1, vt2, vc2)
            flipped = (rt, rc, lt, lc) == (vt1, vc1, vt2, vc2)
            if not (direct or flipped):
                continue
            aliases = (la, ra)
            # Any alias may be referenced elsewhere only through columns
            # the view preserves.  The pair's own join columns are only
            # needed if something *outside* this predicate uses them.
            internal_cols = _pred_column_uses(bound, pred)
            column_map = {}
            ok = True
            for alias in aliases:
                table = bound.relations[alias]
                for col in bound.columns_of(alias):
                    if (alias, col) in internal_cols:
                        continue
                    vcol = vdef.column_for(table, col)
                    if vcol is None:
                        ok = False
                        break
                    column_map[f"{alias}.{col}"] = vcol.name
                if not ok:
                    break
            if not ok:
                continue
            # No semijoins on the replaced aliases; other join preds
            # between the two aliases would change the view's join.
            if any(s.target.alias in aliases for s in bound.semijoins):
                continue
            internal = [
                p for p in bound.join_preds
                if {p.left.alias, p.right.alias} == set(aliases)
            ]
            if len(internal) != 1:
                continue
            filters = [
                ScanFilter(
                    key=f"{f.target.alias}.{f.target.column}",
                    column=vdef.column_for(
                        bound.relations[f.target.alias], f.target.column
                    ).name,
                    op=f.op,
                    value=f.value,
                )
                for f in bound.filters
                if f.target.alias in aliases
            ]
            return aliases, column_map, filters
        return None

    def _cartesian_fallback(self, bound, dp, paths, aliases):
        del bound, paths
        full = None
        for key, plan in dp.items():
            if full is None or len(key) > len(full[0]):
                full = (key, plan)
        return None if full is None or len(full[0]) != len(aliases) else full[1]

    # ------------------------------------------------------------------
    # Final aggregation / projection

    def _finalize(self, bound, child):
        if not bound.aggregates and not bound.group_by:
            keys = [
                f"{ref.alias}.{ref.column}"
                for kind, ref in bound.output
                if kind == "col"
            ]
            node = Project(child, keys)
            node.est = PlanEstimate(
                rows=child.est.rows,
                width=child.est.width,
                cost=child.est.cost + cm.filter_rows(self._hw, child.est.rows),
            )
            return node
        group_keys = [f"{c.alias}.{c.column}" for c in bound.group_by]
        ndvs = [
            self._est.scaled_ndv(
                bound.relations[c.alias], c.column, child.est.rows
            )
            for c in bound.group_by
        ]
        groups = self._est.group_count(child.est.rows, ndvs)
        width = child.est.width
        cost = child.est.cost + cm.hash_aggregate(
            self._hw, child.est.rows, groups, width
        )
        node = HashAggregate(child, group_keys, list(bound.aggregates))
        node.est = PlanEstimate(rows=groups, width=width, cost=cost)
        return node


class _FilterShim:
    """Adapts a ScanFilter to the estimator's Filter interface."""

    def __init__(self, scan_filter):
        alias, column = scan_filter.key.split(".", 1)
        self.target = _TargetShim(alias, column)
        self.op = scan_filter.op
        self.value = scan_filter.value


class _TargetShim:
    def __init__(self, alias, column):
        self.alias = alias
        self.column = column


def _pred_column_uses(bound, pred):
    """(alias, column) pairs used *only* by the given join predicate."""
    internal = {
        (pred.left.alias, pred.left.column),
        (pred.right.alias, pred.right.column),
    }
    used_elsewhere = set()
    for other in bound.join_preds:
        if other is pred:
            continue
        used_elsewhere.add((other.left.alias, other.left.column))
        used_elsewhere.add((other.right.alias, other.right.column))
    for flt in bound.filters:
        used_elsewhere.add((flt.target.alias, flt.target.column))
    for semi in bound.semijoins:
        used_elsewhere.add((semi.target.alias, semi.target.column))
    for col in bound.group_by:
        used_elsewhere.add((col.alias, col.column))
    for agg in bound.aggregates:
        if agg.arg is not None:
            used_elsewhere.add((agg.arg.alias, agg.arg.column))
    for kind, ref in bound.output:
        if kind == "col":
            used_elsewhere.add((ref.alias, ref.column))
    return internal - used_elsewhere


def _subsets(items, size):
    from itertools import combinations

    return combinations(items, size)


def _connecting_preds(bound, subset, alias):
    preds = []
    for pred in bound.join_preds:
        sides = {pred.left.alias, pred.right.alias}
        if alias in sides and (sides - {alias}) and (
            next(iter(sides - {alias})) in subset
        ):
            preds.append(pred)
    return preds


def _orient(pred, inner_alias):
    """Return ``((outer_alias, outer_col), (inner_col,))`` for a pred."""
    if pred.right.alias == inner_alias:
        return (pred.left.alias, pred.left.column), (pred.right.column,)
    if pred.left.alias == inner_alias:
        return (pred.right.alias, pred.right.column), (pred.left.column,)
    raise PlanError("predicate does not touch the inner alias")
