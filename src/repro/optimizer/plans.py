"""Physical plan nodes.

A plan is a tree of dataclasses; the planner attaches a
:class:`PlanEstimate` (estimated rows, width, cumulative cost) to every
node, and the executor walks the same tree charging *actual* costs to the
virtual clock.  Batch columns are keyed ``"alias.column"``.
"""

from dataclasses import dataclass, field


@dataclass
class PlanEstimate:
    """Optimizer annotations on a node."""

    rows: float
    width: float
    cost: float


@dataclass
class SemiSource:
    """The inner of an IN-subquery: produces the allowed-value set.

    ``via`` selects the physical strategy:

    * ``'scan'``        — seq scan + hash aggregate over the base table;
    * ``'index_only'``  — stream the aggregate off an index whose leading
      column is the subquery column;
    * ``'view'``        — read a matching single-table aggregate view
      (optionally through an index on the view).
    """

    semi: object                   # binder.SemiJoin
    via: str
    index: object = None           # IndexInfo (base table or view index)
    view: object = None            # ViewInfo for via='view'
    est: PlanEstimate = None

    def describe(self):
        target = f"{self.semi.sub_table}.{self.semi.sub_column}"
        return f"semi[{self.via}] {target} {self.semi.having_op} {self.semi.having_value}"


@dataclass
class SemiFilter:
    """Membership filter of a scan column against a SemiSource result."""

    key: str                       # "alias.column" being filtered
    source: SemiSource
    selectivity: float = 1.0


@dataclass
class ScanFilter:
    """Literal comparison applied at a scan."""

    key: str                       # "alias.column"
    column: str
    op: str
    value: object


@dataclass
class PlanNode:
    """Base class for physical nodes."""

    est: PlanEstimate = field(default=None, init=False)

    def children(self):
        return []

    def describe(self):
        return type(self).__name__


@dataclass
class SeqScan(PlanNode):
    """Full scan of a base table bound to ``alias``."""

    alias: str
    table: str
    columns: list                  # output column names of the base table
    filters: list = field(default_factory=list)
    semi_filters: list = field(default_factory=list)

    def describe(self):
        return f"SeqScan({self.alias}={self.table})"


@dataclass
class IndexScan(PlanNode):
    """Equality index scan with optional heap fetch.

    ``prefix_filters`` are the filters consumed by the index prefix (in
    key order); the rest are applied after the fetch.  When ``index_only``
    the needed columns are covered by the key and no heap fetch happens.
    """

    alias: str
    table: str
    index: object                  # IndexInfo
    columns: list
    prefix_filters: list = field(default_factory=list)
    residual_filters: list = field(default_factory=list)
    semi_filters: list = field(default_factory=list)
    index_only: bool = False

    def describe(self):
        kind = "IndexOnlyScan" if self.index_only else "IndexScan"
        cols = ",".join(self.index.definition.columns)
        return f"{kind}({self.alias}={self.table} via [{cols}])"


@dataclass
class SemiIndexScan(PlanNode):
    """Semijoin-driven index scan.

    The allowed-value set of an IN-subquery drives batch probes into an
    index on the filtered column, instead of scanning the table and
    filtering by membership.  Wins when the subquery yields few values;
    the planner costs both shapes and picks.
    """

    alias: str
    table: str
    index: object                  # IndexInfo led by the semijoin column
    driving: object                # SemiFilter whose source provides probes
    columns: list
    residual_filters: list = field(default_factory=list)
    semi_filters: list = field(default_factory=list)   # remaining semis

    def describe(self):
        return (
            f"SemiIndexScan({self.alias}={self.table} via "
            f"[{','.join(self.index.definition.columns)}])"
        )


@dataclass
class ViewScan(PlanNode):
    """Scan of a materialized view standing in for one or two aliases.

    ``column_map`` maps output batch keys (``"alias.column"``) to view
    column names; the view's ``cnt`` column becomes the batch weight.
    """

    view: object                   # ViewInfo
    aliases: tuple
    column_map: dict
    filters: list = field(default_factory=list)
    index: object = None           # optional IndexInfo on the view

    def describe(self):
        return f"ViewScan({self.view.definition.name})"


@dataclass
class HashJoin(PlanNode):
    """Equality hash join; the right side is the build side."""

    left: PlanNode
    right: PlanNode
    left_keys: list                # batch keys on the probe side
    right_keys: list               # batch keys on the build side

    def children(self):
        return [self.left, self.right]

    def describe(self):
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin({keys})"


@dataclass
class IndexNLJoin(PlanNode):
    """Index-nested-loop join: probe ``index`` on the inner table.

    The outer side streams probe values from ``outer_key``; matched inner
    rows are fetched and filtered by the residual predicates.
    """

    outer: PlanNode
    alias: str
    table: str
    index: object                  # IndexInfo on the inner table
    outer_key: str                 # batch key on the outer side
    inner_column: str              # leading index column being probed
    columns: list
    residual_filters: list = field(default_factory=list)
    semi_filters: list = field(default_factory=list)
    index_only: bool = False

    def children(self):
        return [self.outer]

    def describe(self):
        kind = "IndexOnlyNLJoin" if self.index_only else "IndexNLJoin"
        return (
            f"{kind}({self.outer_key} -> "
            f"{self.alias}.{self.inner_column})"
        )


@dataclass
class HashAggregate(PlanNode):
    """Hash aggregation (grand total when ``group_keys`` is empty)."""

    child: PlanNode
    group_keys: list               # batch keys
    aggregates: list               # binder.AggSpec list

    def children(self):
        return [self.child]

    def describe(self):
        return f"HashAggregate({', '.join(self.group_keys) or 'ALL'})"


@dataclass
class Project(PlanNode):
    """Column projection for non-aggregating queries."""

    child: PlanNode
    keys: list

    def children(self):
        return [self.child]


def walk(plan):
    """Yield every node of the plan tree (pre-order)."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def explain(plan, indent=0):
    """Multi-line EXPLAIN-style rendering of a plan."""
    pad = "  " * indent
    est = plan.est
    suffix = ""
    if est is not None:
        suffix = f"  (rows={est.rows:.0f} cost={est.cost:.2f}s)"
    lines = [f"{pad}{plan.describe()}{suffix}"]
    scans = getattr(plan, "semi_filters", None)
    if scans:
        for semi in scans:
            lines.append(f"{pad}  [semi] {semi.source.describe()}")
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
