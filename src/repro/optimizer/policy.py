"""Estimator policies.

A policy bundles the estimation assumptions one "system" makes.  Real
configurations are estimated with the system's full fidelity
(``for_system``); what-if calls about hypothetical configurations use the
degraded ``hypothetical`` variant — no MCV lookups, no frequency profile,
worst-case cluster factors — reproducing the paper's Figure 10 finding
that hypothetical estimates are systematically more conservative than
estimates taken in the target configuration.
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EstimatorPolicy:
    """Knobs of the cardinality estimator."""

    use_mcvs: bool = True
    use_frequency_profile: bool = True
    default_semijoin_selectivity: float = 0.25
    default_eq_selectivity: float = 0.01
    groupby_damping: float = 0.8
    hypothetical: bool = False

    def as_hypothetical(self):
        """The degraded policy used for what-if estimation."""
        return replace(
            self,
            use_mcvs=False,
            use_frequency_profile=False,
            hypothetical=True,
        )
