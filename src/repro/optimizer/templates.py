"""Cross-query plan templates (``REPRO_PLAN_TEMPLATES``).

Benchmark workloads are template-generated: a family fixes the join
shape, aggregates and predicate columns while the constant-selection
ladders vary the literals.  Every member still pays a full optimization
— semijoin-source planning, access-path discovery, and the dynamic
programming join enumeration — even though only the constants (and
therefore only the *costs*, never the candidate structure) change.

A :class:`PlanTemplate` captures what is provably shared by every query
with the same :func:`template_key`:

* the **join program**: the exact sequence of DP extension steps
  ``(subset, alias, rest, preds)`` the enumeration would evaluate,
  derived once from the join graph.

The program is *purely structural* — a function of the relations and
join predicates the key pins literally, never of the environment.
Everything environment- or member-specific is recomputed at replay
through the *same* planner code: semijoin sources, join selectivities,
filter selectivities, access paths, join candidate costing, build-side
choices, the final aggregation.  The produced plan is therefore
bit-identical to a full enumeration — including data-dependent
plan-shape flips — and one template serves every environment that
presents the same structure (the real configuration and each what-if
candidate a recommender probes).  What a replay skips is the structure
discovery itself: subset generation, join-graph connectivity, and
reachability bookkeeping.

``optimizer.plans_enumerated`` therefore counts only full enumerations
(template misses and fallbacks); replays count ``template.plan_replays``.

The key abstracts filter constants entirely instead of bucketing them:
replays recompute every filter selectivity, so members whose constants
land in different selectivity buckets still share one template.  The
workload layer's coarser identity (family + ladder bucket, see
:meth:`repro.workload.workload.QueryInstance.template_key`) predicts
which instances collapse here.
"""

from dataclasses import dataclass

from .. import obs
from ..common import knobs
from .planner import (
    MAX_DP_RELATIONS,
    Planner,
    _connecting_preds,
    _subsets,
)

TEMPLATES_ENV = "REPRO_PLAN_TEMPLATES"


def templates_enabled(flag=None):
    """Whether the template plan caches are on.

    ``flag`` overrides when given; otherwise ``REPRO_PLAN_TEMPLATES``
    decides (default on, ``0``/``false``/``no``/``off`` disable).
    """
    return knobs.flag(TEMPLATES_ENV, flag)


# ----------------------------------------------------------------------
# Template identity


def template_key(bound, env):
    """Structural identity of a bound query under a planner environment.

    Two bound queries with the same key are guaranteed to drive the DP
    enumeration through the same extension steps: same relations, join
    graph, aggregate shape, and semijoins (literally, constants
    included).  Filter columns that nothing else references are
    abstracted to positional slots; every other column is pinned
    literally.  The environment does not enter the key — the shared
    recipe is purely structural, so one template serves the real
    configuration and every what-if candidate alike (the env argument
    only gates the view guard below).

    Returns ``None`` when the query is outside the template-safe subset
    and must take the ordinary planner path:

    * no relations, or more than the DP bound (the planner's own error
      paths must fire unchanged);
    * the environment defines materialized views (view matching inspects
      concrete column names and aggregate decomposability — it is not
      slot-invariant);
    * duplicate filters on one ``(alias, column)`` (the planner's
      last-wins equality-map and residual-filter semantics are then
      position- and value-sensitive).
    """
    if not bound.relations or len(bound.relations) > MAX_DP_RELATIONS:
        return None
    if env.views:
        return None
    seen = set()
    for flt in bound.filters:
        target = (flt.target.alias, flt.target.column)
        if target in seen:
            return None
        seen.add(target)

    pinned = set()
    for pred in bound.join_preds:
        for side in (pred.left, pred.right):
            pinned.add((side.alias, side.column))
    for semi in bound.semijoins:
        pinned.add((semi.target.alias, semi.target.column))
    for col in bound.group_by:
        pinned.add((col.alias, col.column))
    for agg in bound.aggregates:
        if agg.arg is not None:
            pinned.add((agg.arg.alias, agg.arg.column))
    for kind, ref in bound.output:
        if kind == "col":
            pinned.add((ref.alias, ref.column))

    slots = {}
    filters = []
    for flt in bound.filters:
        target = (flt.target.alias, flt.target.column)
        if target in pinned:
            label = f"={flt.target.column}"
        else:
            if target not in slots:
                slots[target] = f"s{len(slots)}"
            label = slots[target]
        filters.append((flt.target.alias, label, flt.op))

    return (
        tuple(bound.relations.items()),
        tuple((str(p.left), str(p.right)) for p in bound.join_preds),
        tuple(filters),
        tuple(
            (str(s.target), s.sub_table, s.sub_column, s.having_op)
            for s in bound.semijoins
        ),
        tuple(str(c) for c in bound.group_by),
        tuple(
            (a.func, None if a.arg is None else str(a.arg), a.distinct)
            for a in bound.aggregates
        ),
        tuple(
            (kind, str(ref) if kind == "col" else ref)
            for kind, ref in bound.output
        ),
    )


# ----------------------------------------------------------------------
# Recipes


@dataclass
class _Recipe:
    """What one template shares: the structural DP join program."""

    steps: list          # (subset, alias, rest, pred indexes)


class PlanTemplate:
    """Mutable cache entry for one ``(environment, template_key)``.

    The first query to arrive runs the full enumeration and publishes
    the recipe; later members replay it.  Publication is a single
    attribute store, so concurrent discoveries race benignly (both
    compute identical recipes and either may win).
    """

    __slots__ = ("recipe", "unsupported")

    def __init__(self):
        self.recipe = None
        self.unsupported = False


class TemplatePlanner(Planner):
    """A planner that discovers or replays a :class:`PlanTemplate`."""

    def plan_with_template(self, bound, template):
        recipe = template.recipe
        if recipe is not None:
            return self._replay(bound, recipe)
        plan = super().plan(bound)
        if not template.unsupported:
            recipe = self._compile(bound)
            if recipe is None:
                template.unsupported = True
                obs.counter_add("template.unsupported")
            else:
                template.recipe = recipe
                obs.counter_add("template.plan_builds")
        return plan

    # -- discovery ------------------------------------------------------

    def _compile(self, bound):
        """Derive the shared recipe; None when the program cannot cover
        the query (disconnected join graph — the cartesian fallback is
        dict-order-sensitive, so such queries keep full planning)."""
        steps = self._build_program(bound)
        if steps is None:
            return None
        return _Recipe(steps=steps)

    def _build_program(self, bound):
        """The exact (subset, alias) extension sequence the DP evaluates.

        Mirrors :meth:`Planner._enumerate_joins` with no views in the
        environment (guaranteed by :func:`template_key`): a subset enters
        the table iff one of its alias splits has a reachable remainder
        and at least one connecting predicate.
        """
        aliases = list(bound.relations)
        reachable = {frozenset([alias]) for alias in aliases}
        steps = []
        for size in range(2, len(aliases) + 1):
            for subset in _subsets(aliases, size):
                key = frozenset(subset)
                extended = False
                for alias in subset:
                    rest = key - {alias}
                    if rest not in reachable:
                        continue
                    preds = _connecting_preds(bound, rest, alias)
                    if not preds:
                        continue
                    steps.append((
                        key,
                        alias,
                        rest,
                        tuple(bound.join_preds.index(p) for p in preds),
                    ))
                    extended = True
                if extended:
                    reachable.add(key)
        if frozenset(aliases) not in reachable:
            return None
        return steps

    # -- replay ---------------------------------------------------------

    def _replay(self, bound, recipe):
        """Re-cost the member through the recorded program.

        Every member- or environment-specific quantity — semijoin
        sources, join selectivities, filter selectivities, access path
        costs, join candidate costs, build-side choices, the final
        aggregation estimate — is recomputed by the inherited planner
        methods against *this* planner's environment, so the result is
        bit-identical to a full enumeration, and the purely structural
        recipe is safe to share across environments.
        """
        semi_sources = {
            id(semi): self._plan_semi_source(semi)
            for semi in bound.semijoins
        }
        paths = {
            alias: self._access_paths(bound, alias, semi_sources)
            for alias in bound.relations
        }
        obs.counter_add("template.plan_replays")
        obs.counter_add(
            "optimizer.access_paths_considered",
            sum(len(alias_paths) for alias_paths in paths.values()),
        )
        dp = {}
        for alias in bound.relations:
            dp[frozenset([alias])] = min(
                paths[alias], key=lambda p: p.est.cost
            )
        for key, alias, rest, pred_idx in recipe.steps:
            outer = dp[rest]
            preds = [bound.join_preds[i] for i in pred_idx]
            best = dp.get(key)
            for candidate in self._join_candidates(
                bound, outer, alias, paths[alias], preds
            ):
                if best is None or candidate.est.cost < best.est.cost:
                    best = candidate
            dp[key] = best
        return self._finalize(bound, dp[frozenset(bound.relations)])
