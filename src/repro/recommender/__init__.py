"""Configuration recommenders."""

from .goal_driven import GoalDrivenRecommender, GoalRecommendation
from .profiles import RecommenderProfile
from .whatif import RecommendationReport, WhatIfRecommender

__all__ = [
    "GoalDrivenRecommender",
    "GoalRecommendation",
    "RecommendationReport",
    "RecommenderProfile",
    "WhatIfRecommender",
]
