"""Candidate generation for the what-if recommender.

Per query, the advisor derives *indexable column roles* — equality-filter
columns (E), join columns (J), IN-subquery columns (S), and group-by
columns (G) — and proposes:

* single-column indexes on every E/J/S/G column;
* composite indexes whose column order follows the system's
  ``leading_strategy`` (selective-first vs groupby-first), up to the
  profile's ``max_index_width``;
* for view-capable systems, single-table aggregate views answering the
  IN-subqueries and join aggregate views covering a query's join pair.

This mirrors the per-query "candidate configuration" stage of the
AutoAdmin / DB2 Advisor architecture the paper describes in Section 2.2.
"""

from dataclasses import dataclass, field

from ..index.definition import IndexDefinition
from ..views.matview import MatViewDefinition, ViewColumn


@dataclass
class QueryRoles:
    """Column roles of one bound query, per base table."""

    eq_filter: dict = field(default_factory=dict)   # table -> [col]
    join: dict = field(default_factory=dict)
    semi: dict = field(default_factory=dict)
    group_by: dict = field(default_factory=dict)

    def tables(self):
        names = set()
        for mapping in (self.eq_filter, self.join, self.semi, self.group_by):
            names.update(mapping)
        return sorted(names)

    def columns(self, table):
        """Role-ordered distinct columns of one table."""
        ordered = []
        for mapping in (self.eq_filter, self.join, self.semi, self.group_by):
            for col in mapping.get(table, []):
                if col not in ordered:
                    ordered.append(col)
        return ordered


def roles_of(bound):
    """Extract :class:`QueryRoles` from a bound query."""
    roles = QueryRoles()

    def add(mapping, table, column):
        cols = mapping.setdefault(table, [])
        if column not in cols:
            cols.append(column)

    for flt in bound.filters:
        if flt.op == "=":
            add(roles.eq_filter, bound.relations[flt.target.alias],
                flt.target.column)
    for pred in bound.join_preds:
        for side in (pred.left, pred.right):
            add(roles.join, bound.relations[side.alias], side.column)
    for semi in bound.semijoins:
        add(roles.semi, bound.relations[semi.target.alias],
            semi.target.column)
        add(roles.semi, semi.sub_table, semi.sub_column)
    for col in bound.group_by:
        add(roles.group_by, bound.relations[col.alias], col.column)
    return roles


def _ordered_columns(roles, table, strategy):
    eq = roles.eq_filter.get(table, [])
    join = roles.join.get(table, [])
    semi = roles.semi.get(table, [])
    group = roles.group_by.get(table, [])
    if strategy == "groupby-first":
        ordered = group + eq + join + semi
    else:
        ordered = eq + join + semi + group
    seen, result = set(), []
    for col in ordered:
        if col not in seen:
            seen.add(col)
            result.append(col)
    return result


def index_candidates(bound, catalog, profile):
    """Index candidates of one query under a recommender profile."""
    roles = roles_of(bound)
    candidates = []
    for table in roles.tables():
        schema = catalog.table(table)
        usable = [
            c for c in roles.columns(table)
            if schema.has_column(c) and schema.column(c).indexable
        ]
        for col in usable:
            candidates.append(IndexDefinition(table=table, columns=(col,)))
        ordered = [
            c for c in _ordered_columns(roles, table, profile.leading_strategy)
            if c in usable
        ]
        for width in range(2, profile.max_index_width + 1):
            if len(ordered) < width:
                break
            candidates.append(
                IndexDefinition(table=table, columns=tuple(ordered[:width]))
            )
    return candidates


def view_candidates(bound, catalog, profile):
    """Materialized-view candidates of one query (view-capable systems)."""
    if not profile.consider_views:
        return []
    candidates = []
    for semi in bound.semijoins:
        candidates.append(
            MatViewDefinition(
                tables=(semi.sub_table,),
                group_columns=(ViewColumn(semi.sub_table, semi.sub_column),),
            )
        )
    if any(agg.func != "count" for agg in bound.aggregates):
        return candidates
    # Single-table pre-aggregations: one view per alias, grouping by
    # exactly the columns the query touches on it (DB2-advisor style
    # "lossless" candidate).
    for alias, table in bound.relations.items():
        if any(s.target.alias == alias for s in bound.semijoins):
            continue
        cols = bound.columns_of(alias)
        if not cols or len(cols) > 5:
            continue
        schema = catalog.table(table)
        if not all(schema.column(c).indexable for c in cols):
            continue
        candidates.append(
            MatViewDefinition(
                tables=(table,),
                group_columns=tuple(ViewColumn(table, c) for c in cols),
            )
        )
    # Join views over a query's join pair, preserving every column the
    # query touches on those tables.
    for pred in bound.join_preds:
        la, ra = pred.left.alias, pred.right.alias
        lt, rt = bound.relations[la], bound.relations[ra]
        if lt == rt:
            continue
        if any(s.target.alias in (la, ra) for s in bound.semijoins):
            continue
        internal = [
            p for p in bound.join_preds
            if {p.left.alias, p.right.alias} == {la, ra}
        ]
        if len(internal) != 1:
            continue
        group_cols, ok = [], True
        for alias, table in ((la, lt), (ra, rt)):
            for col in bound.columns_of(alias):
                if not catalog.table(table).column(col).indexable:
                    ok = False
                    break
                vcol = ViewColumn(table, col)
                if vcol not in group_cols:
                    group_cols.append(vcol)
            if not ok:
                break
        if not ok or not group_cols:
            continue
        candidates.append(
            MatViewDefinition(
                tables=(lt, rt),
                join_pred=(
                    (lt, pred.left.column),
                    (rt, pred.right.column),
                ),
                group_columns=tuple(group_cols),
            )
        )
    return candidates
