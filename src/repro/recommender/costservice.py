"""The what-if cost service: memoized ``H`` costs for the recommenders.

The paper's central diagnostic (Section 5) is that recommender quality
is bounded by the optimizer's hypothetical estimates ``H(q, Ch, Ca)`` —
and in this reproduction those what-if calls are also the dominant
runtime cost: every greedy round re-prices every surviving candidate
against its relevant queries.  The database's plan cache keys ``H`` by
the *full* trial-configuration fingerprint, which changes every round
(the current configuration grows), so cross-round repeats always miss.

This service sits between the recommenders and
:meth:`~repro.engine.database.Database.estimate_hypothetical` and adds
**atomic-configuration memoization**: the cost of a query is keyed by
the fingerprint of the *relevant subset* of the trial configuration's
structures — exactly the indexes and views the planner could put into a
plan for that query.  The usability rules are read off the planner
(:class:`QueryProfile`): an index participates only via an
equality-prefix scan, a semijoin source/probe, an index-nested-loop
inner, or a covering index-only scan, and views only rewrite
COUNT-shaped aggregates (plus semijoin-source pre-aggregations) — so
two trial configurations that agree on a query's relevant subset yield
the same cost, however much they differ elsewhere.  Concretely: once candidate
``X`` has been priced against query ``q`` in round 1, selecting an
unrelated structure ``Y`` does not force ``q`` to be re-planned against
``current + Y + X`` in round 2 — the round-1 cost is reused.

The memo lives in the owning database's
:attr:`~repro.engine.database.Database.whatif_cache`, so it is dropped
by the same ``invalidate_caches`` path as every plan: applying a
configuration, inserting rows, collecting statistics, or (re)loading a
table all clear it.

The whole service is an optimization layer: with ``REPRO_WHATIF_CACHE=0``
the recommenders fall back to the plain serial path, and the recommended
configurations are byte-identical either way (CI enforces this).
"""

import threading

from .. import obs
from ..common import knobs
from ..engine.configuration import (
    content_fingerprint,
    index_content_key,
    view_content_key,
)

CACHE_ENV = "REPRO_WHATIF_CACHE"


def service_enabled(flag=None):
    """Whether the cost service is on: argument, else ``REPRO_WHATIF_CACHE``.

    Any value other than ``"0"``, ``"false"``, ``"no"`` or ``"off"``
    (case-insensitive) enables it; the default — no environment variable
    at all — is enabled.
    """
    return knobs.flag(CACHE_ENV, flag)


def query_tables(bound):
    """The set of base tables a bound query touches (incl. semijoins)."""
    tables = set(bound.relations.values())
    for semi in bound.semijoins:
        tables.add(semi.sub_table)
    return tables


class QueryProfile:
    """Pre-extracted facts the planner's structure-usage rules consult.

    Mirrors :mod:`repro.optimizer.planner` exactly: an index can enter a
    plan only as an equality-prefix scan, a semijoin source or probe, an
    index-nested-loop inner, or a covering index-only scan; views rewrite
    only COUNT-shaped aggregates, except single-column pre-aggregations
    serving a semijoin source.  Everything those rules look at — equality
    filter columns, join columns, semijoin columns, and each alias's
    touched-column set — is captured here once per query so
    :func:`relevant_fingerprint` can test candidate structures cheaply.
    """

    __slots__ = ("tables", "first_cols", "touched", "count_only",
                 "semi_views")

    def __init__(self, bound, catalog):
        self.tables = query_tables(bound)
        # Columns that make an index on the table usable when they LEAD
        # the index key: equality filters (prefix scans), semijoin target
        # columns (semi-driven probes), join columns (INL inners), and
        # semijoin subquery columns (index-only semi sources).
        self.first_cols = {t: set() for t in self.tables}
        # Per alias: every column the scan touches; an index covering one
        # of these sets is usable as an index-only scan.
        self.touched = {}
        for semi in bound.semijoins:
            self.first_cols[semi.sub_table].add(semi.sub_column)
        for pred in bound.join_preds:
            for ref in (pred.left, pred.right):
                self.first_cols[bound.relations[ref.alias]].add(ref.column)
        for alias, table in bound.relations.items():
            first = self.first_cols[table]
            filters = [f for f in bound.filters if f.target.alias == alias]
            semis = [s for s in bound.semijoins if s.target.alias == alias]
            for flt in filters:
                if flt.op == "=":
                    first.add(flt.target.column)
            for semi in semis:
                first.add(semi.target.column)
            needed = bound.columns_of(alias)
            if not needed:
                # The planner's COUNT(*)-only fallback: it scans the
                # narrowest column, so that is what covering must cover.
                columns = catalog.table(table).columns
                needed = [min(columns, key=lambda c: c.width).name]
            touched = set(needed)
            touched.update(f.target.column for f in filters)
            touched.update(s.target.column for s in semis)
            self.touched.setdefault(table, []).append(frozenset(touched))
        self.count_only = all(a.func == "count" for a in bound.aggregates)
        self.semi_views = {
            (s.sub_table, s.sub_column) for s in bound.semijoins
        }

    def index_usable(self, definition):
        """Whether the planner could put this index into any plan."""
        first = self.first_cols.get(definition.table)
        if first is None:
            return False        # a table (or view) the query never reads
        columns = definition.columns
        if columns[0] in first:
            return True
        covered = set(columns)
        return any(
            touched <= covered
            for touched in self.touched.get(definition.table, ())
        )

    def view_relevant(self, view):
        """Whether the planner could rewrite part of the query with it."""
        if self.count_only:
            # View rewrites are on the table: conservative table-overlap.
            return any(t in self.tables for t in view.tables)
        # Non-COUNT aggregates rule out every rewrite except the
        # semijoin-source scan of a single-column pre-aggregation.
        if view.is_join_view or len(view.group_columns) != 1:
            return False
        gcol = view.group_columns[0]
        return (view.tables[0], gcol.column) in self.semi_views


def query_profile(bound, catalog):
    """The :class:`QueryProfile` of a bound query."""
    return QueryProfile(bound, catalog)


def relevant_fingerprint(bound, config, catalog=None, profile=None):
    """Fingerprint of the structures of ``config`` that can affect ``bound``.

    Keys the atomic memo by exactly the structures the planner could use
    for this query (see :class:`QueryProfile`); indexes *on views* are
    excluded entirely because the planner never consults them.  The
    fingerprint is order-insensitive, mirroring
    :meth:`~repro.engine.configuration.Configuration.fingerprint`.
    """
    if profile is None:
        profile = QueryProfile(bound, catalog)
    view_keys = [
        view_content_key(view)
        for view in config.views
        if profile.view_relevant(view)
    ]
    index_keys = [
        index_content_key(ix)
        for ix in config.indexes
        if profile.index_usable(ix)
    ]
    return content_fingerprint(
        tuple(sorted(index_keys)),
        tuple(sorted(repr(key) for key in view_keys)),
    )


class WhatIfCostService:
    """Memoized what-if costing over one database.

    Args:
        database: the :class:`~repro.engine.database.Database` whose
            optimizer answers the what-if calls (and whose
            ``whatif_cache`` stores the atomic memo).
        session: optional :class:`~repro.runtime.session.MeasurementSession`
            whose worker pool serves ``parallel=True`` batches.

    Thread-safe: the recommenders evaluate whole candidate batches on
    session worker threads, each calling :meth:`costs` concurrently; the
    memo is a locked :class:`~repro.runtime.cache.BoundedCache`, the
    database's own planning path is already shareable, and the service's
    local hit/miss counters and profile memo are guarded by their own
    lock (unguarded ``+=`` from workers would silently under-count).
    """

    def __init__(self, database, session=None):
        self._db = database
        self._session = session
        # Query profiles depend only on the bound query and the catalog,
        # so one per SQL text serves every round of a recommender run.
        self._profiles = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _profile(self, bound):
        with self._lock:
            profile = self._profiles.get(bound.sql)
        if profile is None:
            profile = QueryProfile(bound, self._db.catalog)
            with self._lock:
                profile = self._profiles.setdefault(bound.sql, profile)
        return profile

    def costs(self, queries, config, base=None, oracle=False,
              parallel=False):
        """Atomic-memoized ``H`` costs of ``queries`` under ``config``.

        Every cost is taken with ``force_hypothetical=True`` — the
        recommenders' comparable-fidelity mode, and the mode in which
        the relevant-subset key is sound (the estimator policy is then
        pinned by the flag, not by which structures happen to exist).

        Args:
            queries: bound queries (or SQL strings).
            config: the trial configuration.
            base: configuration ``config`` extends, if any; forwarded to
                the database so a cache miss can build its what-if
                environment incrementally from the base's.
            oracle: full-fidelity what-if statistics (ablation knob).
            parallel: fan the per-query misses out over the session's
                worker pool.  Only safe from the main thread (never from
                inside a worker — the pool is not reentrant); candidate
                batches parallelize at candidate granularity instead.

        Returns:
            A list of costs, index-aligned with ``queries``.
        """
        bound = [self._db.bind(q) for q in queries]
        current_fp = self._db.configuration_fingerprint
        keys = [
            ("H", b.sql, current_fp,
             relevant_fingerprint(b, config, profile=self._profile(b)),
             bool(oracle))
            for b in bound
        ]
        cache = self._db.whatif_cache
        with obs.span(
            "service.what_if", configuration=config.name, queries=len(bound)
        ) as span:
            missing = object()
            costs = [cache.get(key, missing) for key in keys]
            todo = [i for i, c in enumerate(costs) if c is missing]
            with self._lock:
                self.hits += len(bound) - len(todo)
                self.misses += len(todo)
            if len(bound) > len(todo):
                obs.counter_add(
                    "recommender.whatif_cache.hits", len(bound) - len(todo)
                )
            if todo:
                obs.counter_add("recommender.whatif_cache.misses", len(todo))

                def compute(index):
                    return self._db.estimate_hypothetical(
                        bound[index],
                        config,
                        force_hypothetical=True,
                        oracle=oracle,
                        base=base,
                    )

                if parallel and self._session is not None:
                    computed = self._session.map_batch(compute, todo)
                else:
                    computed = [compute(index) for index in todo]
                for index, cost in zip(todo, computed):
                    costs[index] = cost
                    cache.put(keys[index], cost)
            span.set(virtual_s=float(sum(costs)))
        return costs

    def stats(self):
        """Local hit/miss counters of this service instance."""
        with self._lock:
            hits, misses = self.hits, self.misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        }
