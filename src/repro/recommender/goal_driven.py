"""A goal-driven configuration recommender.

The paper's conclusion argues for "designing recommenders that can accept
quality of service goals specified by constraints on [cumulative
frequency] curves" instead of a single total-cost number.  This module
implements that proposal on top of the same what-if machinery as the
classic advisor:

* the target is a :class:`~repro.analysis.goals.StepGoal` ``G``;
* a candidate configuration is scored by the *goal margin* of the
  estimated cost curve — ``min(CFC_est − G)`` over the goal thresholds;
* greedy selection adds the candidate with the best margin improvement
  per byte and **stops as soon as the goal is met**, rather than
  spending the whole budget chasing total cost.

Because the curve is built from what-if estimates, the recommender
inherits exactly the estimation blind spots the paper documents; the
ablation benches quantify them.
"""

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..analysis.cfc import CumulativeFrequencyCurve
from ..analysis.measurements import WorkloadMeasurement
from .whatif import WhatIfRecommender


@dataclass
class GoalRecommendation:
    """Outcome of a goal-driven run."""

    configuration: object
    goal_met: bool
    estimated_margin: float
    used_bytes: int
    iterations: int
    selected: list = field(default_factory=list)


class GoalDrivenRecommender(WhatIfRecommender):
    """Greedy advisor that targets a CFC goal instead of total cost."""

    def __init__(self, database, goal, profile=None, oracle=False):
        super().__init__(database, profile=profile, oracle=oracle)
        self.goal = goal

    def recommend_for_goal(self, workload, budget_bytes, name=None):
        """Add structures until the estimated curve clears the goal."""
        with obs.span(
            "recommender.recommend_for_goal",
            workload=workload.name,
            budget_bytes=int(budget_bytes),
        ) as span:
            recommendation = self._recommend_for_goal(
                workload, budget_bytes, name
            )
            span.set(
                goal_met=recommendation.goal_met,
                iterations=recommendation.iterations,
                selected=len(recommendation.selected),
                margin=recommendation.estimated_margin,
            )
        obs.counter_add("recommender.goal_runs")
        obs.event(
            "recommendation",
            workload=workload.name,
            configuration=recommendation.configuration.name,
            fingerprint=recommendation.configuration.fingerprint,
            iterations=recommendation.iterations,
            selected=len(recommendation.selected),
            used_bytes=recommendation.used_bytes,
        )
        return recommendation

    def _recommend_for_goal(self, workload, budget_bytes, name=None):
        queries = [self._db.bind(q.sql) for q in workload]
        weights = np.array(
            [q.weight for q in workload], dtype=np.float64
        )
        base_config = self._db.configuration
        candidates = self._collect_candidates(queries, base_config)
        base_bytes = self._db.estimated_configuration_bytes(base_config)

        current = base_config
        current_costs = np.array(
            self._what_if_batch(queries, base_config, parallel=True)
        )
        used = 0
        selected = []
        iterations = 0

        def margin_of(costs):
            measurement = WorkloadMeasurement(
                workload=workload.name,
                configuration="estimated",
                elapsed=costs,
                timed_out=np.zeros(len(costs), dtype=bool),
                timeout=float("inf"),
                weights=weights,
            )
            return self.goal.margin(CumulativeFrequencyCurve(measurement))

        margin = margin_of(current_costs)
        while margin <= 0 and len(selected) < self.profile.max_selected:
            iterations += 1
            best = None
            selected_keys = {key for key, _ in selected}
            for key, candidate in candidates.items():
                if key in selected_keys:
                    continue
                trial = self._extend(current, candidate)
                extra = (
                    self._db.estimated_configuration_bytes(trial)
                    - base_bytes - used
                )
                if used + max(0, extra) > budget_bytes:
                    continue
                relevant = [
                    idx for idx, query in enumerate(queries)
                    if self._relevant(candidate, query)
                ]
                # Goal margins are not additive over queries, so the
                # what-if upper-bound pruning of the total-cost advisor
                # does not apply — but the cost service's atomic memo
                # and incremental environments do.
                trial_costs = current_costs.copy()
                trial_costs[relevant] = self._what_if_batch(
                    [queries[idx] for idx in relevant], trial, base=current
                )
                trial_margin = margin_of(trial_costs)
                gain = trial_margin - margin
                if gain <= 1e-12:
                    continue
                score = gain / max(1, extra)
                if best is None or score > best[0]:
                    best = (score, key, candidate, extra, trial_costs,
                            trial_margin)
            if best is None:
                break
            _, key, candidate, extra, trial_costs, margin = best
            current = self._extend(current, candidate)
            current_costs = trial_costs
            used += max(0, extra)
            selected.append((key, candidate))

        return GoalRecommendation(
            configuration=current.renamed(
                name or f"{self._db.name}_goal_R"
            ),
            goal_met=margin > 0,
            estimated_margin=float(margin),
            used_bytes=used,
            iterations=iterations,
            selected=[c for _, c in selected],
        )
