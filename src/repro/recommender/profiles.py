"""Recommender profiles: the heuristics knobs of each system's advisor."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RecommenderProfile:
    """Configuration of one what-if recommender.

    ``leading_strategy`` orders the columns of composite index candidates:

    * ``'selective-first'`` — equality-filter and join columns lead,
      grouping columns trail (AutoAdmin-style);
    * ``'groupby-first'`` — grouping columns lead so the index can feed
      the aggregation; this backfires when the filters cannot use the
      index prefix, which is how System B's NREF2J recommendation ends up
      indistinguishable from P (Figure 5).

    ``max_candidates`` bounds the total candidate pool; exceeding it makes
    the recommender give up entirely (System A on NREF3J).  ``None``
    disables the bound.
    """

    name: str
    leading_strategy: str = "selective-first"
    max_candidates: int = None
    consider_views: bool = False
    max_index_width: int = 4
    min_improvement: float = 0.02
    max_selected: int = 24
