"""The what-if configuration recommender.

Follows the architecture the paper describes for the commercial tools
(Section 2.2): starting from the current configuration, generate per-query
candidate indexes and views, then greedily add the candidate with the best
estimated-benefit-per-byte — where *estimated* means hypothetical what-if
optimizer calls (``H`` costs), because none of the candidate structures
exist yet — until the space budget is exhausted or no candidate clears the
profile's minimum-improvement threshold.

The candidate search runs on top of the **what-if cost service**
(:mod:`repro.recommender.costservice`): per-query ``H`` costs are
memoized by the relevant subset of the trial configuration, candidate
trials extend the current configuration's what-if environment
incrementally, whole candidate evaluations fan out over the measurement
session's worker pool with a deterministic reduction, and candidates
whose best-possible gain cannot reach the round's improvement threshold
are pruned without any optimizer call.  All of it is an optimization
layer: ``REPRO_WHATIF_CACHE=0`` falls back to the plain serial loop and
the recommended configuration is byte-identical either way.

Reproduced failure modes:

* the candidate pool exceeding ``profile.max_candidates`` makes the
  recommender give up without any output (System A on NREF3J,
  Section 4.1.2) — smaller workloads fit under the bound, which is why
  the paper could get recommendations for 25/12/6/3-query subsets;
* ``groupby-first`` composite candidates lead with grouping columns,
  producing recommendations the executor can barely use (System B on
  NREF2J, Figure 5);
* hypothetical cluster factors and degraded statistics make the what-if
  costs conservative, so genuinely useful single-column indexes are
  passed over (the paper's central observation that 1C beats R).
"""

from dataclasses import dataclass, field

from .. import obs
from ..common.errors import RecommenderGaveUp
from ..engine.configuration import Configuration
from ..index.definition import IndexDefinition
from ..runtime.session import MeasurementSession
from .candidates import index_candidates, view_candidates
from .costservice import WhatIfCostService, service_enabled


@dataclass
class RecommendationReport:
    """The outcome of one recommender run."""

    configuration: Configuration
    base_cost: float
    estimated_cost: float
    budget_bytes: int
    used_bytes: int
    iterations: int
    candidate_count: int
    selected: list = field(default_factory=list)

    @property
    def estimated_improvement(self):
        if self.estimated_cost <= 0:
            return float("inf")
        return self.base_cost / self.estimated_cost


class WhatIfRecommender:
    """Greedy budgeted index/view advisor over what-if optimizer calls."""

    def __init__(self, database, profile=None, oracle=False, session=None,
                 use_cache=None):
        self._db = database
        self.profile = profile or database.system.recommender
        self.oracle = oracle
        # What-if costs are memoized inside the database's
        # fingerprint-keyed plan cache; the session adds the worker pool
        # (REPRO_JOBS) that candidate evaluations fan out over.
        self._session = session or MeasurementSession(database)
        # The what-if cost service adds atomic-configuration
        # memoization, incremental environments, candidate-level
        # parallelism, and upper-bound pruning.  ``use_cache=None``
        # consults REPRO_WHATIF_CACHE (default on); disabling it falls
        # back to the plain serial per-candidate loop, which produces
        # byte-identical recommendations.
        self._service = (
            WhatIfCostService(database, self._session)
            if service_enabled(use_cache) else None
        )

    def recommend(self, workload, budget_bytes, name=None):
        """Recommend a configuration for ``workload`` under a byte budget.

        Returns a :class:`RecommendationReport`; raises
        :class:`RecommenderGaveUp` when the candidate pool exceeds the
        profile's bound.
        """
        with obs.span(
            "recommender.recommend",
            workload=workload.name,
            profile=self.profile.name,
            budget_bytes=int(budget_bytes),
        ) as span:
            report = self._recommend(workload, budget_bytes, name, span)
        obs.counter_add("recommender.runs")
        obs.event(
            "recommendation",
            workload=workload.name,
            configuration=report.configuration.name,
            fingerprint=report.configuration.fingerprint,
            candidates=report.candidate_count,
            iterations=report.iterations,
            selected=len(report.selected),
            used_bytes=report.used_bytes,
        )
        return report

    def _recommend(self, workload, budget_bytes, name, span):
        profile = self.profile
        queries = [self._db.bind(q.sql) for q in workload]
        weights = [q.weight for q in workload]
        base_config = self._db.configuration

        candidates = self._collect_candidates(queries, base_config)
        obs.counter_add("recommender.candidates_generated", len(candidates))
        if profile.max_candidates is not None and \
                len(candidates) > profile.max_candidates:
            span.set(gave_up=True, candidates=len(candidates))
            obs.counter_add("recommender.give_ups")
            raise RecommenderGaveUp(
                f"{len(candidates)} candidate structures exceed the "
                f"search limit of {profile.max_candidates} "
                f"(workload of {len(queries)} queries)"
            )

        base_bytes = self._db.estimated_configuration_bytes(base_config)
        raw_base = self._what_if_batch(
            queries, base_config, parallel=True
        )
        base_costs = [c * w for c, w in zip(raw_base, weights)]
        total = sum(base_costs)

        current = base_config
        current_costs = list(base_costs)
        used = 0
        selected = []
        iterations = 0
        while len(selected) < profile.max_selected:
            iterations += 1
            threshold = profile.min_improvement * max(
                sum(current_costs), 1e-9
            )
            selected_keys = {key for key, _ in selected}
            best = self._best_candidate(
                candidates, selected_keys, queries, weights, current,
                current_costs, base_bytes, used, budget_bytes, threshold,
            )
            if best is None:
                break
            _, key, candidate, extra, gain, trial_costs = best
            current = self._extend(current, candidate)
            used += max(0, extra)
            selected.append((key, candidate))
            for idx, cost in trial_costs.items():
                current_costs[idx] = cost

        final = current.renamed(
            name or f"{self._db.name}_{self.profile.name}_R"
        )
        span.set(
            candidates=len(candidates),
            iterations=iterations,
            selected=len(selected),
            used_bytes=used,
        )
        obs.counter_add("recommender.iterations", iterations)
        obs.counter_add("recommender.structures_selected", len(selected))
        return RecommendationReport(
            configuration=final,
            base_cost=total,
            estimated_cost=sum(current_costs),
            budget_bytes=budget_bytes,
            used_bytes=used,
            iterations=iterations,
            candidate_count=len(candidates),
            selected=[c for _, c in selected],
        )

    # ------------------------------------------------------------------
    # One greedy round

    def _best_candidate(self, candidates, selected_keys, queries, weights,
                        current, current_costs, base_bytes, used,
                        budget_bytes, threshold):
        """The round's best ``(score, key, candidate, extra, gain, costs)``.

        Phase 1 (serial, cheap) filters candidates: already selected,
        over budget, or — with the cost service on — pruned because even
        a best-possible gain (the relevant queries' entire current cost)
        cannot reach the round's improvement threshold.  Phase 2 prices
        the survivors: with the service, whole candidate evaluations fan
        out over the session pool (each worker prices its candidate's
        relevant queries serially through the atomic memo, extending the
        current configuration's what-if environment incrementally);
        without it, the plain serial loop.  Phase 3 reduces in candidate
        order with the same strict comparison either way — results are
        byte-identical to the serial path, with ties broken by candidate
        position, never by completion order.
        """
        eligible = []
        pruned = 0
        for key, candidate in candidates.items():
            if key in selected_keys:
                continue
            trial = self._extend(current, candidate)
            extra = (
                self._db.estimated_configuration_bytes(trial)
                - base_bytes - used
            )
            if used + max(0, extra) > budget_bytes:
                continue
            relevant = [
                idx for idx, query in enumerate(queries)
                if self._relevant(candidate, query)
            ]
            if self._service is not None:
                upper = sum(current_costs[idx] for idx in relevant)
                if upper < threshold:
                    pruned += 1
                    continue
            eligible.append((key, candidate, trial, extra, relevant))
        if pruned:
            obs.counter_add("recommender.candidates_pruned", pruned)

        def evaluate(item):
            _key, _candidate, trial, _extra, relevant = item
            return self._what_if_batch(
                [queries[idx] for idx in relevant], trial, base=current
            )

        if self._service is not None:
            raw_costs = self._session.map_batch(evaluate, eligible)
        else:
            raw_costs = [evaluate(item) for item in eligible]

        best = None
        for (key, candidate, _trial, extra, relevant), raw in zip(
                eligible, raw_costs):
            gain = 0.0
            trial_costs = {}
            for idx, cost in zip(relevant, raw):
                cost *= weights[idx]
                trial_costs[idx] = cost
                gain += current_costs[idx] - cost
            if gain < threshold:
                # Not worth its maintenance/storage footprint: the
                # candidate is ineligible this round.
                continue
            score = gain / max(1, extra)
            if best is None or score > best[0]:
                best = (score, key, candidate, extra, gain, trial_costs)
        return best

    def _what_if_batch(self, queries, config, base=None, parallel=False):
        """H costs of ``queries`` under ``config`` via the active path.

        The cost service when enabled (atomic memoization, incremental
        environments); the session's plain what-if loop otherwise.
        ``parallel`` fans misses out over the session pool and must only
        be set from the main thread.
        """
        if self._service is not None:
            return self._service.costs(
                queries, config, base=base, oracle=self.oracle,
                parallel=parallel,
            )
        return self._session.what_if_costs(
            queries, config, oracle=self.oracle
        )

    # ------------------------------------------------------------------

    def _collect_candidates(self, queries, base_config):
        existing = {ix.name for ix in base_config.indexes}
        pool = {}
        for query in queries:
            for ix in index_candidates(query, self._db.catalog, self.profile):
                if ix.name not in existing:
                    pool[("ix", ix.name)] = ix
            for view in view_candidates(
                query, self._db.catalog, self.profile
            ):
                pool[("mv", view.name)] = view
        return pool

    def _extend(self, config, candidate):
        if hasattr(candidate, "group_columns"):        # a view
            extended = config.with_views([candidate])
            # Recommend the view *indexed* on its leading group column,
            # matching the paper's Table 3 ("indexes on materialized
            # views").
            leading = candidate.group_columns[0].name
            return extended.with_indexes(
                [IndexDefinition(table=candidate.name, columns=(leading,))]
            )
        return config.with_indexes([candidate])

    def _what_if(self, bound, config):
        # Every cost — including the current configuration's — is taken
        # inside the same what-if session, under the degraded
        # hypothetical policy, so candidate deltas are comparable.
        # Memoization lives in the database's fingerprint-keyed plan
        # cache, shared with every other session on this database.
        return self._db.estimate_hypothetical(
            bound.sql,
            config,
            force_hypothetical=True,
            oracle=self.oracle,
        )

    def _relevant(self, candidate, bound):
        """Whether a candidate could possibly affect a query's plan."""
        tables = set(bound.relations.values())
        for semi in bound.semijoins:
            tables.add(semi.sub_table)
        if hasattr(candidate, "group_columns"):
            return any(t in tables for t in candidate.tables)
        return candidate.table in tables
