"""The measurement runtime layer.

Sits between the engine (:mod:`repro.engine`) and the analysis/bench
layers, and owns everything about *how* measurements are taken rather
than *what* they mean:

* :class:`~repro.runtime.cache.BoundedCache` — the thread-safe LRU
  primitive behind the database's plan/estimate and environment caches
  (keyed by configuration content fingerprints);
* :class:`~repro.runtime.session.MeasurementSession` — fans a workload
  out over a worker pool (``REPRO_JOBS``), with deterministic
  order-preserving results, per-query timeout handling, and per-stage
  timing/cache statistics;
* :class:`~repro.runtime.artifacts.ArtifactCache` — the
  fingerprint-keyed artifact store (databases, workloads,
  recommendations, measurements) with optional disk persistence under
  ``REPRO_CACHE_DIR``.
"""

from .artifacts import ArtifactCache, StageTimings, artifact_key
from .cache import BoundedCache, CacheStats
from .session import JOBS_ENV, MeasurementSession, resolve_jobs

__all__ = [
    "ArtifactCache",
    "BoundedCache",
    "CacheStats",
    "JOBS_ENV",
    "MeasurementSession",
    "StageTimings",
    "artifact_key",
    "resolve_jobs",
]
