"""Fingerprint-keyed artifact store with optional disk persistence.

Benchmark runs build a handful of expensive artifacts — loaded databases,
sampled workloads, recommendations, measurements, build reports — and
every figure/table needs some subset of them.  :class:`ArtifactCache`
replaces the ad-hoc per-process dicts that used to live in
``bench/context.py``: artifacts are keyed by *content* (settings +
configuration fingerprints), held in memory, and — when a cache directory
is configured via ``REPRO_CACHE_DIR`` or the constructor — persisted with
:mod:`pickle` so a second process reuses them instead of rebuilding.

:class:`StageTimings` is the companion wall-clock accounting: the bench
context wraps each pipeline phase (build/sample/recommend/measure) in
``with timings.stage(name):`` and reports seconds-per-phase at the end.
"""

import os
import pickle
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from ..engine.configuration import content_fingerprint

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISSING = object()


def artifact_key(*parts):
    """Stable fingerprint of an artifact's identifying content."""
    return content_fingerprint(*parts)


class ArtifactCache:
    """Two-level (memory, optional disk) store of benchmark artifacts.

    Artifacts live in namespaces (``kind``) such as ``"database"`` or
    ``"measurement"``; within a namespace they are addressed by a content
    fingerprint (use :func:`artifact_key`).  Values must be picklable when
    persistence is enabled; unpicklable or corrupt disk entries degrade to
    cache misses, never to errors.
    """

    def __init__(self, directory=_MISSING):
        if directory is _MISSING:
            directory = os.environ.get(CACHE_DIR_ENV) or None
        self.directory = Path(directory) if directory else None
        self._memory = {}
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def persistent(self):
        return self.directory is not None

    def _path(self, kind, key):
        return self.directory / kind / f"{key}.pkl"

    def get(self, kind, key, default=None):
        with self._lock:
            value = self._memory.get((kind, key), _MISSING)
            if value is not _MISSING:
                self.memory_hits += 1
                return value
        if self.directory is not None:
            path = self._path(kind, key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError, AttributeError,
                    ImportError, IndexError):
                pass
            else:
                with self._lock:
                    self._memory[(kind, key)] = value
                    self.disk_hits += 1
                return value
        with self._lock:
            self.misses += 1
        return default

    def put(self, kind, key, value, persist=True):
        with self._lock:
            self._memory[(kind, key)] = value
            self.stores += 1
        if persist and self.directory is not None:
            path = self._path(kind, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            try:
                with open(tmp, "wb") as handle:
                    pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except (OSError, pickle.PickleError, TypeError):
                # Unpicklable artifact: keep it memory-only.
                tmp.unlink(missing_ok=True)
        return value

    def get_or_build(self, kind, key, builder, persist=True):
        """Cached artifact, building (and storing) it on a miss."""
        value = self.get(kind, key, _MISSING)
        if value is _MISSING:
            value = builder()
            self.put(kind, key, value, persist=persist)
        return value

    def contains(self, kind, key):
        with self._lock:
            if (kind, key) in self._memory:
                return True
        return (
            self.directory is not None and self._path(kind, key).exists()
        )

    def clear_memory(self):
        with self._lock:
            self._memory.clear()

    def snapshot(self):
        with self._lock:
            return {
                "directory": str(self.directory) if self.directory else None,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "entries": len(self._memory),
            }


class StageTimings:
    """Cumulative wall-clock seconds per named pipeline stage."""

    def __init__(self):
        self._lock = threading.Lock()
        self._seconds = {}
        self._counts = {}

    @contextmanager
    def stage(self, name):
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
                self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name, seconds):
        with self._lock:
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1

    def snapshot(self):
        with self._lock:
            return {
                name: {
                    "seconds": self._seconds[name],
                    "count": self._counts[name],
                }
                for name in self._seconds
            }

    def report(self, title="stage timings"):
        rows = self.snapshot()
        if not rows:
            return f"{title}: (no stages recorded)"
        width = max(len(name) for name in rows)
        lines = [f"{title}:"]
        for name, row in sorted(
            rows.items(), key=lambda item: -item[1]["seconds"]
        ):
            lines.append(
                f"  {name:<{width}}  {row['seconds']:9.3f}s"
                f"  x{row['count']}"
            )
        return "\n".join(lines)
