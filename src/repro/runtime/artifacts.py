"""Fingerprint-keyed artifact store with optional disk persistence.

Benchmark runs build a handful of expensive artifacts — loaded databases,
sampled workloads, recommendations, measurements, build reports — and
every figure/table needs some subset of them.  :class:`ArtifactCache`
replaces the ad-hoc per-process dicts that used to live in
``bench/context.py``: artifacts are keyed by *content* (settings +
configuration fingerprints), held in memory, and — when a cache directory
is configured via ``REPRO_CACHE_DIR`` or the constructor — persisted with
:mod:`pickle` so a second process reuses them instead of rebuilding.

:class:`StageTimings` is the companion wall-clock accounting: the bench
context wraps each pipeline phase (build/sample/recommend/measure) in
``with timings.stage(name):`` and reports seconds-per-phase at the end.
"""

import os
import pickle
import threading
from contextlib import contextmanager
from pathlib import Path

from ..engine.configuration import content_fingerprint
from ..obs import counter_add as _obs_count
from ..common import knobs
from ..obs.clock import perf_seconds

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISSING = object()


def artifact_key(*parts):
    """Stable fingerprint of an artifact's identifying content."""
    return content_fingerprint(*parts)


class ArtifactCache:
    """Two-level (memory, optional disk) store of benchmark artifacts.

    Artifacts live in namespaces (``kind``) such as ``"database"`` or
    ``"measurement"``; within a namespace they are addressed by a content
    fingerprint (use :func:`artifact_key`).  Values must be picklable when
    persistence is enabled; unpicklable or corrupt disk entries degrade to
    cache misses, never to errors.
    """

    def __init__(self, directory=_MISSING):
        if directory is _MISSING:
            directory = knobs.text(CACHE_DIR_ENV) or None
        self.directory = Path(directory) if directory else None
        self._memory = {}
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def persistent(self):
        return self.directory is not None

    def _path(self, kind, key):
        return self.directory / kind / f"{key}.pkl"

    def get(self, kind, key, default=None):
        """Fetch an artifact, trying memory first, then disk.

        Args:
            kind: artifact namespace (``"database"``, ``"workload"``, …).
            key: content fingerprint from :func:`artifact_key`.
            default: returned on a miss.

        Returns:
            The cached artifact or ``default``; disk hits are promoted
            into memory on the way out.
        """
        with self._lock:
            value = self._memory.get((kind, key), _MISSING)
            if value is not _MISSING:
                self.memory_hits += 1
                _obs_count("artifact.memory_hits")
                return value
        if self.directory is not None:
            path = self._path(kind, key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError, AttributeError,
                    ImportError, IndexError):
                pass
            else:
                with self._lock:
                    self._memory[(kind, key)] = value
                    self.disk_hits += 1
                _obs_count("artifact.disk_hits")
                return value
        with self._lock:
            self.misses += 1
        _obs_count("artifact.misses")
        return default

    def put(self, kind, key, value, persist=True):
        """Store an artifact in memory and, optionally, on disk.

        Args:
            kind: artifact namespace.
            key: content fingerprint from :func:`artifact_key`.
            value: the artifact; must pickle when persistence is on
                (unpicklable values silently stay memory-only).
            persist: set ``False`` to keep the artifact memory-only even
                when a cache directory is configured.

        Returns:
            ``value``, unchanged.
        """
        with self._lock:
            self._memory[(kind, key)] = value
            self.stores += 1
        _obs_count("artifact.stores")
        if persist and self.directory is not None:
            path = self._path(kind, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            try:
                with open(tmp, "wb") as handle:
                    pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except (OSError, pickle.PickleError, TypeError):
                # Unpicklable artifact: keep it memory-only.
                tmp.unlink(missing_ok=True)
        return value

    def get_or_build(self, kind, key, builder, persist=True):
        """Cached artifact, building (and storing) it on a miss.

        Args:
            kind: artifact namespace.
            key: content fingerprint from :func:`artifact_key`.
            builder: zero-argument callable producing the artifact.
            persist: forwarded to :meth:`put` on a miss.

        Returns:
            The cached or freshly built artifact.
        """
        value = self.get(kind, key, _MISSING)
        if value is _MISSING:
            value = builder()
            self.put(kind, key, value, persist=persist)
        return value

    def contains(self, kind, key):
        """Whether an artifact exists in memory or on disk (no counters)."""
        with self._lock:
            if (kind, key) in self._memory:
                return True
        return (
            self.directory is not None and self._path(kind, key).exists()
        )

    def clear_memory(self):
        """Drop the in-memory level (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    def snapshot(self):
        """Traffic counters as a plain dict.

        Returns:
            ``{"directory", "memory_hits", "disk_hits", "misses",
            "stores", "entries"}`` — the shape embedded in the run
            report's ``caches.artifact`` block.
        """
        with self._lock:
            return {
                "directory": str(self.directory) if self.directory else None,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "entries": len(self._memory),
            }


class StageTimings:
    """Cumulative wall-clock seconds per named pipeline stage."""

    def __init__(self):
        self._lock = threading.Lock()
        self._seconds = {}
        self._counts = {}

    @contextmanager
    def stage(self, name):
        """Context manager charging the block's wall time to ``name``.

        Args:
            name: stage label (``"measure"``, ``"build_database"``, …).
        """
        started = perf_seconds()
        try:
            yield
        finally:
            elapsed = perf_seconds() - started
            with self._lock:
                self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
                self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name, seconds):
        """Charge ``seconds`` to stage ``name`` without a context block."""
        with self._lock:
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1

    def snapshot(self):
        """Cumulative ``{stage: {"seconds", "count"}}`` (a copied dict).

        This is the run report's ``stages`` block.
        """
        with self._lock:
            return {
                name: {
                    "seconds": self._seconds[name],
                    "count": self._counts[name],
                }
                for name in self._seconds
            }

    def report(self, title="stage timings"):
        """Console rendering of the snapshot, slowest stage first.

        Args:
            title: heading line of the block.

        Returns:
            A multi-line string (identical format to
            :func:`repro.obs.report.render_stages`, which report-backed
            consumers should prefer).
        """
        from ..obs.report import render_stages

        return render_stages(self.snapshot(), title=title)
