"""Bounded, thread-safe caches and their hit/miss accounting.

:class:`BoundedCache` is the primitive behind the database's plan and
environment caches: an LRU dict with a hard entry bound, a lock (so a
:class:`~repro.runtime.session.MeasurementSession` worker pool can share
one database), and counters that the session's ``stats()`` report reads.
"""

import threading
from collections import OrderedDict
from dataclasses import dataclass

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters of one cache (a snapshot is a plain dict)."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self):
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class BoundedCache:
    """A thread-safe LRU mapping with at most ``maxsize`` entries."""

    def __init__(self, name, maxsize=4096):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.stats = CacheStats(name)
        self._lock = threading.Lock()
        self._entries = OrderedDict()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def get(self, key, default=None):
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_build(self, key, builder):
        """Cached value for ``key``, computing it via ``builder()`` on miss.

        The builder runs *outside* the lock: two racing threads may both
        build, but both produce the same deterministic value, so the
        last writer is harmless.
        """
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = builder()
            self.put(key, value)
        return value

    def invalidate(self):
        """Drop every entry (configuration/data/statistics changed)."""
        with self._lock:
            self._entries.clear()
            self.stats.invalidations += 1
