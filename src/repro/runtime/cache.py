"""Bounded, thread-safe caches and their hit/miss accounting.

:class:`BoundedCache` is the primitive behind the database's plan and
environment caches: an LRU dict with a hard entry bound, a lock (so a
:class:`~repro.runtime.session.MeasurementSession` worker pool can share
one database), and counters that the session's ``stats()`` report reads.

Every cache additionally feeds the observability layer
(:mod:`repro.obs`): each hit/miss/eviction/invalidation increments a
``cache.<name>.*`` counter on the active recorder.  With the default
:class:`~repro.obs.recorder.NullRecorder` those calls are no-ops, so an
un-observed run pays nothing beyond the local :class:`CacheStats`
integers it always kept.
"""

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs import counter_add as _obs_count

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters of one cache (a snapshot is a plain dict).

    Attributes:
        name: the cache's stable name (``"plan_cache"``, …) — also the
            middle segment of its ``cache.<name>.*`` metric names.
        hits / misses / evictions / invalidations: cumulative counts.
    """

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self):
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self):
        """The counters as a plain JSON-serializable dict.

        Returns:
            ``{"name", "hits", "misses", "evictions", "invalidations",
            "hit_rate"}`` — the per-cache shape embedded in session
            stats and in the run report's ``caches.databases`` block.
        """
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class BoundedCache:
    """A thread-safe LRU mapping with at most ``maxsize`` entries.

    Args:
        name: stable cache name used in statistics and metrics.
        maxsize: hard bound on resident entries; the least recently
            used entry is evicted when an insert would exceed it.
    """

    def __init__(self, name, maxsize=4096):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.stats = CacheStats(name)
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        # Metric names are precomputed so the hot path does no string
        # formatting; with the NullRecorder the counter call is a no-op.
        self._metric_hits = f"cache.{name}.hits"
        self._metric_misses = f"cache.{name}.misses"
        self._metric_evictions = f"cache.{name}.evictions"
        self._metric_invalidations = f"cache.{name}.invalidations"

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def get(self, key, default=None):
        """Look up ``key``, counting a hit or a miss.

        Args:
            key: any hashable key.
            default: value to return on a miss.

        Returns:
            The cached value (refreshing its LRU position) or
            ``default``.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        if value is _MISSING:
            _obs_count(self._metric_misses)
            return default
        _obs_count(self._metric_hits)
        return value

    def peek(self, key, default=None):
        """Look up ``key`` without touching statistics or LRU order.

        Used for opportunistic probes — e.g. the database checking
        whether a *base* environment is resident before choosing the
        incremental what-if build path — where counting a hit/miss would
        distort the cache's accounting of real lookups.

        Args:
            key: any hashable key.
            default: value to return when the key is absent.

        Returns:
            The cached value or ``default``; the entry's LRU position is
            left unchanged.
        """
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key, value):
        """Insert or refresh ``key``, evicting LRU entries over the bound.

        Args:
            key: any hashable key.
            value: the value to cache (stored as-is, never copied).
        """
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
        if evicted:
            _obs_count(self._metric_evictions, evicted)

    def get_or_build(self, key, builder):
        """Cached value for ``key``, computing it via ``builder()`` on miss.

        The builder runs *outside* the lock: two racing threads may both
        build, but both produce the same deterministic value, so the
        last writer is harmless.

        Args:
            key: any hashable key.
            builder: zero-argument callable producing the value.

        Returns:
            The cached or freshly built value.
        """
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = builder()
            self.put(key, value)
        return value

    def invalidate(self):
        """Drop every entry (configuration/data/statistics changed)."""
        with self._lock:
            self._entries.clear()
            self.stats.invalidations += 1
        _obs_count(self._metric_invalidations)
