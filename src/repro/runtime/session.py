"""Measurement sessions: batched A/E/H measurement over a worker pool.

Every figure and table of the paper reduces to "run a ~100-query workload
against one database under configurations P/1C/R and compare actual (A),
estimated (E) and hypothetical (H) costs".  A :class:`MeasurementSession`
owns that loop:

* queries fan out over a ``concurrent.futures`` **thread pool** whose
  width comes from the ``REPRO_JOBS`` environment knob (default 1 =
  serial).  The engine's clock is *virtual* — elapsed times are computed
  from the cost model, not measured — so parallel execution is
  bit-identical to serial execution; results are collected in submission
  order regardless of completion order;
* per-query timeouts propagate exactly as in the serial path: a timed-out
  query is clamped to the timeout and flagged, never aborts the batch;
* the session accumulates per-phase wall-clock and query counts, and its
  :meth:`stats` merges those with the database's plan/bind/env cache
  counters — this is where bench runs get their planner-cache hit rates.

``analysis.measurements.measure_workload`` / ``estimate_workload`` and
the recommender's what-if evaluation loop are thin wrappers over this
class.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .. import obs
from ..common import knobs
from .artifacts import StageTimings

JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs=None):
    """Worker-pool width: explicit argument, else ``REPRO_JOBS``, else 1.

    Args:
        jobs: desired width, or ``None`` to consult the environment.

    Returns:
        A positive integer pool width (values below 1 clamp to 1).

    Raises:
        ValueError: when the argument or env value is not an integer.
    """
    if jobs is None:
        jobs = knobs.text(JOBS_ENV, "1")
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ValueError(f"invalid job count {jobs!r}") from None
    return max(1, jobs)


class MeasurementSession:
    """Runs workloads against one database, possibly in parallel.

    The session may be used as a context manager; otherwise the worker
    pool (created lazily, only when ``jobs > 1``) is torn down by
    :meth:`close` or interpreter exit.

    Args:
        database: the :class:`~repro.engine.database.Database` every
            query of this session runs against.
        jobs: worker-pool width (``None`` resolves ``REPRO_JOBS``).
        timeout: default per-query virtual timeout in seconds (``None``
            uses the engine default, the paper's 30 minutes).
        executor: an externally owned ``ThreadPoolExecutor`` to borrow
            instead of creating a private pool (used by the tuning
            server so every tenant's sessions share one pool);
            :meth:`close` leaves a borrowed executor running.  The
            ``jobs`` width still gates *whether* the pool is used —
            ``jobs=1`` stays serial even with an executor supplied.

    Every batch method opens a tracing span (``session.measure`` /
    ``session.estimate`` / ``session.what_if``) carrying the batch's
    total *virtual* seconds next to its wall time, and ``measure`` /
    ``estimate`` emit a ``measurement`` event with the per-query A/E/H
    cost breakdown — the raw material of the run report.  All of it is
    a no-op unless a recorder is installed (see :mod:`repro.obs`).
    """

    def __init__(self, database, jobs=None, timeout=None, executor=None):
        from ..engine.database import DEFAULT_TIMEOUT

        self.database = database
        self.jobs = resolve_jobs(jobs)
        self.timeout = DEFAULT_TIMEOUT if timeout is None else timeout
        self.timings = StageTimings()
        # A borrowed executor (the tuning server's shared pool) is used
        # instead of a private one and is never shut down by close() —
        # many sessions across many tenants share its workers.
        self._pool = executor
        self._owns_pool = executor is None
        self._queries_measured = 0
        self._queries_estimated = 0
        self._what_if_calls = 0

    # ------------------------------------------------------------------
    # Pool plumbing

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def close(self):
        """Shut down an owned worker pool (idempotent; the session object
        stays usable and will lazily recreate the pool if reused).
        Borrowed executors are left running for their other users."""
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _map(self, fn, items):
        """Apply ``fn`` over ``items``, preserving order.

        Serial when ``jobs == 1``; otherwise the shared thread pool.
        Exceptions propagate either way (a worker failure fails the
        batch — only :class:`QueryTimeout` is handled below this level).
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs,
                thread_name_prefix="repro-session",
            )
            self._owns_pool = True
        return list(self._pool.map(fn, items))

    def map_batch(self, fn, items):
        """Apply ``fn`` over ``items`` on the worker pool, in order.

        The public face of the session's pool for callers that batch
        units other than single queries — the what-if recommender fans
        whole *candidate evaluations* out through here (one candidate's
        relevant queries are priced serially inside the worker, so the
        pool is never re-entered).  Results are returned in submission
        order whatever the pool width, which is what keeps the parallel
        candidate search byte-identical to the serial one: the caller's
        reduction sees the same sequence either way.
        """
        return self._map(fn, items)

    # ------------------------------------------------------------------
    # Measurement (actual costs, A)

    def measure(self, workload, timeout=None, configuration=None):
        """Execute every query of ``workload`` (actual costs, ``A``).

        Deterministic and order-preserving: entry ``i`` always describes
        ``workload.queries[i]``, whatever the pool width.

        Args:
            workload: iterable of weighted queries (a ``Workload``).
            timeout: per-query virtual timeout override in seconds.
            configuration: label recorded on the measurement (defaults
                to the database's current configuration name).

        Returns:
            A :class:`~repro.analysis.measurements.WorkloadMeasurement`
            with per-query virtual seconds and timeout flags.
        """
        from ..analysis.measurements import WorkloadMeasurement

        timeout = self.timeout if timeout is None else timeout
        queries = list(workload)
        config_name = configuration or self.database.configuration.name

        def run(query):
            return self.database.execute(query.sql, timeout=timeout)

        with self.timings.stage("measure"), obs.span(
            "session.measure",
            workload=workload.name,
            configuration=config_name,
            queries=len(queries),
        ) as span:
            results = self._map(run, queries)
            elapsed = np.array([r.elapsed for r in results])
            timed_out = np.array([r.timed_out for r in results])
            span.set(
                virtual_s=float(elapsed.sum()),
                timeouts=int(timed_out.sum()),
            )
        self._queries_measured += len(queries)
        if obs.is_enabled():
            obs.event(
                "measurement",
                workload=workload.name,
                configuration=config_name,
                kind="A",
                queries=len(queries),
                total_seconds=float(elapsed.sum()),
                timed_out=int(timed_out.sum()),
                per_query=[float(value) for value in elapsed],
            )
        return WorkloadMeasurement(
            workload=workload.name,
            configuration=config_name,
            elapsed=elapsed,
            timed_out=timed_out,
            timeout=timeout,
            sqls=[q.sql for q in queries],
            weights=np.array([q.weight for q in queries]),
        )

    # ------------------------------------------------------------------
    # Estimation (E and H costs)

    def estimate(self, workload, configuration=None, hypothetical=None,
                 force_hypothetical=False, oracle=False):
        """Per-query estimated (``E``) or hypothetical (``H``) costs.

        Args:
            workload: iterable of weighted queries.
            configuration: label recorded on the measurement.
            hypothetical: when given, costs are what-if estimates
                ``H(q, hypothetical, current)`` instead of ``E(q, C)``.
            force_hypothetical: estimate under the degraded what-if
                policy even for structures that are actually built.
            oracle: use full-fidelity what-if statistics (the ablation
                knob).

        Returns:
            A :class:`~repro.analysis.measurements.WorkloadMeasurement`
            of estimated virtual seconds (never times out).
        """
        from ..analysis.measurements import WorkloadMeasurement

        queries = list(workload)
        kind = "E" if hypothetical is None else "H"
        config_name = configuration or (
            hypothetical.name if hypothetical is not None
            else self.database.configuration.name
        )

        def cost(query):
            if hypothetical is not None:
                return self.database.estimate_hypothetical(
                    query.sql,
                    hypothetical,
                    force_hypothetical=force_hypothetical,
                    oracle=oracle,
                )
            return self.database.estimate(query.sql)

        with self.timings.stage("estimate"), obs.span(
            "session.estimate",
            workload=workload.name,
            configuration=config_name,
            kind=kind,
            queries=len(queries),
        ) as span:
            costs = self._map(cost, queries)
            span.set(virtual_s=float(sum(costs)))
        self._queries_estimated += len(queries)
        if obs.is_enabled():
            obs.event(
                "measurement",
                workload=workload.name,
                configuration=config_name,
                kind=kind,
                queries=len(queries),
                total_seconds=float(sum(costs)),
                timed_out=0,
                per_query=[float(value) for value in costs],
            )
        return WorkloadMeasurement(
            workload=workload.name,
            configuration=config_name,
            elapsed=np.array(costs, dtype=np.float64),
            timed_out=np.zeros(len(costs), dtype=bool),
            timeout=float("inf"),
            sqls=[q.sql for q in queries],
            weights=np.array([q.weight for q in queries]),
        )

    def what_if_costs(self, queries, config, oracle=False):
        """H costs of bound/SQL queries under a candidate configuration.

        The recommender's inner loop: every cost is taken inside the same
        what-if session (``force_hypothetical=True``) so candidate deltas
        are comparable, and the database's fingerprint-keyed plan cache
        memoizes repeats across greedy iterations.
        """

        def cost(query):
            sql = getattr(query, "sql", query)
            return self.database.estimate_hypothetical(
                sql, config, force_hypothetical=True, oracle=oracle
            )

        queries = list(queries)
        with self.timings.stage("what_if"), obs.span(
            "session.what_if",
            configuration=config.name,
            queries=len(queries),
        ) as span:
            costs = self._map(cost, queries)
            span.set(virtual_s=float(sum(costs)))
        self._what_if_calls += len(costs)
        return costs

    # ------------------------------------------------------------------
    # Accounting

    def stats(self):
        """Merged session + database-cache statistics.

        ``plan_cache``/``bind_cache``/``env_cache`` report the database's
        cumulative counters (the caches are shared by every session on
        the same database); the ``session`` block is local to this
        session.
        """
        report = {
            "session": {
                "jobs": self.jobs,
                "queries_measured": self._queries_measured,
                "queries_estimated": self._queries_estimated,
                "what_if_calls": self._what_if_calls,
            },
            "timings": self.timings.snapshot(),
        }
        cache_stats = getattr(self.database, "cache_stats", None)
        if cache_stats is not None:
            report.update(cache_stats())
        return report
