"""repro.server — recommender-as-a-service.

A long-lived, multi-tenant tuning service over the same engine the
one-shot CLI drives — the point is *warmth*: ``Database`` instances,
dictionary caches, shard runtimes, and what-if cost state survive across
requests instead of being rebuilt per invocation, while tenant-scoped
artifact keys keep tenants fully isolated from each other.

Layers (bottom up):

* :mod:`repro.server.sessions` — :class:`SessionStore`, the lock-guarded
  tenant-session registry (LRU eviction, idle TTL), and
  :class:`TenantContext`, the tenant-scoped bench context;
* :mod:`repro.server.jobs` — :class:`JobQueue`, the bounded job intake
  (429 backpressure) with recorded execution and per-job progress feeds;
* :mod:`repro.server.app` — the stdlib HTTP surface
  (:class:`TuningServer`, ``ThreadingHTTPServer``) and error mapping;
* :mod:`repro.server.client` — :class:`TuningClient`, the stdlib
  reference client used by tests, examples, and CI.

Run it with ``python -m repro.server``; the full API reference lives in
``docs/server.md``.  A served experiment report is canonically
byte-identical to the one-shot CLI's ``--report`` output — see
:func:`repro.obs.canonicalize_run_report`.
"""

from .app import TuningServer, TuningService
from .client import ServerError, TuningClient
from .jobs import (
    BadJobSpec,
    Job,
    JobQueue,
    JobQueueFull,
    UnknownJobError,
    parse_spec,
)
from .sessions import (
    SessionLimitError,
    SessionStore,
    TenantContext,
    TenantSession,
    UnknownSessionError,
)

__all__ = [
    "BadJobSpec",
    "Job",
    "JobQueue",
    "JobQueueFull",
    "ServerError",
    "SessionLimitError",
    "SessionStore",
    "TenantContext",
    "TenantSession",
    "TuningClient",
    "TuningServer",
    "TuningService",
    "UnknownJobError",
    "UnknownSessionError",
    "parse_spec",
]
