"""``python -m repro.server`` — run the tuning server.

Usage::

    python -m repro.server --port 8451 --jobs 4 --max-sessions 8

Every flag has an environment-variable fallback (flag wins) so the
server can be configured by a process manager without a wrapper script;
see ``docs/server.md`` for the full table.
"""

import argparse
import sys

from ..common import knobs
from .app import TuningServer


def _env(name, default, cast):
    raw = knobs.text(name)
    if raw is None or raw == "":
        return default
    return cast(raw)


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Multi-tenant configuration-tuning server.",
    )
    parser.add_argument(
        "--host", default=_env("REPRO_SERVER_HOST", "127.0.0.1", str),
        help="bind address (env REPRO_SERVER_HOST; default loopback)",
    )
    parser.add_argument(
        "--port", type=int, default=_env("REPRO_SERVER_PORT", 8451, int),
        help="TCP port, 0 picks a free one "
             "(env REPRO_SERVER_PORT; default 8451)",
    )
    parser.add_argument(
        "--jobs", type=int, default=_env("REPRO_JOBS", 0, int),
        help="shared measurement-pool width handed to every tenant "
             "context (env REPRO_JOBS; default 0 = serial)",
    )
    parser.add_argument(
        "--workers", type=int,
        default=_env("REPRO_SERVER_WORKERS", 2, int),
        help="job worker threads (env REPRO_SERVER_WORKERS; default 2)",
    )
    parser.add_argument(
        "--queue", type=int, default=_env("REPRO_SERVER_QUEUE", 8, int),
        help="pending-job bound before 429 backpressure "
             "(env REPRO_SERVER_QUEUE; default 8)",
    )
    parser.add_argument(
        "--max-sessions", type=int,
        default=_env("REPRO_SERVER_MAX_SESSIONS", 8, int),
        help="resident tenant-session cap, LRU eviction beyond it "
             "(env REPRO_SERVER_MAX_SESSIONS; default 8)",
    )
    parser.add_argument(
        "--session-ttl", type=float,
        default=_env("REPRO_SERVER_SESSION_TTL", 3600.0, float),
        help="idle seconds before a session expires "
             "(env REPRO_SERVER_SESSION_TTL; default 3600)",
    )
    parser.add_argument(
        "--cache-dir",
        default=_env("REPRO_CACHE_DIR", None, str),
        help="shared on-disk artifact cache directory; keys are "
             "tenant-scoped (env REPRO_CACHE_DIR; default off)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="log HTTP requests to stderr",
    )
    return parser


def main(argv=None):
    args = _build_parser().parse_args(argv)
    server = TuningServer(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl,
        queue_capacity=args.queue,
        workers=args.workers,
        measure_jobs=args.jobs,
        artifacts_dir=args.cache_dir,
        verbose=args.verbose,
    )
    print(f"repro tuning server listening on {server.base_url}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
