"""The HTTP surface: routing, JSON encoding, and error mapping.

Built entirely on the stdlib (:mod:`http.server` with
``ThreadingHTTPServer``) — the service adds no dependencies over the
one-shot CLI.  The handler is deliberately thin: it decodes JSON, maps
paths onto :class:`TuningService` methods, and translates the domain
errors into status codes:

========================================  ======
:class:`~repro.server.jobs.BadJobSpec`    ``400``
unknown session / job id                  ``404``
queue full (backpressure)                 ``429``
store full, nothing evictable             ``503``
anything else                             ``500``
========================================  ======

``429`` responses carry a ``Retry-After`` header so well-behaved clients
(:mod:`repro.server.client`) can back off instead of hammering.

Reports are served exactly as :func:`repro.obs.write_report` lays them
out on disk (pretty-printed, key-sorted, trailing newline), so the HTTP
body of ``GET /v1/jobs/{id}/report`` can be byte-compared against a CLI
``--report`` file; ``?canonical=1`` serves the canonical form (stage
wall-clock zeroed, see :func:`repro.obs.canonicalize_run_report`) for
exact comparison across runs.
"""

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..bench.context import BenchSettings
from .jobs import BadJobSpec, JobQueue, JobQueueFull, UnknownJobError, \
    parse_spec
from .sessions import SessionLimitError, SessionStore, UnknownSessionError

MAX_BODY_BYTES = 1 << 20

_ROUTES = (
    ("POST", re.compile(r"^/v1/sessions$"), "create_session"),
    ("GET", re.compile(r"^/v1/sessions$"), "list_sessions"),
    ("GET", re.compile(r"^/v1/sessions/(?P<sid>[\w-]+)$"), "get_session"),
    ("DELETE", re.compile(r"^/v1/sessions/(?P<sid>[\w-]+)$"),
     "delete_session"),
    ("POST", re.compile(r"^/v1/sessions/(?P<sid>[\w-]+)/workloads$"),
     "submit_workload"),
    ("GET", re.compile(r"^/v1/jobs/(?P<jid>[\w-]+)$"), "get_job"),
    ("GET", re.compile(r"^/v1/jobs/(?P<jid>[\w-]+)/report$"),
     "get_report"),
    ("GET", re.compile(r"^/v1/metrics$"), "get_metrics"),
    ("GET", re.compile(r"^/v1/healthz$"), "get_health"),
)


class ApiError(Exception):
    """An error with a definite HTTP status (raised by service methods)."""

    def __init__(self, status, message, retry_after=None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def _report_bytes(report):
    """Serialize a report exactly like :func:`repro.obs.write_report`."""
    return (
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


class TuningService:
    """The route targets: every method takes (match, query, body) and
    returns ``(status, payload)`` — payload is a JSON-ready dict, or a
    raw ``bytes`` body for the report endpoint."""

    def __init__(self, store, queue):
        self.store = store
        self.queue = queue

    # -- sessions -------------------------------------------------------

    def create_session(self, match, query, body):
        if not isinstance(body, dict):
            raise ApiError(400, "request body must be a JSON object")
        tenant = body.get("tenant")
        if not tenant or not isinstance(tenant, str):
            raise ApiError(400, "'tenant' (non-empty string) is required")
        try:
            settings = BenchSettings(
                scale=float(body.get("scale", 1.0)),
                workload_size=int(body.get("workload_size", 100)),
                timeout=float(body.get("timeout", 1800.0)),
                seed=int(body.get("seed", 405)),
                jobs=int(body.get("jobs", 0)),
            )
        except (TypeError, ValueError) as err:
            raise ApiError(400, f"bad session settings: {err}") from err
        system = body.get("system", "A")
        if not isinstance(system, str):
            raise ApiError(400, "'system' must be a string")
        try:
            session = self.store.create(
                tenant, settings=settings, system=system
            )
        except SessionLimitError as err:
            raise ApiError(503, str(err)) from err
        return 201, session.describe()

    def list_sessions(self, match, query, body):
        return 200, {
            "sessions": [s.describe() for s in self.store.sessions()]
        }

    def get_session(self, match, query, body):
        try:
            session = self.store.get(match.group("sid"))
        except UnknownSessionError as err:
            raise ApiError(404, f"unknown session {err}") from err
        return 200, session.describe()

    def delete_session(self, match, query, body):
        session_id = match.group("sid")
        try:
            self.store.remove(session_id)
        except UnknownSessionError as err:
            raise ApiError(404, f"unknown session {err}") from err
        except SessionLimitError as err:
            raise ApiError(409, str(err)) from err
        return 200, {"deleted": session_id}

    # -- jobs -----------------------------------------------------------

    def submit_workload(self, match, query, body):
        session_id = match.group("sid")
        try:
            session = self.store.acquire_job(session_id)
        except UnknownSessionError as err:
            raise ApiError(404, f"unknown session {err}") from err
        try:
            kind, spec = parse_spec(body, default_system=session.system)
        except BadJobSpec as err:
            self.store.release_job(session_id)
            raise ApiError(400, str(err)) from err
        try:
            job = self.queue.submit(session, kind, spec)
        except JobQueueFull as err:
            # submit() released the session pin before raising.
            raise ApiError(429, str(err), retry_after=1) from err
        return 202, {"job": job.job_id, "status": job.status}

    def get_job(self, match, query, body):
        after = 0
        if "after" in query:
            try:
                after = int(query["after"][0])
            except ValueError as err:
                raise ApiError(400, "'after' must be an integer") from err
        try:
            job = self.queue.job(match.group("jid"))
        except UnknownJobError as err:
            raise ApiError(404, f"unknown job {err}") from err
        return 200, job.snapshot(after=after)

    def get_report(self, match, query, body):
        try:
            job = self.queue.job(match.group("jid"))
        except UnknownJobError as err:
            raise ApiError(404, f"unknown job {err}") from err
        report = job.report_document()
        if report is None:
            raise ApiError(
                409, f"job {job.job_id} is {job.status}; no report yet"
            )
        if query.get("canonical", ["0"])[0] in ("1", "true"):
            report = obs.canonicalize_run_report(report)
        return 200, _report_bytes(report)

    # -- operations -----------------------------------------------------

    def get_metrics(self, match, query, body):
        return 200, {
            "sessions": self.store.snapshot(),
            "jobs": self.queue.snapshot(),
            "engine": self.queue.engine_counters(),
        }

    def get_health(self, match, query, body):
        return 200, {"status": "ok", "sessions": len(self.store)}


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`TuningService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-tuning/1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def do_DELETE(self):
        self._dispatch("DELETE")

    def _dispatch(self, method):
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        for route_method, pattern, target in _ROUTES:
            match = pattern.match(parts.path)
            if match is None:
                continue
            if route_method != method:
                continue
            handler = getattr(self.server.service, target)
            try:
                body = self._read_body() if method == "POST" else None
                status, payload = handler(match, query, body)
            except ApiError as err:
                self._send_error(err)
                return
            except (SystemExit, KeyboardInterrupt):
                raise
            except Exception as err:  # pragma: no cover - defensive
                self._send_error(ApiError(500, f"internal error: {err}"))
                raise
            self._send(status, payload)
            return
        self._send_error(ApiError(404, f"no route for {method} {parts.path}"))

    def _read_body(self):
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "request body too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ApiError(400, f"invalid JSON body: {err}") from err

    def _send(self, status, payload):
        if isinstance(payload, bytes):
            body = payload
            content_type = "application/json"
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode(
                "utf-8"
            )
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, err):
        body = (
            json.dumps({"error": str(err), "status": err.status},
                       sort_keys=True) + "\n"
        ).encode("utf-8")
        self.send_response(err.status)
        self.send_header("Content-Type", "application/json")
        if err.retry_after is not None:
            self.send_header("Retry-After", str(err.retry_after))
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class TuningServer:
    """The assembled service: store + queue + threaded HTTP server.

    Args:
        host: bind address (default loopback).
        port: TCP port; ``0`` picks a free one (tests, examples).
        max_sessions: resident-session cap (LRU eviction beyond it).
        session_ttl: idle seconds before a session expires.
        queue_capacity: pending-job bound (429 beyond it).
        workers: job worker threads.
        measure_jobs: width of the *shared* measurement pool handed to
            every tenant context (``0`` disables sharing; each session's
            ``jobs`` setting still gates whether it is used).
        artifacts_dir: optional shared on-disk artifact directory
            (tenant-scoped keys keep it safe to share).
        verbose: log HTTP requests to stderr.
    """

    def __init__(self, host="127.0.0.1", port=0, max_sessions=8,
                 session_ttl=3600.0, queue_capacity=8, workers=2,
                 measure_jobs=0, artifacts_dir=None, verbose=False):
        executor = None
        self._measure_pool = None
        if measure_jobs:
            from concurrent.futures import ThreadPoolExecutor
            executor = ThreadPoolExecutor(
                max_workers=max(1, int(measure_jobs)),
                thread_name_prefix="repro-server-measure",
            )
            self._measure_pool = executor
        self.store = SessionStore(
            max_sessions=max_sessions,
            ttl_seconds=session_ttl,
            executor=executor,
            artifacts_dir=artifacts_dir,
        )
        self.queue = JobQueue(
            self.store, capacity=queue_capacity, workers=workers
        )
        self.service = TuningService(self.store, self.queue)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self.service
        self.httpd.verbose = verbose
        self._thread = None

    @property
    def address(self):
        """``(host, port)`` actually bound (port resolved if 0)."""
        return self.httpd.server_address[:2]

    @property
    def base_url(self):
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self):
        """Serve in a daemon thread; returns the base URL."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-server-http",
            daemon=True,
        )
        self._thread.start()
        return self.base_url

    def serve_forever(self):
        """Serve on the calling thread (the ``__main__`` path)."""
        self.httpd.serve_forever()

    def close(self):
        """Stop serving and drain the job pool."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.queue.close()
        if self._measure_pool is not None:
            self._measure_pool.shutdown(wait=True)
            self._measure_pool = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
