"""A stdlib HTTP client for the tuning server.

Thin :mod:`urllib.request` wrapper used by the tests, the example, and
the CI smoke script — it is also the reference for anyone driving the
API from another language: one method per endpoint, JSON in/out, and a
:meth:`TuningClient.wait` helper that polls a job with ``Retry-After``
aware backoff and relays progress events to an optional callback.

Raises :class:`ServerError` (carrying the HTTP status and the decoded
error body) on any non-2xx response.
"""

import json
import time
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from ..obs.clock import perf_seconds

DEFAULT_TIMEOUT = 30.0
POLL_SECONDS = 0.05


class ServerError(RuntimeError):
    """A non-2xx response from the tuning server.

    Attributes:
        status: HTTP status code.
        payload: decoded JSON error body (``{"error", "status"}``), or
            ``{}`` when the body was not JSON.
        retry_after: parsed ``Retry-After`` header seconds, or ``None``.
    """

    def __init__(self, status, payload, retry_after=None):
        message = payload.get("error") if isinstance(payload, dict) \
            else None
        super().__init__(message or f"HTTP {status}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        self.retry_after = retry_after


class TuningClient:
    """Client for one tuning server.

    Args:
        base_url: e.g. ``http://127.0.0.1:8451`` (no trailing slash).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url, timeout=DEFAULT_TIMEOUT):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(self, method, path, body=None, raw=False):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=data, headers=headers,
            method=method,
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                payload = response.read()
        except HTTPError as err:
            raw_body = err.read()
            try:
                decoded = json.loads(raw_body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {}
            retry_after = err.headers.get("Retry-After")
            raise ServerError(
                err.code, decoded,
                retry_after=float(retry_after) if retry_after else None,
            ) from err
        if raw:
            return payload
        return json.loads(payload.decode("utf-8"))

    # -- sessions -------------------------------------------------------

    def create_session(self, tenant, scale=1.0, workload_size=100,
                       timeout=1800.0, seed=405, jobs=0, system="A"):
        """``POST /v1/sessions``; returns the session description."""
        return self._request("POST", "/v1/sessions", body={
            "tenant": tenant,
            "scale": scale,
            "workload_size": workload_size,
            "timeout": timeout,
            "seed": seed,
            "jobs": jobs,
            "system": system,
        })

    def sessions(self):
        """``GET /v1/sessions``; returns the live-session list."""
        return self._request("GET", "/v1/sessions")["sessions"]

    def session(self, session_id):
        """``GET /v1/sessions/{id}``."""
        return self._request("GET", f"/v1/sessions/{session_id}")

    def delete_session(self, session_id):
        """``DELETE /v1/sessions/{id}``."""
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    # -- jobs -----------------------------------------------------------

    def submit_experiment(self, session_id, experiment):
        """Submit a full experiment driver; returns the job id."""
        reply = self._request(
            "POST", f"/v1/sessions/{session_id}/workloads",
            body={"experiment": experiment},
        )
        return reply["job"]

    def submit_workload(self, session_id, family, system=None,
                        configurations=None):
        """Submit a family-level measurement; returns the job id."""
        body = {"family": family}
        if system is not None:
            body["system"] = system
        if configurations is not None:
            body["configurations"] = configurations
        reply = self._request(
            "POST", f"/v1/sessions/{session_id}/workloads", body=body
        )
        return reply["job"]

    def job(self, job_id, after=0):
        """``GET /v1/jobs/{id}`` with an event cursor."""
        return self._request("GET", f"/v1/jobs/{job_id}?after={after}")

    def wait(self, job_id, timeout=300.0, on_event=None):
        """Poll a job until it settles; returns its final snapshot.

        Args:
            job_id: the id from a submit call.
            timeout: overall deadline in seconds.
            on_event: optional callable invoked with each fresh progress
                event dict as it is observed.

        Raises:
            TimeoutError: the job did not settle before the deadline.
        """
        deadline = perf_seconds() + timeout
        cursor = 0
        while True:
            snapshot = self.job(job_id, after=cursor)
            if on_event is not None:
                for event in snapshot["events"]:
                    on_event(event)
            cursor = snapshot["cursor"]
            if snapshot["status"] in ("succeeded", "failed"):
                return snapshot
            if perf_seconds() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(POLL_SECONDS)

    def fetch_report(self, job_id, canonical=False):
        """``GET /v1/jobs/{id}/report`` — raw bytes, byte-comparable
        against a CLI ``--report`` file (use ``canonical=True`` for
        cross-run comparison; see ``docs/server.md``)."""
        suffix = "?canonical=1" if canonical else ""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/report{suffix}", raw=True
        )

    # -- operations -----------------------------------------------------

    def metrics(self):
        """``GET /v1/metrics``."""
        return self._request("GET", "/v1/metrics")

    def health(self):
        """``GET /v1/healthz``."""
        return self._request("GET", "/v1/healthz")
