"""Jobs: bounded queueing, recorded execution, progress relay.

A *job* is one workload submission: either a full experiment driver
(``{"experiment": "fig3"}``) or a family-level measurement
(``{"family": "NREF2J", "configurations": ["P", "1C", "R"]}``).  The
:class:`JobQueue` owns a small worker pool and a hard pending-capacity
bound — submissions beyond it raise :class:`JobQueueFull`, which the
HTTP layer turns into ``429 Too Many Requests``.  Backpressure instead
of buffering: an unbounded queue on a recommender service just converts
overload into unbounded latency.

Execution is *recorded*: each job runs under a fresh
:class:`_JobRecorder` (a :class:`~repro.obs.TraceRecorder` that relays
every finished span into the job's progress feed, so ``GET
/v1/jobs/{id}`` can stream what the engine is doing), and the resulting
:mod:`repro.obs` report — schema-validated ``repro.report/v1`` — is
attached to the job for ``GET /v1/jobs/{id}/report``.  Because the
recorder install point is process-global (that is what lets the
measurement pool's worker threads reach it), recorded execution is
exclusive: ``_recording_lock`` serializes the engine portion of jobs.
Queueing, HTTP traffic, and result fetches all stay concurrent; the
engine's determinism does not depend on this lock, only the span/metric
attribution does.

Lock discipline: the worker callable (``_execute``) and everything it
reaches is submitted to a pool, so every shared-attribute write below
sits under a named lock — ``LCK001`` checks this transitively.
"""

import threading
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor

from .. import obs
from ..bench.cli import ABLATIONS
from ..bench.context import FAMILY_GENERATORS
from ..bench.experiments import ALL_EXPERIMENTS
from .sessions import UnknownSessionError

DEFAULT_CAPACITY = 8
DEFAULT_WORKERS = 2
MAX_EVENTS = 512
MAX_FINISHED_JOBS = 256

QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"

CONFIG_NAMES = ("P", "1C", "R")

# Cross-query engine counters surfaced by ``GET /v1/metrics``: the
# template plan cache, the shared-subplan cache, and morsel execution.
ENGINE_COUNTER_PREFIXES = ("template.", "subplan.", "morsel.")


class JobQueueFull(RuntimeError):
    """The pending-job bound is hit; the caller should retry later."""


class UnknownJobError(KeyError):
    """No job with the requested id."""


class BadJobSpec(ValueError):
    """The submitted workload body does not describe a runnable job."""


def parse_spec(body, default_system="A"):
    """Validate a workload-submission body into a normalized spec.

    Args:
        body: decoded JSON object from ``POST .../workloads``.
        default_system: the session's system, used when a family job
            does not name one.

    Returns:
        ``("experiment", {"experiment": id})`` or
        ``("workload", {"system", "family", "configurations"})``.

    Raises:
        BadJobSpec: unknown experiment/family/configuration or a body
            that names neither.
    """
    if not isinstance(body, dict):
        raise BadJobSpec("request body must be a JSON object")
    experiment = body.get("experiment")
    family = body.get("family")
    if experiment is not None and family is not None:
        raise BadJobSpec("pass either 'experiment' or 'family', not both")
    if experiment is not None:
        if experiment in ABLATIONS:
            raise BadJobSpec(
                f"ablation {experiment!r} runs via the CLI only"
            )
        if experiment not in ALL_EXPERIMENTS:
            raise BadJobSpec(f"unknown experiment {experiment!r}")
        return "experiment", {"experiment": experiment}
    if family is not None:
        if family not in FAMILY_GENERATORS:
            raise BadJobSpec(f"unknown family {family!r}")
        system = body.get("system", default_system)
        configurations = body.get("configurations", list(CONFIG_NAMES))
        if not isinstance(configurations, list) or not configurations:
            raise BadJobSpec("'configurations' must be a non-empty list")
        unknown = [c for c in configurations if c not in CONFIG_NAMES]
        if unknown:
            raise BadJobSpec(f"unknown configuration(s) {unknown}")
        return "workload", {
            "system": system,
            "family": family,
            "configurations": configurations,
        }
    raise BadJobSpec("body must name an 'experiment' or a 'family'")


class Job:
    """One submission's lifecycle, progress feed, result, and report.

    All mutable state is guarded by the job's own lock; snapshots are
    plain JSON-ready dicts.
    """

    def __init__(self, job_id, session_id, tenant, kind, spec):
        self.job_id = job_id
        self.session_id = session_id
        self.tenant = tenant
        self.kind = kind
        self.spec = spec
        self._lock = threading.Lock()
        self._status = QUEUED
        self._error = None
        self._result = None
        self._report = None
        self._events = deque(maxlen=MAX_EVENTS)
        self._seq = 0

    # -- transitions ----------------------------------------------------

    def start(self):
        with self._lock:
            self._status = RUNNING
        self.emit("job.started")

    def finish(self, result, report):
        with self._lock:
            self._result = result
            self._report = report
            self._status = SUCCEEDED
        self.emit("job.finished")

    def fail(self, error):
        with self._lock:
            if self._status in (SUCCEEDED, FAILED):
                return
            self._error = f"{type(error).__name__}: {error}"
            self._status = FAILED
        self.emit("job.failed", error=str(error))

    # -- progress feed --------------------------------------------------

    def emit(self, name, **payload):
        """Append one progress event (bounded; oldest events drop)."""
        with self._lock:
            self._seq += 1
            self._events.append(
                {"seq": self._seq, "name": name, **payload}
            )

    def emit_span(self, span):
        """Relay a finished tracing span into the progress feed."""
        attrs = {
            key: value
            for key, value in span.attrs.items()
            if key not in ("seq", "name", "wall_s")
            and isinstance(value, (str, int, float, bool, type(None)))
        }
        self.emit(f"span.{span.name}", wall_s=round(span.wall_s, 6),
                  **attrs)

    # -- reads ----------------------------------------------------------

    @property
    def status(self):
        with self._lock:
            return self._status

    def snapshot(self, after=0):
        """The job's public JSON shape, with events newer than ``after``.

        The caller polls with the last seen ``cursor`` to receive only
        fresh events; ``cursor`` always reports the newest sequence
        number so the next poll can resume.
        """
        with self._lock:
            events = [e for e in self._events if e["seq"] > after]
            return {
                "id": self.job_id,
                "session": self.session_id,
                "tenant": self.tenant,
                "kind": self.kind,
                "spec": dict(self.spec),
                "status": self._status,
                "error": self._error,
                "result": self._result,
                "events": events,
                "cursor": self._seq,
            }

    def report_document(self):
        """The job's ``repro.report/v1`` dict, or ``None`` until done."""
        with self._lock:
            return self._report


class _JobRecorder(obs.TraceRecorder):
    """A trace recorder that relays finished spans to a job's feed."""

    def __init__(self, job):
        super().__init__()
        self._job = job

    def _finish(self, span):
        super()._finish(span)
        self._job.emit_span(span)


def run_spec(context, kind, spec):
    """Execute a normalized job spec against a tenant context.

    Mirrors the one-shot CLI exactly for ``experiment`` jobs (same span,
    same driver call), which is what makes a served report canonically
    byte-identical to ``python -m repro.bench run <id> --report``.

    Returns:
        A JSON-ready result summary dict.
    """
    if kind == "experiment":
        experiment_id = spec["experiment"]
        with obs.span("bench.experiment", experiment=experiment_id):
            result = ALL_EXPERIMENTS[experiment_id](context)
        return {
            "experiment": result.experiment,
            "title": result.title,
            "text": str(result),
        }
    system = spec["system"]
    family = spec["family"]
    measured = {}
    with obs.span("server.workload", system=system, family=family):
        for config_name in spec["configurations"]:
            measurement = context.measure(system, family, config_name)
            if measurement is None:
                measured[config_name] = None
                continue
            measured[config_name] = {
                "queries": len(measurement.elapsed),
                "total_seconds": float(measurement.elapsed.sum()),
                "timeouts": int(measurement.timed_out.sum()),
            }
    return {"system": system, "family": family, "measured": measured}


class JobQueue:
    """Bounded job intake over a shared worker pool.

    Args:
        store: the server's :class:`~repro.server.sessions.SessionStore`.
        capacity: maximum queued-or-running jobs; beyond it
            :meth:`submit` raises :class:`JobQueueFull` (HTTP 429).
        workers: worker threads draining the queue.  Engine work is
            additionally serialized by the recording lock (see the
            module docstring), so extra workers mainly overlap
            bookkeeping; the default keeps two jobs in flight.
    """

    def __init__(self, store, capacity=DEFAULT_CAPACITY,
                 workers=DEFAULT_WORKERS):
        self.store = store
        self.capacity = max(1, int(capacity))
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(workers)),
            thread_name_prefix="repro-server-job",
        )
        self._lock = threading.Lock()
        self._recording_lock = threading.Lock()
        self._jobs = OrderedDict()
        self._pending = 0
        self._next_id = 0
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._engine_counters = {}

    # ------------------------------------------------------------------
    # Intake

    def submit(self, session, kind, spec):
        """Queue a job for ``session`` (already pinned by the caller's
        ``acquire_job``) and return it.

        Raises:
            JobQueueFull: the pending bound is hit; the session pin is
                released before raising so backpressured submissions do
                not leak ``active_jobs``.
        """
        with self._lock:
            if self._pending >= self.capacity:
                self._rejected += 1
                self.store.release_job(session.session_id)
                raise JobQueueFull(
                    f"{self._pending} jobs pending "
                    f"(capacity {self.capacity})"
                )
            self._pending += 1
            self._next_id += 1
            self._submitted += 1
            job = Job(
                f"j-{self._next_id:06d}",
                session.session_id,
                session.tenant,
                kind,
                spec,
            )
            self._jobs[job.job_id] = job
            self._trim_locked()
        future = self._executor.submit(self._execute, job)
        future.add_done_callback(
            lambda finished: self._finalize(job, finished)
        )
        return job

    def job(self, job_id):
        """Look up a job by id.

        Raises:
            UnknownJobError: unknown (or long-since trimmed) id.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def snapshot(self):
        """Queue counters for ``/v1/metrics`` (a plain dict)."""
        with self._lock:
            return {
                "pending": self._pending,
                "capacity": self.capacity,
                "submitted": self._submitted,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
            }

    def engine_counters(self):
        """Queue-lifetime cross-query engine counters (a plain dict).

        The cumulative ``template.*`` / ``subplan.*`` / ``morsel.*``
        counters of every finished job, folded together for
        ``GET /v1/metrics``.  Read-only aggregation after each job's
        recorder is closed, so nothing here can leak into a report.
        """
        with self._lock:
            return dict(self._engine_counters)

    def _absorb_engine_counters(self, counters):
        """Fold one finished job's engine counters into the totals."""
        with self._lock:
            for name, value in counters.items():
                if name.startswith(ENGINE_COUNTER_PREFIXES):
                    self._engine_counters[name] = (
                        self._engine_counters.get(name, 0) + value
                    )

    def close(self):
        """Drain and shut down the worker pool."""
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Execution (pool-submitted: every shared write is lock-guarded)

    def _execute(self, job):
        try:
            session = self.store.get(job.session_id)
        except UnknownSessionError as err:
            job.fail(err)
            return
        job.start()
        # The global recorder slot is exclusive while a job's engine
        # work runs, so its spans/metrics (including those emitted by
        # measurement-pool worker threads) land on this job only.
        with self._recording_lock:
            recorder = _JobRecorder(job)
            with obs.recording(recorder):
                result = run_spec(session.context, job.kind, job.spec)
            report = session.context.run_report(
                recorder=recorder, experiments=[_label(job)]
            )
            obs.validate_run_report(report)
        self._absorb_engine_counters(
            recorder.metrics.snapshot().get("counters", {})
        )
        job.finish(result, report)

    def _finalize(self, job, future):
        error = future.exception()
        if error is not None:
            job.fail(error)
        self.store.release_job(job.session_id)
        with self._lock:
            self._pending -= 1
            if job.status == FAILED:
                self._failed += 1
            else:
                self._completed += 1

    def _trim_locked(self):
        finished = (SUCCEEDED, FAILED)
        while len(self._jobs) > MAX_FINISHED_JOBS:
            victim = next(
                (
                    job_id
                    for job_id, job in self._jobs.items()
                    if job.status in finished
                ),
                None,
            )
            if victim is None:
                return
            del self._jobs[victim]


def _label(job):
    """The manifest label of a job (the CLI's experiment-id analogue)."""
    if job.kind == "experiment":
        return job.spec["experiment"]
    return f"{job.spec['system']}/{job.spec['family']}"
