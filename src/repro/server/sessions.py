"""Tenant sessions: warm per-tenant state with eviction and TTL.

A *session* is one tenant's long-lived tuning context: the loaded
:class:`~repro.engine.database.Database` instances (with their plan,
dictionary, what-if, and shard-runtime caches), the sampled workloads,
and the recommendations — everything the one-shot CLI rebuilds from
scratch on every invocation stays warm here across requests.

Isolation is layered:

* every session owns a :class:`TenantContext`, a
  :class:`~repro.bench.context.BenchContext` whose artifact keys are
  prefixed with the tenant name — so even when sessions share one
  artifact store (or one ``REPRO_CACHE_DIR`` disk directory), a tenant
  can never observe another tenant's cached plans, workloads, or
  measurements;
* the live ``Database`` objects (and their plan/bind/what-if/dictionary
  caches) are per-context and therefore per-tenant by construction.

The :class:`SessionStore` is the lock-guarded registry: creation,
lookup, LRU eviction under ``max_sessions``, and idle-TTL expiry all
happen under one lock, with a monotonic injectable clock so tests can
drive expiry deterministically.  Sessions with jobs in flight are never
evicted or expired.
"""

import itertools
import threading
from collections import OrderedDict

from ..bench.context import BenchContext, BenchSettings
from ..obs.clock import perf_seconds
from ..runtime.artifacts import ArtifactCache, artifact_key

DEFAULT_MAX_SESSIONS = 8
DEFAULT_TTL_SECONDS = 3600.0


class SessionLimitError(RuntimeError):
    """The store is full and every resident session has jobs in flight."""


class UnknownSessionError(KeyError):
    """No session with the requested id (never existed, evicted, or
    expired)."""


class TenantContext(BenchContext):
    """A bench context whose artifact keys are scoped to one tenant.

    Every cache key produced by :meth:`_key` mixes the tenant name in
    front of the usual settings content key, so two tenants issuing the
    same request against a shared artifact store (in memory or under a
    shared ``REPRO_CACHE_DIR``) read and write *disjoint* entries —
    identical results, distinct keys.
    """

    def __init__(self, tenant, settings=None, artifacts=None,
                 executor=None):
        super().__init__(settings, artifacts=artifacts, executor=executor)
        self.tenant = tenant

    def _key(self, *parts):
        return artifact_key(
            "tenant", self.tenant, *self.settings.content_key(), *parts
        )


class TenantSession:
    """One tenant's warm tuning state plus its bookkeeping.

    Mutable fields (``last_used``, ``active_jobs``, ``jobs_run``) are
    only ever written while holding the owning store's lock; the session
    object itself carries no lock of its own.
    """

    def __init__(self, session_id, tenant, system, settings, context,
                 created):
        self.session_id = session_id
        self.tenant = tenant
        self.system = system
        self.settings = settings
        self.context = context
        self.created = created
        self.last_used = created
        self.active_jobs = 0
        self.jobs_run = 0

    def describe(self):
        """The session's public JSON shape (no live objects)."""
        settings = self.settings
        return {
            "id": self.session_id,
            "tenant": self.tenant,
            "system": self.system,
            "settings": {
                "scale": settings.scale,
                "workload_size": settings.workload_size,
                "timeout": settings.timeout,
                "seed": settings.seed,
                "jobs": self.context.jobs,
            },
            "active_jobs": self.active_jobs,
            "jobs_run": self.jobs_run,
        }


class SessionStore:
    """Lock-guarded, LRU-evicting, TTL-expiring session registry.

    Args:
        max_sessions: resident-session cap.  Creating a session beyond
            the cap evicts the least-recently-used *idle* session; when
            every resident session has jobs in flight,
            :class:`SessionLimitError` is raised instead.
        ttl_seconds: idle time after which a session expires (``None``
            disables expiry).  Expiry is swept opportunistically on
            every store operation — there is no background thread.
        clock: zero-argument monotonic-seconds callable (injectable for
            tests; defaults to :func:`repro.obs.clock.perf_seconds`).
        executor: optional shared worker pool handed to every
            :class:`TenantContext` (the server's one measurement pool).
        artifacts_dir: optional directory for per-session
            :class:`~repro.runtime.artifacts.ArtifactCache` persistence.
            Safe to share across tenants: keys are tenant-scoped.
    """

    def __init__(self, max_sessions=DEFAULT_MAX_SESSIONS,
                 ttl_seconds=DEFAULT_TTL_SECONDS, clock=perf_seconds,
                 executor=None, artifacts_dir=None):
        self.max_sessions = max(1, int(max_sessions))
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._executor = executor
        self._artifacts_dir = artifacts_dir
        self._lock = threading.Lock()
        self._sessions = OrderedDict()
        self._ids = itertools.count(1)
        self._created = 0
        self._evicted = 0
        self._expired = 0
        self._deleted = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def create(self, tenant, settings=None, system="A"):
        """Create (and register) a session for ``tenant``.

        Args:
            tenant: tenant name; scopes every artifact key the session's
                context will ever produce.
            settings: a :class:`~repro.bench.context.BenchSettings`
                (defaults to the stock settings).
            system: default system profile for family-level jobs.

        Returns:
            The new :class:`TenantSession`.

        Raises:
            SessionLimitError: store full and nothing is evictable.
        """
        settings = settings or BenchSettings()
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            self._make_room_locked()
            session_id = f"s-{next(self._ids):06d}"
            context = TenantContext(
                tenant,
                settings,
                artifacts=ArtifactCache(self._artifacts_dir),
                executor=self._executor,
            )
            session = TenantSession(
                session_id, tenant, system, settings, context, now
            )
            self._sessions[session_id] = session
            self._created += 1
            return session

    def get(self, session_id):
        """Look up a session and mark it as just used (LRU touch).

        Raises:
            UnknownSessionError: unknown, evicted, or expired id.
        """
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(session_id)
            session.last_used = now
            self._sessions.move_to_end(session_id)
            return session

    def remove(self, session_id):
        """Delete a session explicitly (``DELETE /v1/sessions/{id}``).

        Raises:
            UnknownSessionError: unknown id.
            SessionLimitError: the session still has jobs in flight.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(session_id)
            if session.active_jobs:
                raise SessionLimitError(
                    f"session {session_id} has {session.active_jobs} "
                    f"job(s) in flight"
                )
            del self._sessions[session_id]
            self._deleted += 1

    # ------------------------------------------------------------------
    # Job accounting (called by the job queue)

    def acquire_job(self, session_id):
        """Pin a session for a job: touches LRU, bumps ``active_jobs``.

        A pinned session cannot be evicted or expired until every
        acquired job is released.  Lookup and pinning are one atomic
        step so a concurrent ``create`` cannot evict the session in
        between.

        Raises:
            UnknownSessionError: unknown, evicted, or expired id.
        """
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(session_id)
            session.last_used = now
            self._sessions.move_to_end(session_id)
            session.active_jobs += 1
            return session

    def release_job(self, session_id):
        """Unpin a session after a job finished (idempotent on missing
        sessions: an explicit DELETE may have raced the job)."""
        now = self._clock()
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                session.active_jobs = max(0, session.active_jobs - 1)
                session.jobs_run += 1
                session.last_used = now

    # ------------------------------------------------------------------
    # Introspection

    def sessions(self):
        """Live sessions, least-recently-used first (a copied list)."""
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            return list(self._sessions.values())

    def __len__(self):
        with self._lock:
            return len(self._sessions)

    def snapshot(self):
        """Store counters for ``/v1/metrics`` (a plain dict)."""
        with self._lock:
            return {
                "active": len(self._sessions),
                "created": self._created,
                "evicted": self._evicted,
                "expired": self._expired,
                "deleted": self._deleted,
                "max_sessions": self.max_sessions,
            }

    # ------------------------------------------------------------------
    # Internals (all called with the lock held)

    def _sweep_locked(self, now):
        if self.ttl_seconds is None:
            return
        expired = [
            session_id
            for session_id, session in self._sessions.items()
            if not session.active_jobs
            and now - session.last_used > self.ttl_seconds
        ]
        for session_id in expired:
            del self._sessions[session_id]
            self._expired += 1

    def _make_room_locked(self):
        while len(self._sessions) >= self.max_sessions:
            victim = next(
                (
                    session_id
                    for session_id, session in self._sessions.items()
                    if not session.active_jobs
                ),
                None,
            )
            if victim is None:
                raise SessionLimitError(
                    f"{len(self._sessions)} resident sessions, all with "
                    f"jobs in flight (max_sessions={self.max_sessions})"
                )
            del self._sessions[victim]
            self._evicted += 1
