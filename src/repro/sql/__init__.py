"""SQL subset: AST, parser, binder."""

from .binder import Binder, BoundQuery
from .parser import parse

__all__ = ["Binder", "BoundQuery", "parse"]
