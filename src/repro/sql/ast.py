"""Abstract syntax tree for the benchmark SQL subset.

The subset covers everything the paper's query families need (Section
3.2.2): select-project-join blocks with equality join predicates,
comparison predicates against literals, simple aggregates
(``COUNT(*)``, ``COUNT(col)``, ``COUNT(DISTINCT col)``, ``SUM``/``AVG``/
``MIN``/``MAX``), ``GROUP BY``, and one level of nesting through
``col IN (SELECT c FROM t GROUP BY c HAVING COUNT(*) op k)``.
"""

from dataclasses import dataclass

COMPARISON_OPS = ("=", "<>", "<=", ">=", "<", ">")
AGG_FUNCS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference like ``t.lineage``."""

    qualifier: str
    column: str

    def to_sql(self):
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Literal:
    """A string or numeric constant."""

    value: object

    def to_sql(self):
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class Star:
    """The ``*`` inside ``COUNT(*)``."""

    def to_sql(self):
        return "*"


@dataclass(frozen=True)
class FuncCall:
    """An aggregate function call."""

    func: str
    arg: object            # ColumnRef or Star
    distinct: bool = False

    def to_sql(self):
        inner = self.arg.to_sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func.upper()}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One projection of the SELECT list."""

    expr: object           # ColumnRef or FuncCall
    alias: str = None

    def to_sql(self):
        text = self.expr.to_sql()
        if self.alias:
            text = f"{text} AS {self.alias}"
        return text


@dataclass(frozen=True)
class Comparison:
    """``left op right`` where left is a column or aggregate call."""

    left: object           # ColumnRef or FuncCall (in HAVING)
    op: str
    right: object          # ColumnRef or Literal

    def to_sql(self):
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"


@dataclass(frozen=True)
class InSubquery:
    """``column IN (subquery)``."""

    column: ColumnRef
    query: "Query"

    def to_sql(self):
        return f"{self.column.to_sql()} IN ({self.query.to_sql()})"


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry ``table [alias]``."""

    table: str
    alias: str = None

    @property
    def binding(self):
        return self.alias or self.table

    def to_sql(self):
        if self.alias:
            return f"{self.table} {self.alias}"
        return self.table


@dataclass(frozen=True)
class Query:
    """One query block."""

    select: tuple
    from_tables: tuple
    where: tuple = ()
    group_by: tuple = ()
    having: Comparison = None

    def to_sql(self):
        parts = [
            "SELECT " + ", ".join(item.to_sql() for item in self.select),
            "FROM " + ", ".join(ref.to_sql() for ref in self.from_tables),
        ]
        if self.where:
            parts.append(
                "WHERE " + " AND ".join(pred.to_sql() for pred in self.where)
            )
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(col.to_sql() for col in self.group_by)
            )
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        return " ".join(parts)


def query(select, from_tables, where=(), group_by=(), having=None):
    """Convenience constructor normalizing lists to tuples."""
    return Query(
        select=tuple(select),
        from_tables=tuple(from_tables),
        where=tuple(where),
        group_by=tuple(group_by),
        having=having,
    )
