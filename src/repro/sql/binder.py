"""Name resolution: AST -> bound query.

The bound form is what the optimizer consumes: relations keyed by alias,
equality join predicates, literal filters, semijoin (IN-subquery)
predicates in the benchmark's ``GROUP BY ... HAVING COUNT(*) op k`` shape,
group-by columns and aggregate specs.
"""

from dataclasses import dataclass, field

from ..common.errors import BindError
from .ast import ColumnRef, Comparison, FuncCall, InSubquery, Literal, Star


@dataclass(frozen=True)
class BoundColumn:
    """A column pinned to a relation alias."""

    alias: str
    column: str

    def __str__(self):
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class JoinPred:
    """Equality join ``left = right`` between two relation aliases."""

    left: BoundColumn
    right: BoundColumn


@dataclass(frozen=True)
class Filter:
    """Comparison of a column against a literal."""

    target: BoundColumn
    op: str
    value: object


@dataclass(frozen=True)
class SemiJoin:
    """``target IN (SELECT sub_column FROM sub_table GROUP BY sub_column
    HAVING COUNT(*) op value)``."""

    target: BoundColumn
    sub_table: str
    sub_column: str
    having_op: str
    having_value: int


@dataclass(frozen=True)
class AggSpec:
    """One aggregate of the SELECT list."""

    func: str
    arg: BoundColumn = None   # None means COUNT(*)
    distinct: bool = False

    def label(self):
        inner = "*" if self.arg is None else str(self.arg)
        prefix = "distinct " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


@dataclass
class BoundQuery:
    """A fully-resolved query block."""

    relations: dict                      # alias -> table name (ordered)
    join_preds: list = field(default_factory=list)
    filters: list = field(default_factory=list)
    semijoins: list = field(default_factory=list)
    group_by: list = field(default_factory=list)
    aggregates: list = field(default_factory=list)
    output: list = field(default_factory=list)   # ('col', BoundColumn) | ('agg', i)
    sql: str = ""

    def aliases(self):
        return list(self.relations)

    def columns_of(self, alias):
        """All columns of ``alias`` referenced anywhere in the query."""
        needed = set()
        for pred in self.join_preds:
            for side in (pred.left, pred.right):
                if side.alias == alias:
                    needed.add(side.column)
        for flt in self.filters:
            if flt.target.alias == alias:
                needed.add(flt.target.column)
        for semi in self.semijoins:
            if semi.target.alias == alias:
                needed.add(semi.target.column)
        for col in self.group_by:
            if col.alias == alias:
                needed.add(col.column)
        for agg in self.aggregates:
            if agg.arg is not None and agg.arg.alias == alias:
                needed.add(agg.arg.column)
        for kind, ref in self.output:
            if kind == "col" and ref.alias == alias:
                needed.add(ref.column)
        return sorted(needed)


class Binder:
    """Resolves one AST query block against a catalog."""

    def __init__(self, catalog):
        self._catalog = catalog

    def bind(self, ast_query):
        relations = {}
        for ref in ast_query.from_tables:
            if not self._catalog.has_table(ref.table):
                raise BindError(f"unknown table {ref.table!r}")
            binding = ref.binding
            if binding in relations:
                raise BindError(f"duplicate alias {binding!r}")
            relations[binding] = ref.table

        bound = BoundQuery(relations=relations, sql=ast_query.to_sql())

        for pred in ast_query.where:
            self._bind_predicate(bound, pred)

        for col in ast_query.group_by:
            bound.group_by.append(self._resolve(bound, col))

        for item in ast_query.select:
            if isinstance(item.expr, FuncCall):
                bound.aggregates.append(self._bind_agg(bound, item.expr))
                bound.output.append(("agg", len(bound.aggregates) - 1))
            else:
                resolved = self._resolve(bound, item.expr)
                if bound.group_by and resolved not in bound.group_by:
                    raise BindError(
                        f"{resolved} selected but not grouped"
                    )
                bound.output.append(("col", resolved))

        if ast_query.having is not None:
            raise BindError(
                "HAVING is only supported inside IN-subqueries"
            )
        return bound

    # ------------------------------------------------------------------

    def _bind_predicate(self, bound, pred):
        if isinstance(pred, InSubquery):
            bound.semijoins.append(self._bind_semijoin(bound, pred))
            return
        if not isinstance(pred, Comparison):
            raise BindError(f"unsupported predicate {pred!r}")
        left = self._resolve(bound, pred.left)
        if isinstance(pred.right, ColumnRef):
            right = self._resolve(bound, pred.right)
            if pred.op != "=":
                raise BindError("only equality joins are supported")
            bound.join_preds.append(JoinPred(left, right))
        elif isinstance(pred.right, Literal):
            bound.filters.append(Filter(left, pred.op, pred.right.value))
        else:
            raise BindError(f"unsupported comparison operand {pred.right!r}")

    def _bind_semijoin(self, bound, pred):
        target = self._resolve(bound, pred.column)
        sub = pred.query
        if len(sub.from_tables) != 1 or sub.where or len(sub.group_by) != 1:
            raise BindError(
                "IN-subqueries must be single-table GROUP BY blocks"
            )
        sub_table = sub.from_tables[0].table
        if not self._catalog.has_table(sub_table):
            raise BindError(f"unknown table {sub_table!r} in subquery")
        group_col = sub.group_by[0].column
        if len(sub.select) != 1:
            raise BindError("IN-subqueries must select exactly one column")
        sel = sub.select[0].expr
        if not isinstance(sel, ColumnRef) or sel.column != group_col:
            raise BindError(
                "IN-subqueries must select their GROUP BY column"
            )
        having = sub.having
        if having is None or not isinstance(having.left, FuncCall) \
                or having.left.func != "count" \
                or not isinstance(having.left.arg, Star):
            raise BindError(
                "IN-subqueries must have a HAVING COUNT(*) predicate"
            )
        if not isinstance(having.right, Literal):
            raise BindError("HAVING must compare against a literal")
        schema = self._catalog.table(sub_table)
        if not schema.has_column(group_col):
            raise BindError(
                f"no column {group_col!r} in table {sub_table!r}"
            )
        return SemiJoin(
            target=target,
            sub_table=sub_table,
            sub_column=group_col,
            having_op=having.op,
            having_value=int(having.right.value),
        )

    def _bind_agg(self, bound, call):
        if isinstance(call.arg, Star):
            if call.func != "count":
                raise BindError(f"{call.func.upper()}(*) is not supported")
            return AggSpec("count", None, False)
        arg = self._resolve(bound, call.arg)
        return AggSpec(call.func, arg, call.distinct)

    def _resolve(self, bound, ref):
        if ref.qualifier is not None:
            if ref.qualifier not in bound.relations:
                raise BindError(f"unknown alias {ref.qualifier!r}")
            table = bound.relations[ref.qualifier]
            if not self._catalog.table(table).has_column(ref.column):
                raise BindError(
                    f"no column {ref.column!r} in {table!r} "
                    f"(alias {ref.qualifier!r})"
                )
            return BoundColumn(ref.qualifier, ref.column)
        candidates = [
            alias
            for alias, table in bound.relations.items()
            if self._catalog.table(table).has_column(ref.column)
        ]
        if not candidates:
            raise BindError(f"column {ref.column!r} resolves to no table")
        if len(candidates) > 1:
            raise BindError(
                f"column {ref.column!r} is ambiguous across {candidates}"
            )
        return BoundColumn(candidates[0], ref.column)
