"""Recursive-descent parser for the benchmark SQL subset.

``parse(sql)`` returns a :class:`repro.sql.ast.Query`.  The grammar is the
subset used by the paper's query families plus obvious generalizations;
anything outside it raises :class:`~repro.common.errors.ParseError` with
the offending offset.
"""

import re

from ..common.errors import ParseError
from .ast import (
    AGG_FUNCS,
    ColumnRef,
    Comparison,
    FuncCall,
    InSubquery,
    Literal,
    SelectItem,
    Star,
    TableRef,
    query,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|=|<|>)
  | (?P<punct>[(),.*-])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "having",
    "and", "in", "as", "distinct",
}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind, text, pos):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(sql):
    tokens = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r}", pos)
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            if kind == "ident" and text.lower() in _KEYWORDS:
                kind = "keyword"
                text = text.lower()
            tokens.append(_Token(kind, text, pos))
        pos = match.end()
    tokens.append(_Token("eof", "", pos))
    return tokens


class _Parser:
    def __init__(self, sql):
        self._sql = sql
        self._tokens = _tokenize(sql)
        self._index = 0

    # -- token helpers --------------------------------------------------

    @property
    def _current(self):
        return self._tokens[self._index]

    def _advance(self):
        token = self._current
        self._index += 1
        return token

    def _expect(self, kind, text=None):
        token = self._current
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {token.text!r}", token.pos
            )
        return self._advance()

    def _accept(self, kind, text=None):
        token = self._current
        if token.kind == kind and (text is None or token.text == text):
            self._advance()
            return True
        return False

    # -- grammar --------------------------------------------------------

    def parse_query(self):
        node = self._query_block()
        self._expect("eof")
        return node

    def _query_block(self):
        self._expect("keyword", "select")
        select = [self._select_item()]
        while self._accept("punct", ","):
            select.append(self._select_item())

        self._expect("keyword", "from")
        tables = [self._table_ref()]
        while self._accept("punct", ","):
            tables.append(self._table_ref())

        where = []
        if self._accept("keyword", "where"):
            where.append(self._predicate())
            while self._accept("keyword", "and"):
                where.append(self._predicate())

        group_by = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._column_ref())
            while self._accept("punct", ","):
                group_by.append(self._column_ref())

        having = None
        if self._accept("keyword", "having"):
            having = self._having_predicate()

        return query(select, tables, where, group_by, having)

    def _select_item(self):
        expr = self._select_expr()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif self._current.kind == "ident" and self._peek_is_alias():
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _peek_is_alias(self):
        nxt = self._tokens[self._index + 1]
        return nxt.kind in ("punct", "keyword", "eof") and nxt.text != "."

    def _select_expr(self):
        token = self._current
        if token.kind == "ident" and token.text.lower() in AGG_FUNCS \
                and self._tokens[self._index + 1].text == "(":
            return self._func_call()
        return self._column_ref()

    def _func_call(self):
        func = self._expect("ident").text.lower()
        self._expect("punct", "(")
        distinct = self._accept("keyword", "distinct")
        if self._accept("punct", "*"):
            arg = Star()
        else:
            arg = self._column_ref()
        self._expect("punct", ")")
        return FuncCall(func, arg, distinct)

    def _column_ref(self):
        first = self._expect("ident").text
        if self._accept("punct", "."):
            second = self._expect("ident").text
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    def _table_ref(self):
        table = self._expect("ident").text
        alias = None
        if self._current.kind == "ident":
            alias = self._advance().text
        return TableRef(table, alias)

    def _predicate(self):
        column = self._column_ref()
        if self._accept("keyword", "in"):
            self._expect("punct", "(")
            sub = self._query_block()
            self._expect("punct", ")")
            return InSubquery(column, sub)
        op = self._expect("op").text
        right = self._operand()
        return Comparison(column, op, right)

    def _having_predicate(self):
        left = self._func_call()
        op = self._expect("op").text
        right = self._operand()
        return Comparison(left, op, right)

    def _operand(self):
        token = self._current
        if token.kind == "punct" and token.text == "-":
            self._advance()
            number = self._expect("number")
            text = number.text
            return Literal(-float(text) if "." in text else -int(text))
        if token.kind == "number":
            self._advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self._advance()
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "ident":
            return self._column_ref()
        raise ParseError(
            f"expected literal or column, found {token.text!r}", token.pos
        )


def parse(sql):
    """Parse SQL text into a :class:`~repro.sql.ast.Query`."""
    return _Parser(sql).parse_query()


def tokenize(sql):
    """Lex SQL text into the parser's token stream.

    Exposed for the bind-template cache, which needs literal token
    positions without paying for a full parse.  Each token has ``kind``
    (``number``/``string``/``ident``/``keyword``/``op``/``punct``/
    ``eof``), ``text`` and ``pos``.
    """
    return _tokenize(sql)


def scan_literals(sql):
    """``(kind, text, pos)`` of every literal token, in one regex sweep.

    A single ``finditer`` pass of the token pattern: the regex engine
    applies the same alternation order at each position the tokenizer
    does, so on any string the tokenizer accepts this yields exactly
    its ``number``/``string`` tokens (an identifier like ``col1``
    swallows its digits in both).  Characters outside the grammar are
    skipped instead of raised on — callers needing the
    :class:`ParseError` must parse for real, which the bind-template
    probe does anyway.
    """
    return [
        (match.lastgroup, match.group(), match.start())
        for match in _TOKEN_RE.finditer(sql)
        if match.lastgroup in ("number", "string")
    ]
