"""Bind templates: parse/bind once per SQL skeleton, rebind constants.

Workload families emit thousands of SQL strings that differ only in
their literals.  :class:`BindTemplates` abstracts each string to its
*skeleton* — the text with literal tokens removed — and binds one
representative per skeleton; every later member is produced by lexing
its literals and substituting them into a clone of the cached
:class:`~repro.sql.binder.BoundQuery`.

Correctness rests on a sentinel probe, not on guessing where literals
land: the skeleton is re-parsed once with a distinct sentinel in every
literal position, and the bound probe reveals which filter (with which
sign) or semijoin HAVING constant each position feeds, plus the
canonical ``to_sql`` rendering the bound form's ``sql`` field needs.  A
skeleton whose probe cannot account for every literal exactly once
falls back to ordinary parse+bind permanently.

The rebound query is equal (dataclass equality, ``sql`` text included)
to what ``Binder.bind(parse(sql))`` would produce — the binder has no
value-dependent checks beyond the ``int()`` coercion of HAVING
constants, which the slot transform reproduces.
"""

from dataclasses import dataclass, replace

from .. import obs
from ..common.errors import BindError, ParseError
from .ast import Literal
from .binder import Binder, BoundQuery
from .parser import parse, scan_literals

# 9-digit sentinels: no value is a substring of another (equal length,
# distinct), so locating their renderings in the normalized SQL is exact.
_SENTINEL_BASE = 880_000_003
_SENTINEL_STEP = 1_009

def _sentinel_int(i):
    return _SENTINEL_BASE + _SENTINEL_STEP * i


def _sentinel_str(i):
    return f"@@repro-slot-{i}@@"


def _convert_number(text):
    return float(text) if "." in text else int(text)


def _convert_string(text):
    return text[1:-1].replace("''", "'")


def _split_literals(sql):
    """(segments, lexemes, kinds): the skeleton and its literal tokens."""
    segments, lexemes, kinds = [], [], []
    last = 0
    for kind, text, pos in scan_literals(sql):
        segments.append(sql[last:pos])
        lexemes.append(text)
        kinds.append(kind)
        last = pos + len(text)
    segments.append(sql[last:])
    return segments, lexemes, kinds


@dataclass
class _Template:
    """One skeleton's bound probe and literal-slot map."""

    bound: BoundQuery        # probe binding (sentinel values)
    slots: list              # per literal: ("filter"|"semi", index, sign)
    norm_segments: list      # bound.sql split at the literal renderings


class BindTemplates:
    """Per-database cache of bind templates (keyed by SQL skeleton)."""

    def __init__(self, catalog):
        self._catalog = catalog
        self._templates = {}

    def clear(self):
        self._templates.clear()

    def __len__(self):
        return len(self._templates)

    def bind(self, sql):
        """Bind ``sql`` through its skeleton template.

        Returns ``None`` when the skeleton is not template-safe; the
        caller then parses and binds normally (and surfaces that path's
        own errors, so template probing never changes error behavior).
        """
        segments, lexemes, kinds = _split_literals(sql)
        key = (tuple(segments), tuple(kinds))
        template = self._templates.get(key)
        if template is None:
            template = self._build(segments, kinds)
            self._templates[key] = template
            if template is not None:
                obs.counter_add("template.bind_builds")
        if template is None:
            return None
        obs.counter_add("template.bind_replays")
        return self._instantiate(template, lexemes, kinds)

    # ------------------------------------------------------------------

    def _build(self, segments, kinds):
        probe_lexemes = []
        for i, kind in enumerate(kinds):
            if kind == "number":
                probe_lexemes.append(str(_sentinel_int(i)))
            else:
                probe_lexemes.append(f"'{_sentinel_str(i)}'")
        probe_sql = _join(segments, probe_lexemes)
        try:
            bound = Binder(self._catalog).bind(parse(probe_sql))
        except (ParseError, BindError, ValueError):
            # A failing probe means the member would fail the same way;
            # the fallback path surfaces the member's own error.
            return None

        int_slots = {_sentinel_int(i): i for i, k in enumerate(kinds)
                     if k == "number"}
        str_slots = {_sentinel_str(i): i for i, k in enumerate(kinds)
                     if k == "string"}
        slots = [None] * len(kinds)

        def claim(value, kind, index):
            """Match one bound constant back to its literal position."""
            if isinstance(value, str):
                i = str_slots.get(value)
                sign = 1
            else:
                i = int_slots.get(value)
                sign = 1
                if i is None:
                    i = int_slots.get(-value)
                    sign = -1
            if i is None or slots[i] is not None:
                return False
            slots[i] = (kind, index, sign)
            return True

        for index, flt in enumerate(bound.filters):
            if not claim(flt.value, "filter", index):
                return None
        for index, semi in enumerate(bound.semijoins):
            if not claim(semi.having_value, "semi", index):
                return None
        if any(slot is None for slot in slots):
            return None

        norm_segments = []
        rest = bound.sql
        for i, slot in enumerate(slots):
            rendered = Literal(self._probe_value(i, kinds[i], slot)).to_sql()
            pos = rest.find(rendered)
            if pos < 0:
                return None
            norm_segments.append(rest[:pos])
            rest = rest[pos + len(rendered):]
        norm_segments.append(rest)
        return _Template(bound=bound, slots=slots,
                         norm_segments=norm_segments)

    @staticmethod
    def _probe_value(i, kind, slot):
        if kind == "string":
            return _sentinel_str(i)
        return slot[2] * _sentinel_int(i)

    def _instantiate(self, template, lexemes, kinds):
        filters = list(template.bound.filters)
        semijoins = list(template.bound.semijoins)
        rendered = []
        for i, (lexeme, kind) in enumerate(zip(lexemes, kinds)):
            where, index, sign = template.slots[i]
            if kind == "string":
                value = _convert_string(lexeme)
            else:
                value = sign * _convert_number(lexeme)
            rendered.append(Literal(value).to_sql())
            if where == "filter":
                filters[index] = replace(filters[index], value=value)
            else:
                semijoins[index] = replace(
                    semijoins[index], having_value=int(value)
                )
        bound = template.bound
        return BoundQuery(
            relations=dict(bound.relations),
            join_preds=list(bound.join_preds),
            filters=filters,
            semijoins=semijoins,
            group_by=list(bound.group_by),
            aggregates=list(bound.aggregates),
            output=list(bound.output),
            sql=_join(template.norm_segments, rendered),
        )


def _join(segments, lexemes):
    parts = [segments[0]]
    for lexeme, segment in zip(lexemes, segments[1:]):
        parts.append(lexeme)
        parts.append(segment)
    return "".join(parts)
