"""Statistics: per-column and per-table."""

from .column_stats import ColumnStats
from .table_stats import StatisticsCatalog, TableStats

__all__ = ["ColumnStats", "StatisticsCatalog", "TableStats"]
