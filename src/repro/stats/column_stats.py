"""Per-column statistics.

Collected statistics carry most-common-value lists and an exact
*frequency profile* (cumulative fraction of rows whose value occurs at
most ``f`` times), which the estimator uses for the benchmark's
``HAVING COUNT(*) < p`` semijoin predicates.  Hypothetical (what-if)
estimation is restricted to the coarse fields — ``row_count``,
``n_distinct`` — reproducing the fidelity gap between estimates taken in a
real configuration and hypothetical estimates that Section 5 of the paper
measures (Figure 10).

Sharded collection builds the same statistics from per-shard
:class:`~repro.storage.sharding.ValueCountSketch` objects: every
derived field is a function of the column's ``(values, counts)`` pair,
the sketches merge to exactly that pair, so :meth:`ColumnStats.merge`
over per-shard stats equals :meth:`ColumnStats.collect` over the whole
column bit for bit.
"""

from dataclasses import dataclass, field

import numpy as np

from ..storage.sharding import ValueCountSketch

MCV_LIST_SIZE = 20


@dataclass
class ColumnStats:
    """Statistics of one column."""

    column: str
    row_count: int
    n_distinct: int
    mcv_values: list = field(default_factory=list)
    mcv_fractions: list = field(default_factory=list)
    freq_values: np.ndarray = None        # sorted unique value-frequencies
    freq_row_cumfrac: np.ndarray = None   # P[row's value freq <= freq_values[i]]
    vmin: object = None                   # smallest column value (None if empty)
    vmax: object = None                   # largest column value (None if empty)
    sketch: ValueCountSketch = field(default=None, repr=False)

    @classmethod
    def collect(cls, column_name, values, dictionary=None):
        """Compute full statistics over a storage array.

        With a cached :class:`~repro.storage.encoding.ColumnDictionary`
        for this exact array, the distinct values, counts, and
        frequency histogram are read off the dictionary instead of
        re-sorting the column — the results are identical.
        """
        values = np.asarray(values)
        row_count = len(values)
        if row_count == 0:
            return cls._empty(column_name)
        if dictionary is not None and dictionary.base is values:
            uniques, counts = dictionary.values, dictionary.counts
            histogram = dictionary.frequency_histogram()
        else:
            uniques, counts = np.unique(values, return_counts=True)
            histogram = None
        return cls._from_value_counts(
            column_name, uniques, counts, row_count, histogram=histogram
        )

    @classmethod
    def from_sketch(cls, column_name, sketch, keep_sketch=False):
        """Statistics from a (possibly shard-merged) value/count sketch.

        The sketch of a full column *is* its ``np.unique(...,
        return_counts=True)`` pair, so this equals :meth:`collect` over
        the raw values.  ``keep_sketch`` retains the sketch on the
        result so per-shard stats stay mergeable.
        """
        if sketch.row_count == 0:
            # An empty shard still needs its (empty) sketch retained,
            # or merging a partition with one empty shard would fail.
            empty = cls._empty(column_name)
            empty.sketch = sketch if keep_sketch else None
            return empty
        return cls._from_value_counts(
            column_name, sketch.values, sketch.counts, int(sketch.row_count),
            sketch=sketch if keep_sketch else None,
        )

    @classmethod
    def merge(cls, parts):
        """Merge per-shard statistics into the whole column's statistics.

        Every part must retain its sketch (``keep_sketch=True``).  The
        merged sketch equals the full column's value/count pair, so all
        derived fields — counts, min/max, MCVs, the frequency profile —
        are byte-identical to unsharded collection.
        """
        parts = list(parts)
        sketches = [part.sketch for part in parts]
        if any(sketch is None for sketch in sketches):
            raise ValueError(
                "cannot merge ColumnStats without retained sketches"
            )
        return cls.from_sketch(
            parts[0].column, ValueCountSketch.merge(sketches)
        )

    @classmethod
    def _empty(cls, column_name):
        return cls(column_name, 0, 0,
                   freq_values=np.array([], dtype=np.int64),
                   freq_row_cumfrac=np.array([], dtype=np.float64))

    @classmethod
    def _from_value_counts(cls, column_name, uniques, counts, row_count,
                           sketch=None, histogram=None):
        """The shared builder: every field from the value/count pair."""
        if histogram is not None:
            freq_values, freq_of_freq = histogram
        else:
            freq_values, freq_of_freq = np.unique(counts, return_counts=True)
        n_distinct = len(uniques)

        top = np.argsort(counts)[::-1][:MCV_LIST_SIZE]
        mcv_values = [uniques[i] for i in top]
        mcv_fractions = [counts[i] / row_count for i in top]

        rows_at_freq = freq_values * freq_of_freq
        freq_row_cumfrac = np.cumsum(rows_at_freq) / row_count

        return cls(
            column=column_name,
            row_count=row_count,
            n_distinct=n_distinct,
            mcv_values=mcv_values,
            mcv_fractions=mcv_fractions,
            freq_values=freq_values.astype(np.int64),
            freq_row_cumfrac=freq_row_cumfrac,
            vmin=uniques[0],
            vmax=uniques[-1],
            sketch=sketch,
        )

    # ------------------------------------------------------------------
    # Selectivity primitives

    def eq_selectivity(self, value, use_mcvs=True):
        """Fraction of rows equal to ``value``.

        With ``use_mcvs=False`` (hypothetical mode) the uniform 1/ndv
        assumption is applied regardless of the value.
        """
        if self.row_count == 0:
            return 0.0
        if use_mcvs and self.mcv_values:
            for mcv, frac in zip(self.mcv_values, self.mcv_fractions):
                if mcv == value:
                    return float(frac)
            remaining = max(0.0, 1.0 - sum(self.mcv_fractions))
            remaining_distinct = max(1, self.n_distinct - len(self.mcv_values))
            return remaining / remaining_distinct
        return 1.0 / max(1, self.n_distinct)

    def frequency_selectivity(self, op, threshold):
        """Fraction of rows whose value-frequency satisfies ``freq op threshold``.

        This is the row-level selectivity of the benchmark's
        ``col IN (SELECT col FROM t GROUP BY col HAVING COUNT(*) op k)``
        pattern when the subquery ranges over the same table and column.
        """
        if self.row_count == 0 or self.freq_values is None \
                or len(self.freq_values) == 0:
            return 0.0
        le = self._cumfrac_le(threshold)
        lt = self._cumfrac_le(threshold - 1)
        if op == "<":
            return lt
        if op == "<=":
            return le
        if op == "=":
            return max(0.0, le - lt)
        if op == ">":
            return max(0.0, 1.0 - le)
        if op == ">=":
            return max(0.0, 1.0 - lt)
        if op == "<>":
            return max(0.0, 1.0 - (le - lt))
        raise ValueError(f"unsupported frequency operator {op!r}")

    def distinct_count_with_frequency(self, op, threshold):
        """Number of distinct values whose frequency satisfies the predicate."""
        if self.freq_values is None or len(self.freq_values) == 0:
            return 0
        sel = self.frequency_selectivity(op, threshold)
        # Rough conversion from row fraction back to a distinct count: the
        # qualifying values have average frequency <= threshold.
        avg = max(1.0, self.row_count / max(1, self.n_distinct))
        bound = threshold if op in ("<", "<=", "=") else avg
        per_value = max(1.0, min(avg, bound))
        return int(round(sel * self.row_count / per_value))

    def _cumfrac_le(self, threshold):
        if threshold < int(self.freq_values[0]):
            return 0.0
        idx = np.searchsorted(self.freq_values, threshold, side="right") - 1
        return float(self.freq_row_cumfrac[idx])
