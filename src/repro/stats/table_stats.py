"""Table-level statistics: row/page counts plus per-column stats.

Sharded collection (:meth:`TableStats.collect_shard` /
:meth:`TableStats.merge`) computes statistics per shard and merges
them.  Row and page counts are conserved integer totals (page counts
are apportioned with :func:`repro.optimizer.cost_model.shard_counts`),
and per-column statistics merge through exact value/count sketches, so
merged sharded statistics are byte-identical to unsharded collection.
"""

from dataclasses import dataclass, field

from ..common.errors import CatalogError
from .column_stats import ColumnStats


@dataclass
class TableStats:
    """Statistics of one table, keyed by column name."""

    table: str
    row_count: int
    page_count: int
    row_width: int
    columns: dict = field(default_factory=dict)

    @classmethod
    def collect(cls, table, encodings=None):
        """Collect full statistics over a :class:`~repro.storage.table.Table`.

        ``encodings`` (an optional
        :class:`~repro.storage.encoding.DictionaryCache`) lets each
        column's statistics be read off the shared column dictionary.
        """
        columns = {
            name: ColumnStats.collect(
                name,
                table.column(name),
                encodings.dictionary(table, name)
                if encodings is not None else None,
            )
            for name in table.column_names()
        }
        return cls(
            table=table.name,
            row_count=table.row_count,
            page_count=table.page_count(),
            row_width=table.schema.row_width(),
            columns=columns,
        )

    @classmethod
    def collect_shard(cls, table, shard, page_count, sketches=None):
        """Statistics of one shard of a :class:`ShardedTable`.

        Args:
            table: the owning
                :class:`~repro.storage.sharding.ShardedTable`.
            shard: shard index.
            page_count: this shard's apportioned page count (from
                :func:`repro.optimizer.cost_model.shard_counts` so the
                shard totals conserve the table's page count).
            sketches: optional ``{column: ValueCountSketch}`` computed
                elsewhere (e.g. on the shard runtime's process pool);
                missing columns are sketched in-process.

        Per-column statistics retain their sketches so shard parts stay
        mergeable through :meth:`merge`.
        """
        columns = {}
        for name in table.column_names():
            sketch = None if sketches is None else sketches.get(name)
            if sketch is None:
                sketch = table.column_sketch(name, shard)
            columns[name] = ColumnStats.from_sketch(
                name, sketch, keep_sketch=True
            )
        lo, hi = table.shard_bounds(shard)
        return cls(
            table=table.name,
            row_count=hi - lo,
            page_count=int(page_count),
            row_width=table.schema.row_width(),
            columns=columns,
        )

    @classmethod
    def collect_sharded(cls, table, runtime=None):
        """Per-shard collection merged back into table-level statistics.

        Byte-identical to :meth:`collect`: sketches merge exactly and
        the shard row/page counts conserve the table totals.  With a
        :class:`~repro.storage.sharding.ShardRuntime`, per-shard
        sketches of memory-shareable columns are computed on the worker
        pool.
        """
        from ..optimizer.cost_model import shard_counts

        shard_pages = shard_counts(table.page_count(), table.shard_lengths())
        per_shard_sketches = [{} for _ in range(table.shards)]
        if runtime is not None:
            for name in table.column_names():
                for shard, sketch in enumerate(
                    runtime.column_sketches(table, name)
                ):
                    per_shard_sketches[shard][name] = sketch
        parts = [
            cls.collect_shard(table, shard, shard_pages[shard],
                              sketches=per_shard_sketches[shard])
            for shard in range(table.shards)
        ]
        return cls.merge(parts)

    @classmethod
    def merge(cls, parts):
        """Merge per-shard statistics into whole-table statistics."""
        parts = list(parts)
        if not parts:
            raise CatalogError("cannot merge zero statistics parts")
        names = {part.table for part in parts}
        if len(names) != 1:
            raise CatalogError(
                f"cannot merge statistics across tables {sorted(names)}"
            )
        columns = {
            name: ColumnStats.merge([part.columns[name] for part in parts])
            for name in parts[0].columns
        }
        return cls(
            table=parts[0].table,
            row_count=sum(part.row_count for part in parts),
            page_count=sum(part.page_count for part in parts),
            row_width=parts[0].row_width,
            columns=columns,
        )

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"no statistics for column {name!r} of {self.table!r}"
            ) from None


class StatisticsCatalog:
    """All collected table statistics of a database instance."""

    def __init__(self):
        self._tables = {}

    def put(self, table_stats):
        self._tables[table_stats.table] = table_stats

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no statistics for table {name!r}") from None

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return list(self._tables)
