"""Table-level statistics: row/page counts plus per-column stats."""

from dataclasses import dataclass, field

from ..common.errors import CatalogError
from .column_stats import ColumnStats


@dataclass
class TableStats:
    """Statistics of one table, keyed by column name."""

    table: str
    row_count: int
    page_count: int
    row_width: int
    columns: dict = field(default_factory=dict)

    @classmethod
    def collect(cls, table, encodings=None):
        """Collect full statistics over a :class:`~repro.storage.table.Table`.

        ``encodings`` (an optional
        :class:`~repro.storage.encoding.DictionaryCache`) lets each
        column's statistics be read off the shared column dictionary.
        """
        columns = {
            name: ColumnStats.collect(
                name,
                table.column(name),
                encodings.dictionary(table, name)
                if encodings is not None else None,
            )
            for name in table.column_names()
        }
        return cls(
            table=table.name,
            row_count=table.row_count,
            page_count=table.page_count(),
            row_width=table.schema.row_width(),
            columns=columns,
        )

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"no statistics for column {name!r} of {self.table!r}"
            ) from None


class StatisticsCatalog:
    """All collected table statistics of a database instance."""

    def __init__(self):
        self._tables = {}

    def put(self, table_stats):
        self._tables[table_stats.table] = table_stats

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no statistics for table {name!r}") from None

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return list(self._tables)
