"""Columnar table storage, SQL types, dictionaries, and sharding."""

from .encoding import (
    ColumnDictionary,
    ColumnHandle,
    DictionaryCache,
    dict_cache_enabled,
)
from .sharding import (
    ShardedTable,
    ShardRuntime,
    ValueCountSketch,
    hash_assignment,
    range_assignment,
    shard_count,
    shard_jobs,
    shard_scheme,
)
from .table import Table
from .types import SQLType, date, float_, integer, varchar

__all__ = [
    "ColumnDictionary",
    "ColumnHandle",
    "DictionaryCache",
    "SQLType",
    "ShardRuntime",
    "ShardedTable",
    "Table",
    "ValueCountSketch",
    "date",
    "dict_cache_enabled",
    "float_",
    "hash_assignment",
    "integer",
    "range_assignment",
    "shard_count",
    "shard_jobs",
    "shard_scheme",
    "varchar",
]
