"""Columnar table storage and SQL types."""

from .table import Table
from .types import SQLType, date, float_, integer, varchar

__all__ = ["Table", "SQLType", "date", "float_", "integer", "varchar"]
