"""Columnar table storage, SQL types, and column dictionaries."""

from .encoding import (
    ColumnDictionary,
    ColumnHandle,
    DictionaryCache,
    dict_cache_enabled,
)
from .table import Table
from .types import SQLType, date, float_, integer, varchar

__all__ = [
    "ColumnDictionary",
    "ColumnHandle",
    "DictionaryCache",
    "SQLType",
    "Table",
    "date",
    "dict_cache_enabled",
    "float_",
    "integer",
    "varchar",
]
