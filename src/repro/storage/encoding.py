"""Dictionary-encoded columns: shared value/frequency statistics.

Every stage of the benchmark pipeline needs per-column *value
information*: the constant-selection ladders re-derive value/frequency
pairs per template instantiation, the executor factorizes join and
group keys per query, statistics collection counts distinct values per
column, and index builds sort the same columns again.  Before this
module each consumer called ``np.unique`` independently — a full sort
of the column every time, which profiling shows dominating the fig4
pipeline.

A :class:`ColumnDictionary` computes a column's dictionary **once**:
the sorted unique values, their frequency counts, and (lazily) the
dense per-row int64 codes and the column's stable argsort.  A
:class:`DictionaryCache`, owned by a
:class:`~repro.engine.database.Database` and invalidated through its
``invalidate_caches`` path, shares one dictionary per ``(table,
column)`` across all four consumers:

* :mod:`repro.workload.constants` serves ``value_frequencies`` and the
  selectivity/frequency ladders from the cached dictionary;
* :mod:`repro.executor.batch` factorizes batches sort-free by mapping
  values through the cached sorted dictionary (``searchsorted``)
  instead of re-sorting every intermediate;
* :mod:`repro.stats.column_stats` reads distinct counts and frequency
  histograms straight off the dictionary;
* :mod:`repro.index.data` seeds its lexsorts with cached per-column
  codes and argsorts (shared between indexes keyed on the same
  columns).

The layer is a pure optimization: every consumer produces
**byte-identical** output with the cache on or off
(``REPRO_DICT_CACHE=0`` disables it; CI asserts fig4 byte-identity in
both modes).

Consistency: a dictionary is valid exactly as long as its base storage
array is.  :meth:`DictionaryCache.dictionary` verifies *array
identity* on every lookup — an entry whose base array is no longer the
table's current storage array (``append_rows`` concatenates into a new
array; a rebuilt view is a new ``Table``) is rebuilt, never served.
:meth:`DictionaryCache.invalidate`, called from
``Database.invalidate_caches`` on every state transition, sweeps out
entries that fail that identity check; entries for untouched base
tables survive, which is what lets one dictionary serve workload
generation, every query, and every index build across configuration
changes.
"""

import threading

import numpy as np

from .. import obs
from ..common import knobs

CACHE_ENV = "REPRO_DICT_CACHE"


def dict_cache_enabled(flag=None):
    """Whether the dictionary cache is on: argument, else ``REPRO_DICT_CACHE``.

    Any value other than ``"0"``, ``"false"``, ``"no"`` or ``"off"``
    (case-insensitive) enables it; the default — no environment
    variable at all — is enabled.
    """
    return knobs.flag(CACHE_ENV, flag)


class ColumnDictionary:
    """The dictionary of one column: sorted uniques, counts, codes.

    Attributes:
        base: the storage array the dictionary was built from (held so
            validity can be checked by identity).
        values: sorted unique values (``np.unique`` order).
        counts: occurrence count of each unique value.

    Per-row codes, the stable argsort, and the frequency-ordered views
    are derived lazily — most consumers need only a subset, and the
    lazy attributes are computed from immutable inputs, so a racing
    double-compute in a session worker pool is deterministic and
    harmless (the same last-writer-wins convention as
    :meth:`~repro.runtime.cache.BoundedCache.get_or_build`).
    """

    __slots__ = (
        "base", "values", "counts",
        "_codes", "_argsort", "_freq_order",
        "_freq_counts_f64", "_freq_histogram",
    )

    def __init__(self, values):
        self.base = np.asarray(values)
        self.values, self.counts = np.unique(self.base, return_counts=True)
        self._codes = None
        self._argsort = None
        self._freq_order = None
        self._freq_counts_f64 = None
        self._freq_histogram = None

    @classmethod
    def from_value_counts(cls, base, values, counts):
        """A dictionary from a precomputed (shard-merged) value/count pair.

        ``values``/``counts`` must equal ``np.unique(base,
        return_counts=True)`` — which a merged per-shard
        :class:`~repro.storage.sharding.ValueCountSketch` does exactly —
        so the result is byte-identical to ``ColumnDictionary(base)``
        without re-sorting the full column.
        """
        dictionary = cls.__new__(cls)
        dictionary.base = np.asarray(base)
        dictionary.values = values
        dictionary.counts = counts
        dictionary._codes = None
        dictionary._argsort = None
        dictionary._freq_order = None
        dictionary._freq_counts_f64 = None
        dictionary._freq_histogram = None
        return dictionary

    @property
    def n_distinct(self):
        """Number of distinct values in the column."""
        return len(self.values)

    @property
    def row_count(self):
        """Number of rows in the base column."""
        return len(self.base)

    @property
    def codes(self):
        """Dense int64 code of every base row (``values[codes] == base``).

        Identical to ``np.unique(base, return_inverse=True)``'s inverse:
        codes are ranks into the sorted dictionary, and every dictionary
        value occurs in the base column, so the codes are dense.
        """
        if self._codes is None:
            self._codes = np.searchsorted(
                self.values, self.base
            ).astype(np.int64)
        return self._codes

    def argsort(self):
        """Stable argsort of the base column (cached).

        Identical to ``np.lexsort((base,))``: codes are
        order-isomorphic to values, and stable sorts are unique, so
        sorting the int64 codes yields the same permutation as sorting
        the raw (possibly string) array — usually much faster.
        """
        if self._argsort is None:
            self._argsort = np.argsort(
                self.codes, kind="stable"
            ).astype(np.int64)
        return self._argsort

    def encode(self, values):
        """Dictionary codes of ``values`` (must be drawn from the base column).

        The base column's own array is answered from the cached dense
        codes; any other array — a filtered or gathered subset — is
        mapped through the sorted dictionary with one ``searchsorted``
        (``O(n log d)``; no re-sort of the batch).
        """
        if values is self.base:
            obs.counter_add("encoding.codes_reused")
            return self.codes
        return np.searchsorted(self.values, values)

    def by_frequency(self):
        """``(values, counts)`` sorted by ascending frequency (cached).

        Byte-identical to
        :func:`repro.workload.constants.value_frequencies` on the base
        column (stable sort by count).
        """
        if self._freq_order is None:
            self._freq_order = np.argsort(self.counts, kind="stable")
        order = self._freq_order
        return self.values[order], self.counts[order]

    def by_frequency_counts_f64(self):
        """Frequency-ordered counts pre-cast to float64 (cached).

        The selectivity ladder's distance computation re-cast the counts
        on every call; the cast is hoisted here.
        """
        if self._freq_counts_f64 is None:
            _, counts = self.by_frequency()
            self._freq_counts_f64 = counts.astype(np.float64)
        return self._freq_counts_f64

    def frequency_histogram(self):
        """``(freq_values, freq_of_freq)``: the frequency-of-frequency profile.

        ``np.unique(counts, return_counts=True)`` — shared by column
        statistics (the frequency profile behind ``HAVING COUNT(*)``
        selectivity) and the frequency ladder.
        """
        if self._freq_histogram is None:
            self._freq_histogram = np.unique(
                self.counts, return_counts=True
            )
        return self._freq_histogram


class ColumnHandle:
    """Lazy tie between a batch column and its table column's dictionary.

    Execution batches carry these under ``Batch.encodings``: the
    dictionary is only resolved (and built) when a consumer actually
    needs codes, so scanning a column never pays for a dictionary the
    query never factorizes.  Handles stay valid through every
    subsetting operation (mask/take/join/group) because a subset of a
    base column is still drawn from its dictionary's domain.
    """

    __slots__ = ("cache", "table", "column")

    def __init__(self, cache, table, column):
        self.cache = cache
        self.table = table
        self.column = column

    def dictionary(self):
        """Resolve (building or fetching) the column's dictionary."""
        return self.cache.dictionary(self.table, self.column)


class DictionaryCache:
    """Per-database cache of :class:`ColumnDictionary` objects.

    Entries are keyed by ``(table name, column name)`` and validated by
    base-array identity on every access, so a stale entry (the table
    was reloaded, rows were appended, a view was rebuilt under the same
    name) can never be served.  Owned by
    :class:`~repro.engine.database.Database`;
    :meth:`invalidate` is wired into ``Database.invalidate_caches`` so
    the INV001 lint contract (every mutator reaches the invalidator)
    covers this cache like every other derived result.
    """

    def __init__(self):
        # Deferred import: repro.catalog.schema imports repro.storage at
        # interpreter start, and repro.runtime's package init reaches
        # back through repro.engine — a module-level import here would
        # close that cycle before catalog.schema finishes loading.
        from ..runtime.cache import CacheStats

        self.stats = CacheStats("dict_cache")
        self._lock = threading.Lock()
        # (table name, column) -> (Table, ColumnDictionary)
        self._entries = {}
        # (table name, columns tuple) -> (Table, key arrays tuple, order)
        self._orders = {}
        # Optional ShardRuntime: dictionaries of sharded tables are
        # assembled from per-shard sketches instead of one full sort.
        self._sharding = None

    def attach_sharding(self, runtime):
        """Build dictionaries of sharded tables through ``runtime``.

        The runtime merges per-shard value/count sketches — computed on
        its worker pool when one is configured — into the same
        ``(values, counts)`` pair ``np.unique`` yields, so cached
        dictionaries stay byte-identical with sharding on or off.
        """
        self._sharding = runtime

    def dictionary(self, table, column):
        """The dictionary of ``table.column(column)`` (built lazily once).

        Args:
            table: the owning :class:`~repro.storage.table.Table`.
            column: column name.

        Returns:
            The cached :class:`ColumnDictionary`; rebuilt (and
            re-cached) whenever the stored entry's base array is not
            *the* current storage array of the column.
        """
        key = (table.name, column)
        values = table.column(column)
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None and entry[1].base is values:
            with self._lock:
                self.stats.hits += 1
            obs.counter_add("encoding.dict_hits")
            return entry[1]
        with self._lock:
            self.stats.misses += 1
        runtime = self._sharding
        if runtime is not None and getattr(table, "shards", 1) > 1:
            dictionary = runtime.build_dictionary(table, column)
        else:
            dictionary = ColumnDictionary(values)
        obs.counter_add("encoding.dict_builds")
        with self._lock:
            self._entries[key] = (table, dictionary)
        return dictionary

    def handle(self, table, column):
        """A lazy :class:`ColumnHandle` for a batch column."""
        return ColumnHandle(self, table, column)

    def lexsort(self, table, columns):
        """The permutation ``np.lexsort`` would produce for ``columns``.

        ``columns[0]`` is the most significant (leading) key, matching
        ``np.lexsort(tuple(reversed(arrays)))`` in the index build.
        Implemented as the textbook sequence of stable sorts from the
        least to the most significant key — over cached int64 *codes*
        instead of raw arrays — seeded with the least significant
        column's cached argsort.  Stable sorts are unique, so the
        result is byte-identical to ``np.lexsort`` on the raw arrays.

        Every suffix's order is memoized per ``(table, column tuple)``:
        indexes sharing key suffixes (and identical rebuilt indexes)
        share the sorts, and a single-column index build is a pure
        cache read of the column's argsort.
        """
        order = None
        start = len(columns)
        # Longest cached suffix first: a repeat call for the same key
        # tuple is a pure memo read.
        for depth in range(len(columns)):
            suffix = tuple(columns[depth:])
            cached = self._peek_order(table, suffix)
            if cached is not None:
                order, start = cached, depth
                break
        if order is None:
            # Innermost seed: the last column's cached stable argsort.
            order = self.dictionary(table, columns[-1]).argsort()
            start = len(columns) - 1
            self._store_order(table, (columns[-1],), order)
        for depth in range(start - 1, -1, -1):
            codes = self.dictionary(table, columns[depth]).codes
            order = order[np.argsort(codes[order], kind="stable")]
            self._store_order(table, tuple(columns[depth:]), order)
        return order

    def _peek_order(self, table, key_columns):
        """A memoized sort order, validated against the live key arrays.

        Identity of every key column's storage array is the validity
        criterion (``append_rows`` replaces arrays inside the same
        ``Table`` object, so table identity alone would be stale).
        """
        with self._lock:
            entry = self._orders.get((table.name, key_columns))
        if entry is None:
            return None
        _, arrays, order = entry
        for column, array in zip(key_columns, arrays):
            if table.column(column) is not array:
                return None
        obs.counter_add("encoding.codes_reused")
        return order

    def _store_order(self, table, key_columns, order):
        arrays = tuple(table.column(c) for c in key_columns)
        with self._lock:
            self._orders[(table.name, key_columns)] = (table, arrays, order)

    def invalidate(self):
        """Sweep out entries no longer backed by their table's live arrays.

        Called from ``Database.invalidate_caches`` on every state
        transition.  Unlike the plan/environment caches — whose entries
        depend on configuration state — a dictionary depends only on
        its base array, so entries that still pass the identity check
        (the table's data did not change) are kept; everything else
        (reloaded tables, appended rows, rebuilt views) is dropped.
        Access-time identity validation in :meth:`dictionary` makes
        this sweep a garbage collection, not a correctness requirement.
        """
        with self._lock:
            self._entries = {
                key: entry
                for key, entry in self._entries.items()
                if entry[0].column(key[1]) is entry[1].base
            }
            self._orders = {
                key: entry
                for key, entry in self._orders.items()
                if all(
                    entry[0].column(column) is array
                    for column, array in zip(key[1], entry[1])
                )
            }
            self.stats.invalidations += 1
        obs.counter_add("cache.dict_cache.invalidations")
