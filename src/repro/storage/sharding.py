"""Horizontal partitioning: sharded tables and the shard runtime.

A :class:`ShardedTable` splits a columnar table into hash or range
shards *without changing its canonical storage*: the full per-column
numpy arrays stay exactly what :class:`~repro.storage.table.Table`
holds, and a shard is a row-id partition over them (a contiguous slice
for range partitioning, an index subset for hash partitioning).  Every
existing consumer — executor batches, dictionary identity checks,
index builds — therefore sees unchanged arrays, which is what makes
the sharded and unsharded engines **byte-identical**: per-shard
elementwise results are scattered back into full-length outputs in
deterministic shard order, and that scatter reproduces the unsharded
computation element for element.

The mergeable unit for statistics is the :class:`ValueCountSketch`:
``np.unique(values, return_counts=True)`` of one shard.  Merging
per-shard sketches (union the sorted value sets, sum the counts)
yields exactly ``np.unique`` of the whole column, so shard-merged
``ColumnStats``/``ColumnDictionary`` objects equal their unsharded
counterparts bit for bit (see :mod:`repro.stats.column_stats` and
:meth:`ColumnDictionary.from_value_counts`).

The :class:`ShardRuntime` executes per-shard work — filter masks,
semijoin membership, sketch collection — either serially in-process or
over a **process pool** whose workers read the column data from
``multiprocessing.shared_memory`` segments (the engine's arrays are
registered once per array and attached by name in each worker; object
/ string columns cannot be memory-shared and fall back to the serial
path).  The pool width comes from ``REPRO_SHARD_JOBS`` (default 1 =
serial); either way the reduction is the same deterministic
shard-order scatter, so results do not depend on worker scheduling.

Environment knobs (all read at :class:`~repro.engine.database.Database`
construction time):

* ``REPRO_SHARDS``       — shard count; 0/unset = sharding off;
* ``REPRO_SHARD_SCHEME`` — ``hash`` (default) or ``range``;
* ``REPRO_SHARD_JOBS``   — shard worker processes (default 1 = serial).
"""

import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory

import numpy as np

from .. import obs
from ..common import knobs
from ..common.errors import CatalogError
from .table import Table

SHARDS_ENV = "REPRO_SHARDS"
SHARD_JOBS_ENV = "REPRO_SHARD_JOBS"
SHARD_SCHEME_ENV = "REPRO_SHARD_SCHEME"

SHARD_SCHEMES = ("hash", "range")

# Fibonacci-style multiplicative mixer: deterministic across processes
# (unlike Python's salted hash()) and spreads sequential integer keys.
_HASH_MIX = np.uint64(0x9E3779B97F4A7C15)
_HASH_SHIFT = np.uint64(29)


def shard_count(value=None):
    """Shard count: explicit argument, else ``REPRO_SHARDS``, else 0 (off).

    Args:
        value: desired count, or ``None`` to consult the environment.

    Returns:
        A non-negative integer; 0 means sharding is disabled.

    Raises:
        ValueError: when the argument or env value is not an integer.
    """
    if value is None:
        value = knobs.text(SHARDS_ENV, "0")
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"invalid shard count {value!r}") from None
    return max(0, value)


def shard_jobs(value=None):
    """Shard worker processes: argument, else ``REPRO_SHARD_JOBS``, else 1.

    1 (the default) keeps all per-shard work serial and in-process; the
    process pool only exists at 2 and above.
    """
    if value is None:
        value = knobs.text(SHARD_JOBS_ENV, "1")
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"invalid shard job count {value!r}") from None
    return max(1, value)


def shard_scheme(value=None):
    """Partitioning scheme: argument, else ``REPRO_SHARD_SCHEME``, else hash."""
    if value is None:
        value = knobs.text(SHARD_SCHEME_ENV, "hash")
    value = str(value).strip().lower()
    if value not in SHARD_SCHEMES:
        raise ValueError(
            f"invalid shard scheme {value!r}; expected one of {SHARD_SCHEMES}"
        )
    return value


def hash_assignment(values, shards):
    """Shard id of every row under hash partitioning of ``values``.

    Integer-like key columns are mixed directly; any other dtype
    (strings, floats) is first mapped to dense ranks via ``np.unique``
    so the assignment depends only on the values — deterministic across
    processes and runs, unlike the interpreter's salted ``hash()``.
    """
    values = np.asarray(values)
    if shards <= 1:
        return np.zeros(len(values), dtype=np.int64)
    if values.dtype.kind in "iu":
        keys = values.astype(np.uint64, copy=False)
    else:
        _, inverse = np.unique(values, return_inverse=True)
        keys = inverse.astype(np.uint64)
    mixed = keys * _HASH_MIX
    mixed = mixed ^ (mixed >> _HASH_SHIFT)
    return (mixed % np.uint64(shards)).astype(np.int64)


def range_assignment(row_count, shards):
    """Shard id of every row under contiguous range partitioning.

    Shard sizes follow the ``np.array_split`` convention: the first
    ``row_count % shards`` shards hold one extra row.
    """
    if shards <= 1:
        return np.zeros(row_count, dtype=np.int64)
    base, extra = divmod(row_count, shards)
    sizes = [base + 1 if i < extra else base for i in range(shards)]
    return np.repeat(np.arange(shards, dtype=np.int64), sizes)


def compare_values(values, op, literal):
    """Elementwise comparison mask (same semantics as the executor's)."""
    if op == "=":
        return values == literal
    if op == "<>":
        return values != literal
    if op == "<":
        return values < literal
    if op == "<=":
        return values <= literal
    if op == ">":
        return values > literal
    if op == ">=":
        return values >= literal
    raise ValueError(f"unsupported comparison operator {op!r}")


@dataclass
class ValueCountSketch:
    """Mergeable distinct-count + histogram sketch of one shard's column.

    ``values``/``counts`` are exactly ``np.unique(shard_values,
    return_counts=True)``.  The sketch is *exact*, which is what lets
    shard-merged statistics equal unsharded statistics bit for bit; it
    is "a sketch" in the mergeability sense — per-shard sketches are
    small relative to the shard and merge associatively.
    """

    values: np.ndarray
    counts: np.ndarray
    row_count: int

    @classmethod
    def from_values(cls, values):
        """The sketch of one shard's raw values."""
        values = np.asarray(values)
        uniques, counts = np.unique(values, return_counts=True)
        return cls(uniques, counts.astype(np.int64), len(values))

    @staticmethod
    def merge(sketches):
        """Merge per-shard sketches into the whole column's sketch.

        Equal to ``from_values`` over the concatenated shards: the
        merged value set is the sorted union and every count is the
        integer sum of the per-shard counts.
        """
        sketches = list(sketches)
        if not sketches:
            return ValueCountSketch(
                np.array([]), np.array([], dtype=np.int64), 0
            )
        if len(sketches) == 1:
            one = sketches[0]
            return ValueCountSketch(
                one.values, one.counts.astype(np.int64), int(one.row_count)
            )
        all_values = np.concatenate([s.values for s in sketches])
        all_counts = np.concatenate([s.counts for s in sketches])
        values, inverse = np.unique(all_values, return_inverse=True)
        counts = np.round(
            np.bincount(inverse, weights=all_counts, minlength=len(values))
        ).astype(np.int64)
        return ValueCountSketch(
            values, counts, int(sum(int(s.row_count) for s in sketches))
        )


class ShardedTable(Table):
    """A table horizontally partitioned into hash or range shards.

    Canonical storage (full per-column arrays, byte sizes, ``take``)
    is inherited unchanged from :class:`Table`; the shards are row-id
    partitions over it.  ``append_rows`` re-partitions from scratch —
    the assignment is a pure function of the (new) data, so resharding
    is deterministic — and the inherited behaviour of concatenating
    into *new* arrays keeps every identity-validated cache (dictionary
    entries, shared-memory segments) safely stale.
    """

    def __init__(self, schema, columns=None, shards=1, scheme="hash",
                 partition_column=None):
        super().__init__(schema, columns)
        shards = int(shards)
        if shards < 1:
            raise CatalogError(
                f"table {schema.name!r} needs at least one shard"
            )
        if scheme not in SHARD_SCHEMES:
            raise CatalogError(
                f"unknown shard scheme {scheme!r} for table {schema.name!r}"
            )
        if partition_column is None:
            if schema.primary_key:
                partition_column = schema.primary_key[0]
            else:
                partition_column = schema.columns[0].name
        self.shards = shards
        self.scheme = scheme
        self.partition_column = partition_column
        self._reshard()

    def _reshard(self):
        """(Re)compute the row→shard assignment over the current arrays."""
        if self.scheme == "range":
            assignment = range_assignment(self.row_count, self.shards)
            # Contiguous shards: the identity order is implicit (None),
            # so shard columns are zero-copy slices.
            self._order = None
        else:
            assignment = hash_assignment(
                self.column(self.partition_column), self.shards
            )
            self._order = np.argsort(assignment, kind="stable").astype(
                np.int64
            )
        counts = np.bincount(assignment, minlength=self.shards)
        self._bounds = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        self._assignment = assignment

    def append_rows(self, columns):
        appended = super().append_rows(columns)
        self._reshard()
        return appended

    # Shards derive deterministically from the data; recompute on
    # unpickle instead of persisting the permutation arrays.
    def __getstate__(self):
        state = self.__dict__.copy()
        for transient in ("_assignment", "_order", "_bounds"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._reshard()

    @property
    def shard_order(self):
        """Row permutation grouping rows by shard (``None`` for range)."""
        return self._order

    def shard_bounds(self, shard):
        """``(lo, hi)`` bounds of a shard within the shard order."""
        return int(self._bounds[shard]), int(self._bounds[shard + 1])

    def shard_lengths(self):
        """Row count of every shard, in shard order."""
        return [int(n) for n in np.diff(self._bounds)]

    def shard_row_ids(self, shard):
        """Row ids of one shard (ascending for range shards)."""
        lo, hi = self.shard_bounds(shard)
        if self._order is None:
            return np.arange(lo, hi, dtype=np.int64)
        return self._order[lo:hi]

    def shard_column(self, shard, name):
        """One shard's slice of a column (zero-copy for range shards)."""
        column = self.column(name)
        lo, hi = self.shard_bounds(shard)
        if self._order is None:
            return column[lo:hi]
        return column[self._order[lo:hi]]

    def column_sketch(self, name, shard):
        """The :class:`ValueCountSketch` of one shard of a column."""
        return ValueCountSketch.from_values(self.shard_column(shard, name))


# ----------------------------------------------------------------------
# Process-pool workers.  Top-level functions (picklable by reference);
# column data arrives through named shared-memory segments, attached
# once per worker process and cached in a process-local dict.

_ATTACHED = {}   # segment name -> (SharedMemory, ndarray); per process


def _attach(spec):
    """The ndarray behind a ``(name, dtype, shape)`` segment spec."""
    name, dtype, shape = spec
    cached = _ATTACHED.get(name)
    if cached is None:
        segment = shared_memory.SharedMemory(name=name)
        # Workers spawned by the pool share the parent's resource
        # tracker, so attaching re-registers the same name into the
        # same tracker set (CPython bpo-39959) and the parent's
        # explicit unlink is the single cleanup point — no worker-side
        # unregister, or the shared entry would be removed twice.
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        cached = (segment, array)
        _ATTACHED[name] = cached
    return cached[1]


def _shard_values(spec, order_spec, lo, hi):
    """One shard's values: a slice (range) or a gather via the order."""
    array = _attach(spec)
    if order_spec is None:
        return array[lo:hi]
    order = _attach(order_spec)
    return array[order[lo:hi]]


def _mask_task(col_specs, ops, order_spec, lo, hi):
    """Combined filter mask of one shard (AND over all predicates)."""
    keep = None
    for spec, (op, literal) in zip(col_specs, ops):
        part = compare_values(_shard_values(spec, order_spec, lo, hi),
                              op, literal)
        keep = part if keep is None else keep & part
    return keep


def _isin_task(spec, allowed, order_spec, lo, hi):
    """Semijoin membership mask of one shard."""
    return np.isin(_shard_values(spec, order_spec, lo, hi), allowed)


def _sketch_task(spec, order_spec, lo, hi):
    """The value/count sketch of one shard."""
    values = _shard_values(spec, order_spec, lo, hi)
    uniques, counts = np.unique(values, return_counts=True)
    return uniques, counts.astype(np.int64), int(hi - lo)


def _release_segments(segments):
    """Close and unlink every registered segment (finalizer-safe)."""
    for _array, segment, _spec in list(segments.values()):
        try:
            segment.close()
            segment.unlink()
        except (OSError, FileNotFoundError):
            pass
    segments.clear()


class ShardRuntime:
    """Shard-parallel primitives with a deterministic shard-order reduction.

    One runtime per :class:`~repro.engine.database.Database` (created
    when ``REPRO_SHARDS`` is nonzero).  All three entry points —
    :meth:`filter_mask`, :meth:`isin_mask`, :meth:`column_sketches` —
    compute per-shard results (serially, or on the process pool over
    shared-memory arrays) and reduce them in shard order, so the output
    is byte-identical to the unsharded computation regardless of
    worker scheduling.

    Shared-memory segments are registered per storage array and swept
    by :meth:`invalidate` (wired into ``Database.invalidate_caches``);
    a :mod:`weakref` finalizer releases anything still registered when
    the runtime (or the interpreter) goes away.
    """

    def __init__(self, jobs=None):
        self.jobs = shard_jobs(jobs)
        self._lock = threading.Lock()
        # id(array) -> (array, SharedMemory, spec); the strong array
        # reference keeps the id stable for the entry's lifetime.
        self._segments = {}
        self._pool = None
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments
        )

    # ------------------------------------------------------------------
    # Pool and segment plumbing

    def _ensure_pool(self):
        if self.jobs <= 1:
            return None
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=get_context("spawn"),
                )
            return self._pool

    def _share(self, array):
        """Register ``array`` in shared memory; its spec, or ``None``.

        Object-dtype (string) columns cannot live in shared memory and
        return ``None``, routing the caller to the serial path.
        """
        if array.dtype.hasobject:
            return None
        key = id(array)
        with self._lock:
            entry = self._segments.get(key)
            if entry is not None and entry[0] is array:
                return entry[2]
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, int(array.nbytes))
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[:] = array
        spec = (segment.name, array.dtype.str, array.shape)
        with self._lock:
            self._segments[key] = (array, segment, spec)
        obs.counter_add("sharding.bytes_shared", int(array.nbytes))
        return spec

    def _order_spec(self, table):
        """Shared spec of the shard order, or ``(None, ok)`` for range."""
        order = table.shard_order
        if order is None:
            return None, True
        spec = self._share(order)
        return spec, spec is not None

    def _submit(self, pool, task, per_shard_args, table):
        """Fan one task over all shards; results in shard order."""
        futures = [
            pool.submit(task, *args, lo, hi)
            for args, (lo, hi) in zip(
                per_shard_args,
                (table.shard_bounds(i) for i in range(table.shards)),
            )
        ]
        obs.counter_add("sharding.pool_tasks", len(futures))
        return [future.result() for future in futures]

    def _scatter(self, table, shard_results, out):
        """Deterministic shard-order reduction into a full-length array."""
        for shard, result in enumerate(shard_results):
            lo, hi = table.shard_bounds(shard)
            if table.shard_order is None:
                out[lo:hi] = result
            else:
                out[table.shard_order[lo:hi]] = result
        return out

    # ------------------------------------------------------------------
    # Shard-parallel primitives

    def filter_mask(self, table, specs):
        """Full-length AND mask of ``[(column, op, literal), ...]``.

        Byte-identical to evaluating every predicate over the full
        column arrays: each shard's mask is computed elementwise over
        its rows and scattered back through the shard permutation.
        """
        obs.counter_add("sharding.shards_scanned", table.shards)
        out = np.empty(table.row_count, dtype=bool)
        pool = self._ensure_pool()
        if pool is not None:
            col_specs = [self._share(table.column(name))
                         for name, _, _ in specs]
            order_spec, order_ok = self._order_spec(table)
            if order_ok and all(spec is not None for spec in col_specs):
                ops = [(op, literal) for _, op, literal in specs]
                results = self._submit(
                    pool, _mask_task,
                    [(col_specs, ops, order_spec)] * table.shards,
                    table,
                )
                return self._scatter(table, results, out)
        results = []
        for shard in range(table.shards):
            keep = None
            for name, op, literal in specs:
                part = compare_values(
                    table.shard_column(shard, name), op, literal
                )
                keep = part if keep is None else keep & part
            results.append(keep)
        return self._scatter(table, results, out)

    def isin_mask(self, table, column, allowed):
        """Full-length ``np.isin(column, allowed)`` mask, shard by shard."""
        obs.counter_add("sharding.shards_scanned", table.shards)
        out = np.empty(table.row_count, dtype=bool)
        pool = self._ensure_pool()
        if pool is not None:
            spec = self._share(table.column(column))
            order_spec, order_ok = self._order_spec(table)
            if spec is not None and order_ok:
                results = self._submit(
                    pool, _isin_task,
                    [(spec, allowed, order_spec)] * table.shards,
                    table,
                )
                return self._scatter(table, results, out)
        results = [
            np.isin(table.shard_column(shard, column), allowed)
            for shard in range(table.shards)
        ]
        return self._scatter(table, results, out)

    def column_sketches(self, table, column):
        """Per-shard :class:`ValueCountSketch` list, in shard order."""
        obs.counter_add("sharding.shards_scanned", table.shards)
        pool = self._ensure_pool()
        if pool is not None:
            spec = self._share(table.column(column))
            order_spec, order_ok = self._order_spec(table)
            if spec is not None and order_ok:
                results = self._submit(
                    pool, _sketch_task,
                    [(spec, order_spec)] * table.shards,
                    table,
                )
                return [
                    ValueCountSketch(values, counts, rows)
                    for values, counts, rows in results
                ]
        return [
            table.column_sketch(column, shard)
            for shard in range(table.shards)
        ]

    def build_dictionary(self, table, column):
        """A :class:`ColumnDictionary` assembled from per-shard sketches.

        Byte-identical to ``ColumnDictionary(table.column(column))``:
        the merged sketch *is* ``np.unique(column,
        return_counts=True)``.  Used by a shard-aware
        :class:`~repro.storage.encoding.DictionaryCache`.
        """
        from .encoding import ColumnDictionary

        sketch = ValueCountSketch.merge(self.column_sketches(table, column))
        return ColumnDictionary.from_value_counts(
            table.column(column), sketch.values, sketch.counts
        )

    # ------------------------------------------------------------------
    # Lifecycle

    def invalidate(self):
        """Release every shared-memory segment.

        Wired into ``Database.invalidate_caches``: after any state
        transition the registered arrays may no longer be a table's
        live storage, and segments are pure caches — dropped here,
        re-registered on demand.
        """
        with self._lock:
            _release_segments(self._segments)
        obs.counter_add("sharding.segment_invalidations")

    def close(self):
        """Release segments and shut the worker pool down."""
        self.invalidate()
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
