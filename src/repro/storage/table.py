"""Columnar table storage.

Each table holds one numpy array per column.  The executor operates on
these arrays (and on integer row-id selections over them), which keeps the
actual execution of 100-query workloads fast while the *virtual clock*
accounts for what the same plan would cost on the paper's hardware.
"""

import numpy as np

from ..common.errors import CatalogError
from ..common.hardware import pages_for_bytes


class Table:
    """Data of one table: schema + columnar arrays."""

    # Class-level default so instances unpickled from artifact stores
    # written before the cache existed still resolve the attribute.
    _byte_size = None

    def __init__(self, schema, columns=None):
        self.schema = schema
        self._byte_size = None
        if columns is None:
            columns = {
                col.name: col.sql_type.coerce([]) for col in schema.columns
            }
        missing = [c.name for c in schema.columns if c.name not in columns]
        if missing:
            raise CatalogError(
                f"table {schema.name!r} loaded without columns {missing}"
            )
        lengths = {len(columns[c.name]) for c in schema.columns}
        if len(lengths) > 1:
            raise CatalogError(
                f"table {schema.name!r} columns have differing lengths {lengths}"
            )
        self._columns = {
            col.name: col.sql_type.coerce(columns[col.name])
            for col in schema.columns
        }

    @property
    def name(self):
        return self.schema.name

    @property
    def row_count(self):
        first = next(iter(self._columns.values()))
        return len(first)

    def column(self, name):
        """The full storage array for a column."""
        try:
            return self._columns[name]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column_names(self):
        return list(self._columns)

    def byte_size(self):
        """Heap size in bytes under the declared row width.

        Cached after the first call — every page-count lookup in the
        cost model funnels through here, so the recommender's what-if
        loops hit this constantly.  Invalidated by :meth:`append_rows`
        (the only mutation that changes the row count).
        """
        if self._byte_size is None:
            self._byte_size = self.row_count * self.schema.row_width()
        return self._byte_size

    def page_count(self):
        """Heap size in pages (the unit the cost model scans in)."""
        return pages_for_bytes(self.byte_size())

    def append_rows(self, columns):
        """Append rows given as a ``{column_name: sequence}`` mapping.

        Used by the Section 4.4 insertion experiment.  Returns the number
        of rows appended.
        """
        lengths = set()
        coerced = {}
        for col in self.schema.columns:
            if col.name not in columns:
                raise CatalogError(
                    f"append to {self.name!r} missing column {col.name!r}"
                )
            arr = col.sql_type.coerce(columns[col.name])
            coerced[col.name] = arr
            lengths.add(len(arr))
        if len(lengths) != 1:
            raise CatalogError("appended columns have differing lengths")
        for name, arr in coerced.items():
            self._columns[name] = np.concatenate([self._columns[name], arr])
        self._byte_size = None
        return lengths.pop()

    def take(self, row_ids, column_names):
        """Gather the given columns at the given row ids."""
        return {name: self._columns[name][row_ids] for name in column_names}
