"""SQL column types and their storage widths.

Widths feed the page/size accounting that drives both the cost model and
the space-budget bookkeeping of the recommender (the paper's budget is
``size(1C) - size(P)``).
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SQLType:
    """A column type with a storage width in bytes.

    ``kind`` is one of ``'int'``, ``'float'``, ``'str'``, ``'date'``.
    For strings ``width`` is the declared average width used in size
    accounting (the engine stores Python strings; the cost model only
    needs a representative byte width).
    """

    kind: str
    width: int

    def numpy_dtype(self):
        """The dtype used by the columnar storage layer."""
        if self.kind == "int" or self.kind == "date":
            return np.dtype(np.int64)
        if self.kind == "float":
            return np.dtype(np.float64)
        if self.kind == "str":
            return np.dtype(object)
        raise ValueError(f"unknown type kind {self.kind!r}")

    def coerce(self, values):
        """Coerce a sequence of Python values into a storage array."""
        return np.asarray(values, dtype=self.numpy_dtype())


def integer():
    """8-byte integer column."""
    return SQLType("int", 8)


def float_():
    """8-byte floating point column."""
    return SQLType("float", 8)


def varchar(avg_width):
    """Variable-width string column with a declared average width."""
    if avg_width <= 0:
        raise ValueError("avg_width must be positive")
    return SQLType("str", int(avg_width))


def date():
    """Date column, stored as integer day numbers."""
    return SQLType("date", 8)
