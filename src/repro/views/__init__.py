"""Materialized views."""

from .matview import COUNT_COLUMN, MatViewDefinition, ViewColumn, build_view

__all__ = ["COUNT_COLUMN", "MatViewDefinition", "ViewColumn", "build_view"]
