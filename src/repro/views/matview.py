"""Materialized view definitions and built view data.

Two shapes cover everything the paper's recommenders produced (Table 3):

* **Single-table aggregate views** ``SELECT c1..ck, COUNT(*) FROM t GROUP
  BY c1..ck`` — the "2 views on Lineitem" of the SkTH3J recommendation;
  they also answer the families' ``HAVING COUNT(*) op k`` subqueries.
* **Join aggregate views** ``SELECT cols..., COUNT(*) FROM r, s WHERE
  r.a = s.b GROUP BY cols...`` — the "9 views on Lineitem ⋈ Partsupp" of
  the UnTH3J recommendation.

A built view is stored as an ordinary :class:`~repro.storage.table.Table`
whose last column, ``cnt``, carries the group count; the executor treats
``cnt`` as a row *weight* so that ``COUNT(*)`` aggregates over rewritten
plans stay exact.
"""

from dataclasses import dataclass

import numpy as np

from ..catalog.schema import ColumnDef, TableSchema
from ..storage.table import Table
from ..storage.types import integer

COUNT_COLUMN = "cnt"


@dataclass(frozen=True)
class ViewColumn:
    """A view output column sourced from ``table.column``."""

    table: str
    column: str

    @property
    def name(self):
        return f"{self.table}__{self.column}"


@dataclass(frozen=True)
class MatViewDefinition:
    """A single-table or two-table-join aggregate view."""

    tables: tuple                 # 1 or 2 base table names
    join_pred: tuple = None       # ((t1, c1), (t2, c2)) when len(tables) == 2
    group_columns: tuple = ()     # tuple of ViewColumn

    def __post_init__(self):
        if len(self.tables) not in (1, 2):
            raise ValueError("views cover one or two base tables")
        if len(self.tables) == 2 and self.join_pred is None:
            raise ValueError("two-table views need a join predicate")
        if len(self.tables) == 1 and self.join_pred is not None:
            raise ValueError("single-table views cannot have a join predicate")
        if not self.group_columns:
            raise ValueError("views need at least one group column")
        for vcol in self.group_columns:
            if vcol.table not in self.tables:
                raise ValueError(
                    f"group column {vcol} not from the view's tables"
                )

    @property
    def name(self):
        tables = "_".join(self.tables)
        cols = "_".join(c.column for c in self.group_columns)
        return f"mv_{tables}__{cols}"

    @property
    def is_join_view(self):
        return len(self.tables) == 2

    def column_names(self):
        return [c.name for c in self.group_columns] + [COUNT_COLUMN]

    def view_schema(self, catalog):
        """Schema of the materialized result table."""
        columns = []
        for vcol in self.group_columns:
            base = catalog.table(vcol.table).column(vcol.column)
            columns.append(
                ColumnDef(vcol.name, base.sql_type, base.domain, base.indexable)
            )
        columns.append(ColumnDef(COUNT_COLUMN, integer(), "", True))
        return TableSchema(name=self.name, columns=columns)

    def column_for(self, table, column):
        """The view column sourcing ``table.column``, if any."""
        for vcol in self.group_columns:
            if vcol.table == table and vcol.column == column:
                return vcol
        return None


def build_view(definition, tables, catalog):
    """Materialize a view over the given ``{name: Table}`` mapping.

    Returns the result :class:`Table` plus the input row count that was
    aggregated (used for build cost accounting).
    """
    if definition.is_join_view:
        (t1, c1), (t2, c2) = definition.join_pred
        left, right = tables[t1], tables[t2]
        lkeys = left.column(c1)
        rkeys = right.column(c2)
        order = np.argsort(rkeys, kind="stable")
        sorted_keys = rkeys[order]
        lows = np.searchsorted(sorted_keys, lkeys, side="left")
        highs = np.searchsorted(sorted_keys, lkeys, side="right")
        counts = highs - lows
        total = int(counts.sum())
        left_ids = np.repeat(np.arange(len(lkeys)), counts)
        starts = np.repeat(lows, counts)
        offsets = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        right_ids = order[starts + offsets]
        source = {}
        for vcol in definition.group_columns:
            if vcol.table == t1:
                source[vcol.name] = left.column(vcol.column)[left_ids]
            else:
                source[vcol.name] = right.column(vcol.column)[right_ids]
        input_rows = left.row_count + right.row_count
        group_len = total
    else:
        base = tables[definition.tables[0]]
        source = {
            vcol.name: base.column(vcol.column)
            for vcol in definition.group_columns
        }
        input_rows = base.row_count
        group_len = base.row_count

    names = [c.name for c in definition.group_columns]
    if group_len == 0:
        data = {name: source[name][:0] for name in names}
        data[COUNT_COLUMN] = np.array([], dtype=np.int64)
        return Table(definition.view_schema(catalog), data), input_rows

    if len(names) == 1:
        keys, counts = np.unique(source[names[0]], return_counts=True)
        data = {names[0]: keys}
    else:
        arrays = [source[name] for name in names]
        order = np.lexsort(tuple(reversed(arrays)))
        sorted_cols = [arr[order] for arr in arrays]
        change = np.zeros(group_len, dtype=bool)
        change[0] = True
        for col in sorted_cols:
            change[1:] |= col[1:] != col[:-1]
        group_starts = np.flatnonzero(change)
        counts = np.diff(np.append(group_starts, group_len))
        data = {
            name: col[group_starts]
            for name, col in zip(names, sorted_cols)
        }
    data[COUNT_COLUMN] = np.asarray(counts, dtype=np.int64)
    view_table = Table(definition.view_schema(catalog), data)
    return view_table, input_rows
