"""Query families, constant selection, and workload sampling."""

from .nref_families import generate_nref2j, generate_nref3j
from .sampling import sample_benchmark_workload, stratified_sample
from .tpch_families import generate_skth3j, generate_skth3js, generate_unth3j
from .updates import (
    break_even_inserts,
    nref_neighboring_batch,
    tpch_lineitem_batch,
)
from .workload import QueryInstance, Workload, make_instance

__all__ = [
    "QueryInstance", "Workload", "generate_nref2j", "generate_nref3j",
    "generate_skth3j", "generate_skth3js", "generate_unth3j",
    "make_instance", "sample_benchmark_workload", "stratified_sample",
    "break_even_inserts", "nref_neighboring_batch", "tpch_lineitem_batch",
]
