"""Constant selection for query templates.

Implements the paper's k1/k2/k3 rule (Section 3.2.2, family NREF3J):
for a column, pick a constant ``k1`` with the highest selectivity (lowest
frequency) plus constants ``k2`` and ``k3`` whose frequencies are one and
two orders of magnitude greater, so each template instantiation spans
widely different intermediate-result sizes.
"""

import numpy as np

from ..storage.encoding import ColumnDictionary


def value_frequencies(source):
    """Sorted-by-frequency ``(value, count)`` pairs of a column.

    ``source`` is either a raw storage array or a cached
    :class:`~repro.storage.encoding.ColumnDictionary` (as returned by
    ``Database.column_dictionary``); the dictionary serves the
    identical pairs without re-sorting the column per call.
    """
    if isinstance(source, ColumnDictionary):
        return source.by_frequency()
    uniques, counts = np.unique(np.asarray(source), return_counts=True)
    order = np.argsort(counts, kind="stable")
    return uniques[order], counts[order]


def selectivity_ladder(source, steps=(1, 10, 100), rank=0):
    """Constants with frequencies ≈ ``f1 * step`` for each step.

    ``rank`` offsets the starting (most selective) value so different
    template instantiations draw different constants.  Returns a list of
    ``(value, frequency)`` pairs, shortest when the column's frequency
    spread cannot support the requested ladder.
    """
    uniques, counts = value_frequencies(source)
    if len(uniques) == 0:
        return []
    if isinstance(source, ColumnDictionary):
        counts_f64 = source.by_frequency_counts_f64()
    else:
        counts_f64 = counts.astype(np.float64)
    base_idx = min(rank, len(uniques) - 1)
    f1 = counts[base_idx]
    ladder = [(uniques[base_idx], int(f1))]
    for step in steps[1:]:
        target = f1 * step
        if counts[-1] < target / 3:
            break
        idx = int(np.argmin(np.abs(counts_f64 - target)))
        if idx == base_idx:
            continue
        ladder.append((uniques[idx], int(counts[idx])))
    return ladder


def frequency_ladder(source, steps=(1, 10, 100)):
    """Frequency constants ``p`` for ``HAVING COUNT(*) = p`` templates.

    Picks frequencies that actually occur in the column such that the
    total number of rows selected by "values occurring exactly p times"
    spans the requested orders of magnitude.
    """
    _, counts = value_frequencies(source)
    if len(counts) == 0:
        return []
    if isinstance(source, ColumnDictionary):
        freq_vals, freq_of_freq = source.frequency_histogram()
    else:
        freq_vals, freq_of_freq = np.unique(counts, return_counts=True)
    rows_selected = freq_vals * freq_of_freq
    order = np.argsort(rows_selected, kind="stable")
    base = rows_selected[order[0]]
    ladder = [int(freq_vals[order[0]])]
    for step in steps[1:]:
        target = base * step
        idx = int(np.argmin(np.abs(rows_selected - target)))
        p = int(freq_vals[idx])
        if p not in ladder:
            ladder.append(p)
    return ladder


def sql_literal(value):
    """Render a Python value as a SQL literal."""
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
