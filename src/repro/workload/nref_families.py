"""The NREF query families (Section 3.2.2).

* **NREF2J** — co-occurrence counts of same-domain values across two
  tables, with both join inputs restricted to values occurring fewer than
  4 times;
* **NREF3J** — the self-join generalization of the paper's Example 1
  (Simian Virus 40), with a k1/k2/k3 selection constant on the second
  table.

The enumeration applies the paper's Section 4.1.1 practical restrictions:
non-indexable columns are ignored, at most 4 columns per table are used,
and larger tables contribute fewer selection criteria and fewer group-by
columns.
"""

from itertools import combinations

from .constants import selectivity_ladder, sql_literal
from .workload import Workload, make_instance

# At most this many template columns per table (paper: "we did not use
# more than 4 columns per table").
MAX_COLUMNS_PER_TABLE = 4

# Tables above this row count get fewer group-by subsets and fewer
# selection constants (paper: "fewer selection criteria ... on the larger
# tables").
LARGE_TABLE_ROWS = 20_000


def template_columns(database, table):
    """The (at most 4) indexable columns a family may use for a table."""
    schema = database.catalog.table(table)
    preferred = [
        col.name for col in schema.indexable_columns() if col.domain
    ]
    extra = [
        col.name for col in schema.indexable_columns() if not col.domain
    ]
    return (preferred + extra)[:MAX_COLUMNS_PER_TABLE]


def _is_large(database, table):
    return database.table(table).row_count > LARGE_TABLE_ROWS


def _groupby_subsets(columns, max_size, limit):
    """Group-by column subsets: the empty set plus small combinations."""
    subsets = [()]
    for size in range(1, max_size + 1):
        for combo in combinations(columns, size):
            subsets.append(combo)
            if len(subsets) >= limit:
                return subsets
    return subsets


def _join_pairs(database, same_table=False):
    pairs = []
    for ta, ca, tb, cb in database.catalog.join_pairs(same_table=same_table):
        if ca not in template_columns(database, ta):
            continue
        if cb not in template_columns(database, tb):
            continue
        pairs.append((ta, ca, tb, cb))
    return pairs


def generate_nref2j(database, having_threshold=4):
    """Enumerate the (restricted) NREF2J family.

    Template::

        SELECT r.ci1..ci3, r.c1, COUNT(*)
        FROM R r, S s
        WHERE r.c1 = s.c2
          AND r.c1 IN (SELECT c1 FROM R GROUP BY c1 HAVING COUNT(*) < 4)
          AND s.c2 IN (SELECT c2 FROM S GROUP BY c2 HAVING COUNT(*) < 4)
        GROUP BY r.ci1..ci3, r.c1
    """
    workload = Workload(name="NREF2J")
    for r_table, c1, s_table, c2 in _join_pairs(database):
        if r_table == s_table:
            continue
        group_pool = [
            c for c in template_columns(database, r_table) if c != c1
        ]
        limit = 3 if _is_large(database, r_table) else 6
        for group_cols in _groupby_subsets(group_pool, 3, limit):
            select_cols = [f"r.{c}" for c in group_cols] + [f"r.{c1}"]
            group_clause = ", ".join(select_cols)
            sql = (
                f"SELECT {group_clause}, COUNT(*) "
                f"FROM {r_table} r, {s_table} s "
                f"WHERE r.{c1} = s.{c2} "
                f"AND r.{c1} IN (SELECT {c1} FROM {r_table} "
                f"GROUP BY {c1} HAVING COUNT(*) < {having_threshold}) "
                f"AND s.{c2} IN (SELECT {c2} FROM {s_table} "
                f"GROUP BY {c2} HAVING COUNT(*) < {having_threshold}) "
                f"GROUP BY {group_clause}"
            )
            workload.queries.append(
                make_instance(
                    sql,
                    "NREF2J",
                    r=r_table, c1=c1, s=s_table, c2=c2,
                    group_by=",".join(group_cols),
                )
            )
    return workload


def generate_nref3j(database):
    """Enumerate the (restricted) NREF3J family.

    Template::

        SELECT r1.ci1..ci3, r1.c1, COUNT(DISTINCT r2.c2)
        FROM R r1, R r2, S s
        WHERE r1.c1 = r2.c1 AND r1.c2 = s.c3 AND s.c4 = k
        GROUP BY r1.ci1..ci3, r1.c1
    """
    workload = Workload(name="NREF3J")
    for r_table, c2, s_table, c3 in _join_pairs(database):
        if r_table == s_table:
            continue
        r_columns = template_columns(database, r_table)
        s_columns = template_columns(database, s_table)
        self_join_cols = [c for c in r_columns if c != c2]
        filter_cols = [c for c in s_columns if c != c3]
        if _is_large(database, s_table):
            filter_cols = filter_cols[:1]
        else:
            filter_cols = filter_cols[:2]
        for c1 in self_join_cols[:2]:
            group_pool = [c for c in r_columns if c not in (c1, c2)]
            limit = 2 if _is_large(database, r_table) else 3
            for group_cols in _groupby_subsets(group_pool, 3, limit):
                for c4 in filter_cols:
                    ladder = selectivity_ladder(
                        database.column_dictionary(s_table, c4)
                    )
                    for k, freq in ladder:
                        select_cols = (
                            [f"r1.{c}" for c in group_cols] + [f"r1.{c1}"]
                        )
                        group_clause = ", ".join(select_cols)
                        sql = (
                            f"SELECT {group_clause}, "
                            f"COUNT(DISTINCT r2.{c2}) "
                            f"FROM {r_table} r1, {r_table} r2, {s_table} s "
                            f"WHERE r1.{c1} = r2.{c1} "
                            f"AND r1.{c2} = s.{c3} "
                            f"AND s.{c4} = {sql_literal(k)} "
                            f"GROUP BY {group_clause}"
                        )
                        workload.queries.append(
                            make_instance(
                                sql,
                                "NREF3J",
                                r=r_table, c1=c1, c2=c2,
                                s=s_table, c3=c3, c4=c4,
                                constant=k, constant_freq=freq,
                                group_by=",".join(group_cols),
                            )
                        )
    return workload
