"""Workload sampling.

The paper reduces each family to 100 queries "in a way that the
distribution of elapsed times of the larger family was preserved"
(Section 4.1.1).  We stratify the family by the order of magnitude of a
per-query cost key — by default the optimizer's estimated cost in the
initial configuration, which is available without executing the family —
and sample proportionally from each stratum.
"""

import math

import numpy as np

from ..common.rng import make_rng
from .workload import Workload


def stratified_sample(workload, costs, size=100, seed=405, name=None):
    """Sample ``size`` queries preserving the cost distribution.

    ``costs`` is one non-negative number per query (same order as
    ``workload.queries``).  Queries are bucketed by ``floor(log10(cost))``
    and each bucket contributes proportionally to its share of the family
    (largest-remainder rounding keeps the total exact).
    """
    queries = list(workload.queries)
    if len(costs) != len(queries):
        raise ValueError("costs and workload sizes differ")
    if size >= len(queries):
        return Workload(name=name or workload.name, queries=queries)

    rng = make_rng(seed)
    strata = {}
    for idx, cost in enumerate(costs):
        bucket = int(math.floor(math.log10(max(cost, 1e-9))))
        strata.setdefault(bucket, []).append(idx)

    total = len(queries)
    quotas = {}
    remainders = []
    assigned = 0
    for bucket, members in sorted(strata.items()):
        exact = size * len(members) / total
        quota = int(exact)
        quotas[bucket] = quota
        assigned += quota
        remainders.append((exact - quota, bucket))
    for _, bucket in sorted(remainders, reverse=True)[: size - assigned]:
        quotas[bucket] += 1

    chosen = []
    for bucket, members in sorted(strata.items()):
        quota = min(quotas[bucket], len(members))
        picks = rng.choice(len(members), size=quota, replace=False)
        chosen.extend(members[i] for i in sorted(picks))
    # Top up if rounding against small strata left us short.
    if len(chosen) < size:
        remaining = [i for i in range(total) if i not in set(chosen)]
        extra = rng.choice(
            len(remaining), size=size - len(chosen), replace=False
        )
        chosen.extend(remaining[i] for i in sorted(extra))

    chosen = sorted(chosen)
    return Workload(
        name=name or workload.name,
        queries=[queries[i] for i in chosen],
    )


def estimated_costs(database, workload):
    """Per-query estimated cost in the database's current configuration."""
    return np.array(
        [database.estimate(q.sql) for q in workload.queries],
        dtype=np.float64,
    )


def sample_benchmark_workload(database, workload, size=100, seed=405):
    """The paper's 100-query benchmark sample for one family."""
    costs = estimated_costs(database, workload)
    return stratified_sample(workload, costs, size=size, seed=seed)
