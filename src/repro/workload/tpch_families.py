"""The TPC-H query families (Section 3.2.2).

* **SkTH3J**  — three-way joins on the skewed TPC-H database: a PK-FK
  join R ⋈ S, a non-key same-domain join S ⋈ T, and a selection θ(S.c3)
  that is either ``S.c3 = p`` or
  ``S.c3 IN (SELECT c3 FROM S GROUP BY c3 HAVING COUNT(*) = p)``,
  with three constants per assignment sizing R ⋈ S across three orders of
  magnitude;
* **SkTH3Js** — the simpler variant restricted to Lineitem, Orders and
  Partsupp with equality-only θ;
* **UnTH3J**  — the same template as SkTH3J evaluated on the uniform
  TPC-H database (with constants re-derived from the uniform data).
"""

from itertools import combinations

from .constants import frequency_ladder, selectivity_ladder, sql_literal
from .nref_families import template_columns
from .workload import Workload, make_instance

SIMPLE_TABLES = ("lineitem", "orders", "partsupp")


def _fk_pairs(catalog):
    """(R, S, [join column pairs]) for each PK-FK correspondence.

    R is the primary-key side, S the foreign-key side.
    """
    pairs = []
    for schema in catalog.tables():
        for fk in schema.foreign_keys:
            pairs.append(
                (
                    fk.ref_table,
                    schema.name,
                    list(zip(fk.ref_columns, fk.columns)),
                )
            )
    return pairs


def _nonkey_join_pairs(catalog, s_table, t_table):
    """Same-domain joinable (s_col, t_col) pairs that are not the FK join."""
    s_schema = catalog.table(s_table)
    t_schema = catalog.table(t_table)
    pairs = []
    for s_col in s_schema.indexable_columns():
        if not s_col.domain:
            continue
        for t_col in t_schema.columns_in_domain(s_col.domain):
            if s_col.name in s_schema.primary_key and \
                    t_col.name in t_schema.primary_key:
                continue
            pairs.append((s_col.name, t_col.name))
    return pairs


def _theta_variants(database, s_table, c3, include_subquery):
    """θ(S.c3) variants with their constants (paper: three per assignment)."""
    column = database.column_dictionary(s_table, c3)
    variants = []
    for k, freq in selectivity_ladder(column):
        variants.append(("eq", k, freq))
    if include_subquery:
        for p in frequency_ladder(column):
            variants.append(("freq", p, p))
    return variants


def _render_theta(kind, s_table, c3, value):
    if kind == "eq":
        return f"s.{c3} = {sql_literal(value)}"
    return (
        f"s.{c3} IN (SELECT {c3} FROM {s_table} "
        f"GROUP BY {c3} HAVING COUNT(*) = {int(value)})"
    )


def _generate_3j(database, family, tables=None, include_subquery=True,
                 max_group=4):
    catalog = database.catalog
    workload = Workload(name=family)
    for r_table, s_table, fk_cols in _fk_pairs(catalog):
        if tables is not None and (
            r_table not in tables or s_table not in tables
        ):
            continue
        for t_schema in catalog.tables():
            t_table = t_schema.name
            if t_table in (r_table, s_table):
                continue
            if tables is not None and t_table not in tables:
                continue
            join_pairs = _nonkey_join_pairs(catalog, s_table, t_table)
            if not join_pairs:
                continue
            group_pool = template_columns(database, t_table)
            for c1, c2 in join_pairs[:2]:
                theta_cols = [
                    c for c in template_columns(database, s_table)
                    if c not in (c1,) and c not in dict(fk_cols).values()
                ]
                for c3 in theta_cols[:2]:
                    variants = _theta_variants(
                        database, s_table, c3, include_subquery
                    )
                    group_sets = [
                        combo
                        for size in range(1, max_group + 1)
                        for combo in combinations(group_pool, size)
                    ][:3]
                    for kind, value, freq in variants:
                        for group_cols in group_sets:
                            select_cols = [f"t.{c}" for c in group_cols]
                            group_clause = ", ".join(select_cols)
                            fk_clause = " AND ".join(
                                f"r.{rc} = s.{sc}" for rc, sc in fk_cols
                            )
                            sql = (
                                f"SELECT {group_clause}, COUNT(*) "
                                f"FROM {r_table} r, {s_table} s, "
                                f"{t_table} t "
                                f"WHERE {fk_clause} "
                                f"AND s.{c1} = t.{c2} "
                                f"AND {_render_theta(kind, s_table, c3, value)} "
                                f"GROUP BY {group_clause}"
                            )
                            workload.queries.append(
                                make_instance(
                                    sql,
                                    family,
                                    r=r_table, s=s_table, t=t_table,
                                    c1=c1, c2=c2, c3=c3,
                                    theta=kind, constant=value,
                                    constant_freq=freq,
                                    group_by=",".join(group_cols),
                                )
                            )
    return workload


def generate_skth3j(database):
    """The generalized three-way-join family (skewed TPC-H)."""
    return _generate_3j(database, "SkTH3J", include_subquery=True)


def generate_skth3js(database):
    """The simpler family: Lineitem/Orders/Partsupp, equality θ only."""
    return _generate_3j(
        database,
        "SkTH3Js",
        tables=SIMPLE_TABLES,
        include_subquery=False,
    )


def generate_unth3j(database):
    """SkTH3J's template evaluated against the uniform TPC-H database."""
    workload = _generate_3j(database, "UnTH3J", include_subquery=True)
    return workload
