"""Insert workloads (Section 4.4).

The paper's update experiment inserts batches into ``Neighboring_seq``
("both the widest and the largest relation in the NREF database"); this
module synthesizes fresh, FK-consistent insert batches for any NREF or
TPC-H table so the experiment does not recycle existing rows.
"""

import numpy as np

from ..common.rng import make_rng


def nref_neighboring_batch(database, size, seed=77):
    """A batch of new ``neighboring_seq`` rows referencing real proteins."""
    rng = make_rng(seed)
    protein_ids = database.table("protein").column("nref_id")
    existing = database.table("neighboring_seq").row_count
    starts = rng.integers(1, 900, size)
    spans = rng.integers(20, 700, size)
    return {
        "nref_id_1": protein_ids[rng.integers(0, len(protein_ids), size)],
        "ordinal": np.arange(existing + 1, existing + size + 1),
        "nref_id_2": protein_ids[rng.integers(0, len(protein_ids), size)],
        "taxon_id_2": rng.integers(20, 5000, size) * 7 + 13,
        "length_2": rng.integers(30, 5000, size),
        "score": np.round(rng.uniform(10.0, 2000.0, size), 1),
        "overlap_length": (spans * rng.uniform(0.4, 1.0, size)).astype(
            np.int64
        ),
        "start_1": starts,
        "start_2": rng.integers(1, 900, size),
        "end_1": starts + spans,
        "end_2": rng.integers(900, 1800, size),
    }


def tpch_lineitem_batch(database, size, seed=77):
    """A batch of new ``lineitem`` rows with consistent FKs and dates."""
    rng = make_rng(seed)
    orders = database.table("orders")
    partsupp = database.table("partsupp")
    existing = database.table("lineitem").row_count
    order_pos = rng.integers(0, orders.row_count, size)
    ps_pos = rng.integers(0, partsupp.row_count, size)
    shipdate = orders.column("o_orderdate")[order_pos] + rng.integers(
        1, 121, size
    )
    return {
        "l_orderkey": orders.column("o_orderkey")[order_pos],
        "l_linenumber": np.arange(existing + 1, existing + size + 1),
        "l_partkey": partsupp.column("ps_partkey")[ps_pos],
        "l_suppkey": partsupp.column("ps_suppkey")[ps_pos],
        "l_quantity": rng.integers(1, 51, size),
        "l_extendedprice": np.round(rng.uniform(900.0, 105_000.0, size), 2),
        "l_discount": np.round(rng.integers(0, 11, size) / 100.0, 2),
        "l_tax": np.round(rng.integers(0, 9, size) / 100.0, 2),
        "l_returnflag": np.array(
            rng.choice(["A", "N", "R"], size), dtype=object
        ),
        "l_linestatus": np.array(
            rng.choice(["F", "O"], size), dtype=object
        ),
        "l_shipdate": shipdate,
        "l_commitdate": shipdate + rng.integers(-30, 31, size),
        "l_receiptdate": shipdate + rng.integers(1, 31, size),
        "l_shipmode": np.array(
            rng.choice(["AIR", "RAIL", "TRUCK", "SHIP"], size),
            dtype=object,
        ),
    }


def break_even_inserts(insert_rate_slow, insert_rate_fast,
                       workload_gain, repetitions=1):
    """Inserted tuples at which slower-inserts/faster-queries wins.

    The paper's Section 4.4 arithmetic: with 1C inserting at
    ``insert_rate_slow`` s/tuple, R at ``insert_rate_fast``, and 1C
    saving ``workload_gain`` seconds per workload execution, the
    break-even batch for ``repetitions`` executions of the workload is
    ``repetitions * gain / (slow - fast)``.
    """
    delta = insert_rate_slow - insert_rate_fast
    if delta <= 0:
        return float("inf")
    return repetitions * workload_gain / delta
