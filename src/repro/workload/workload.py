"""Workload containers.

A *family* (Section 3.2.2 of the paper) is a large set of structurally
related queries generated from a SQL template; a *workload* is the
(sampled) subset actually executed — the paper works with 100-query
samples that preserve the elapsed-time distribution of the full family.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QueryInstance:
    """One generated query plus the template bindings that produced it.

    ``weight`` models the paper's bag semantics (Section 2.2): a workload
    "can also be defined as a bag, in which case the repetitions can
    model queries with a higher frequency or weight".
    """

    sql: str
    family: str
    meta: tuple = ()    # sorted (key, value) pairs describing the bindings
    weight: float = 1.0

    def meta_dict(self):
        return dict(self.meta)

    def template_key(self):
        """Workload-level identity of the instance's plan template.

        Family plus every binding except the ladder ``constant`` — the
        one thing the constant-selection ladders vary inside a shape
        (the ``constant_freq`` bucket stays, making this the "family +
        ladder bucket" identity).  Instances sharing this key present
        the optimizer with the same structure, so they collapse onto
        one :class:`~repro.optimizer.templates.PlanTemplate`; the
        optimizer-level :func:`~repro.optimizer.templates.template_key`
        is coarser still (it also ignores the bucket).
        """
        return (
            self.family,
            tuple((k, v) for k, v in self.meta if k != "constant"),
        )


def make_instance(sql, family, weight=1.0, **meta):
    """Build a :class:`QueryInstance` with normalized metadata."""
    return QueryInstance(
        sql=sql,
        family=family,
        meta=tuple(sorted((k, str(v)) for k, v in meta.items())),
        weight=float(weight),
    )


@dataclass
class Workload:
    """A named list of query instances."""

    name: str
    queries: list = field(default_factory=list)

    def __len__(self):
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def sqls(self):
        return [q.sql for q in self.queries]
