"""Workload containers.

A *family* (Section 3.2.2 of the paper) is a large set of structurally
related queries generated from a SQL template; a *workload* is the
(sampled) subset actually executed — the paper works with 100-query
samples that preserve the elapsed-time distribution of the full family.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QueryInstance:
    """One generated query plus the template bindings that produced it.

    ``weight`` models the paper's bag semantics (Section 2.2): a workload
    "can also be defined as a bag, in which case the repetitions can
    model queries with a higher frequency or weight".
    """

    sql: str
    family: str
    meta: tuple = ()    # sorted (key, value) pairs describing the bindings
    weight: float = 1.0

    def meta_dict(self):
        return dict(self.meta)


def make_instance(sql, family, weight=1.0, **meta):
    """Build a :class:`QueryInstance` with normalized metadata."""
    return QueryInstance(
        sql=sql,
        family=family,
        meta=tuple(sorted((k, str(v)) for k, v in meta.items())),
        weight=float(weight),
    )


@dataclass
class Workload:
    """A named list of query instances."""

    name: str
    queries: list = field(default_factory=list)

    def __len__(self):
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def sqls(self):
        return [q.sql for q in self.queries]
