"""Shared fixtures: a small hand-built database and tiny generated ones."""

import numpy as np
import pytest

from repro import (
    Catalog,
    ColumnDef,
    Database,
    TableSchema,
    integer,
    varchar,
)
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.engine.systems import system_a


def make_city_catalog():
    users = TableSchema(
        "users",
        [
            ColumnDef("uid", integer(), "id"),
            ColumnDef("city", varchar(12), "city"),
            ColumnDef("age", integer(), "age"),
        ],
        primary_key=("uid",),
    )
    orders = TableSchema(
        "orders",
        [
            ColumnDef("oid", integer(), "id"),
            ColumnDef("uid", integer(), "id"),
            ColumnDef("city", varchar(12), "city"),
            ColumnDef("amount", integer(), "amount"),
        ],
        primary_key=("oid",),
    )
    return Catalog([users, orders])


def load_city_database(n_users=500, n_orders=2500, seed=0):
    catalog = make_city_catalog()
    db = Database(catalog, system_a(), name="city")
    rng = np.random.default_rng(seed)
    cities = np.array(["tor", "mtl", "van", "cal", "ott"], dtype=object)
    db.load_table(
        "users",
        {
            "uid": np.arange(n_users),
            "city": rng.choice(cities, n_users),
            "age": rng.integers(18, 80, n_users),
        },
    )
    db.load_table(
        "orders",
        {
            "oid": np.arange(n_orders),
            "uid": rng.integers(0, n_users, n_orders),
            "city": rng.choice(cities, n_orders),
            "amount": rng.integers(1, 100, n_orders),
        },
    )
    db.collect_statistics()
    return db


@pytest.fixture
def city_db():
    """A small two-table database with statistics, in the default config."""
    return load_city_database()


@pytest.fixture
def city_db_p(city_db):
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    return city_db


@pytest.fixture
def city_db_1c(city_db):
    city_db.apply_configuration(one_column_configuration(city_db.catalog))
    return city_db


@pytest.fixture(scope="session")
def tiny_nref():
    """A tiny NREF database (shared across the session; read-mostly)."""
    from repro.datagen.nref import load_nref_database

    db = load_nref_database(system_a(), scale=0.05)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    return db


@pytest.fixture(scope="session")
def tiny_tpch():
    from repro.datagen.tpch import load_tpch_database
    from repro.engine.systems import system_c

    db = load_tpch_database(system_c(), scale=0.05, zipf=1.0)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    return db
