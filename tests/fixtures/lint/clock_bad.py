"""CLK001 positive fixture: four wall-clock reads outside repro.obs."""

import time
import datetime
from time import perf_counter


def stamp():
    started = time.time()
    now = datetime.datetime.now()
    return started, now, perf_counter()
