"""CLK001 negative fixture: virtual costs and the sanctioned wrapper."""

from repro import obs


def stamp(plan):
    return plan.cost_seconds, obs.perf_seconds()
