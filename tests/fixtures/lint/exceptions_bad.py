"""EXC001 positive fixture: bare and swallowed broad handlers."""


def bare(step):
    try:
        return step()
    except:
        return None


def swallow(step):
    try:
        return step()
    except Exception:
        return None


def tuple_swallow(step):
    try:
        return step()
    except (ValueError, Exception) as err:
        return err
