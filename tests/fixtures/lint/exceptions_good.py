"""EXC001 negative fixture: named catches and re-raising broad ones."""

import logging


def narrow(step):
    try:
        return step()
    except ValueError:
        return None


def logged(step):
    try:
        return step()
    except Exception as err:
        logging.error("failed: %s", err)
        raise
