"""INV001 positive fixture: mutators that never invalidate."""


class MiniDatabase:
    def __init__(self):
        self.tables = {}
        self.statistics = {}

    def invalidate_caches(self):
        self._plan_cache = {}

    def load_table(self, name, rows):
        self.tables[name] = rows

    def insert(self, name, rows):
        self.tables[name].extend(rows)
