"""INV001 positive fixture: mutators that never invalidate."""


class MiniDatabase:
    def __init__(self):
        self.tables = {}
        self.statistics = {}

    def invalidate_caches(self):
        self._plan_cache = {}

    def load_table(self, name, rows):
        self.tables[name] = rows

    def insert(self, name, rows):
        self.tables[name].extend(rows)


class DictEncodedDatabase:
    """Resetting a derived cache by hand is not invalidate_caches."""

    def __init__(self):
        self.tables = {}
        self._dict_cache = {}

    def invalidate_caches(self):
        self._plan_cache = {}
        self._dict_cache = {}

    def append(self, name, rows):
        self.tables[name].extend(rows)
        self._dict_cache = {}


class ShardedDatabase:
    """Invalidating the shard runtime by hand is not invalidate_caches."""

    def __init__(self):
        self.tables = {}
        self._shard_runtime = ShardRuntime()

    def invalidate_caches(self):
        self._plan_cache = {}
        self._shard_runtime.invalidate()

    def load_partition(self, name, rows):
        self.tables[name].append_rows(rows)
        self._shard_runtime.invalidate()


class TemplatedDatabase:
    """Hand-clearing template/subplan caches is not invalidate_caches."""

    def __init__(self):
        self.tables = {}
        self._template_cache = TemplateCache()
        self._subplan_cache = SubplanCache()

    def invalidate_caches(self):
        self._plan_cache = {}
        self._template_cache.invalidate()
        self._subplan_cache.invalidate()

    def append(self, name, rows):
        self.tables[name].extend(rows)
        self._template_cache.invalidate()
        self._subplan_cache.invalidate()


class KernelDatabase:
    """Hand-clearing the fused-kernel cache is not invalidate_caches."""

    def __init__(self):
        self.tables = {}
        self._kernel_cache = KernelCache()

    def invalidate_caches(self):
        self._plan_cache = {}
        self._kernel_cache.invalidate()

    def append(self, name, rows):
        self.tables[name].extend(rows)
        self._kernel_cache.invalidate()


class ShardRuntime:
    def invalidate(self):
        pass


class KernelCache:
    def invalidate(self):
        pass


class TemplateCache:
    def invalidate(self):
        pass


class SubplanCache:
    def invalidate(self):
        pass
