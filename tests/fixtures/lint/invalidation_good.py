"""INV001 negative fixture: direct, transitive and dunder paths."""


class MiniDatabase:
    def __init__(self):
        self.tables = {}

    def invalidate_caches(self):
        self._plan_cache = {}

    def load_table(self, name, rows):
        self.tables[name] = rows
        self.invalidate_caches()

    def apply(self, config):
        self._apply(config)

    def _apply(self, config):
        self._built = config
        self.invalidate_caches()

    def __setstate__(self, state):
        self.tables = dict(state)


class DictEncodedDatabase:
    """Dictionary cache invalidated through the invalidate_caches path."""

    def __init__(self):
        self.tables = {}
        self._dict_cache = DictCache()

    def invalidate_caches(self):
        self._plan_cache = {}
        self._dict_cache.invalidate()

    def load_table(self, name, rows):
        self.tables[name] = rows
        self.invalidate_caches()


class DictCache:
    def invalidate(self):
        pass


class ShardedDatabase:
    """Shared-memory segments released through the invalidate_caches path."""

    def __init__(self):
        self.tables = {}
        self._shard_runtime = ShardRuntime()

    def invalidate_caches(self):
        self._plan_cache = {}
        self._shard_runtime.invalidate()

    def load_partition(self, name, rows):
        self.tables[name].append_rows(rows)
        self.invalidate_caches()


class ShardRuntime:
    def invalidate(self):
        pass


class TemplatedDatabase:
    """Template/subplan caches invalidated through invalidate_caches."""

    def __init__(self):
        self.tables = {}
        self._template_cache = TemplateCache()
        self._subplan_cache = SubplanCache()

    def invalidate_caches(self):
        self._plan_cache = {}
        self._template_cache.invalidate()
        self._subplan_cache.invalidate()

    def append(self, name, rows):
        self.tables[name].extend(rows)
        self.invalidate_caches()


class KernelDatabase:
    """Fused-kernel cache invalidated through invalidate_caches."""

    def __init__(self):
        self.tables = {}
        self._kernel_cache = KernelCache()

    def invalidate_caches(self):
        self._plan_cache = {}
        self._kernel_cache.invalidate()

    def append(self, name, rows):
        self.tables[name].extend(rows)
        self.invalidate_caches()


class TemplateCache:
    def invalidate(self):
        pass


class SubplanCache:
    def invalidate(self):
        pass


class KernelCache:
    def invalidate(self):
        pass


class NotADatabase:
    """Defines no invalidate_caches, so INV001 never applies to it."""

    def load_table(self, name, rows):
        self.tables = {name: rows}
