"""Mini registry: only ALPHA is declared; BETA is the violation."""

_REGISTRY = {}


def register(name, kind="str", default=None, description=""):
    _REGISTRY[name] = (kind, default, description)


def text(name, default=None):
    return default


register("REPRO_FIX_ALPHA", kind="int", default=1, description="alpha")
