"""Reads two knobs through the registry accessor."""

from .common import knobs


def alpha():
    return knobs.text("REPRO_FIX_ALPHA")


def beta():
    return knobs.text("REPRO_FIX_BETA")
