def test_defaults():
    assert "REPRO_FIX_ALPHA"
    assert "REPRO_FIX_BETA"
