"""Mini registry declaring both fixture knobs."""

_REGISTRY = {}


def register(name, kind="str", default=None, description=""):
    _REGISTRY[name] = (kind, default, description)


def text(name, default=None):
    return default


register("REPRO_FIX_ALPHA", kind="int", default=1, description="alpha")
register("REPRO_FIX_BETA", kind="flag", default=True, description="beta")
