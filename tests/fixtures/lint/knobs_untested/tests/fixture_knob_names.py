def test_alpha_default():
    assert "REPRO_FIX_ALPHA"
