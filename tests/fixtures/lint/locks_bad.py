"""LCK001 positive fixture: unguarded shared writes under the pool."""


class Service:
    def __init__(self, session):
        self._session = session
        self.hits = 0
        self.total = 0

    def run(self, items):
        def work(item):
            self.hits += 1
            return item

        return self._session.map_batch(work, items)

    def run_lambda(self, pool, items):
        return pool.map(lambda item: self._bump(item), items)

    def _bump(self, item):
        self.total = self.total + 1
        return item


class ShardService:
    """Per-shard workers racing on shared scatter accounting."""

    def __init__(self, pool):
        self._pool = pool
        self.bytes_shared = 0

    def scatter(self, shards):
        def scan(shard):
            self.bytes_shared += shard.nbytes
            return shard

        return [self._pool.submit(scan, shard) for shard in shards]


class JobRunner:
    """Long-lived service submitting a bound method as the worker."""

    def __init__(self, pool):
        self._pool = pool
        self.completed = 0

    def submit(self, job):
        return self._pool.submit(self._execute, job)

    def _execute(self, job):
        job.run()
        self.completed += 1
        return job


class MorselPool:
    """Morsel workers racing on shared slice accounting."""

    def __init__(self, executor):
        self._executor = executor
        self.morsels_done = 0

    def map_slices(self, kernel, slices):
        def run(sl):
            result = kernel(sl)
            self.morsels_done += 1
            return result

        return [f.result() for f in
                [self._executor.submit(run, sl) for sl in slices]]


class KernelCache:
    """Fused-filter cache whose hit accounting misses the lock."""

    def __init__(self, pool):
        self._pool = pool
        self.hit_count = 0

    def warm(self, shapes):
        def compile_shape(shape):
            kernel = tuple(shape)
            self.hit_count += 1
            return kernel

        return [self._pool.submit(compile_shape, s) for s in shapes]
