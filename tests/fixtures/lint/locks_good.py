"""LCK001 negative fixture: guarded, thread-local or local writes."""

import threading


class Service:
    def __init__(self, session):
        self._session = session
        self._lock = threading.Lock()
        self._thread_local = threading.local()
        self.hits = 0

    def run(self, items):
        def work(item):
            with self._lock:
                self.hits += 1
            self._thread_local.count = item
            box = Box()
            box.value = item
            return box

        return self._session.map_batch(work, items)


class Box:
    value = None
