"""LCK001 negative fixture: guarded, thread-local or local writes."""

import threading


class Service:
    def __init__(self, session):
        self._session = session
        self._lock = threading.Lock()
        self._thread_local = threading.local()
        self.hits = 0

    def run(self, items):
        def work(item):
            with self._lock:
                self.hits += 1
            self._thread_local.count = item
            box = Box()
            box.value = item
            return box

        return self._session.map_batch(work, items)


class Box:
    value = None


class ShardService:
    """Shard-worker accounting guarded; segment map keyed locally."""

    def __init__(self, pool):
        self._pool = pool
        self._lock = threading.Lock()
        self.bytes_shared = 0

    def scatter(self, shards):
        def scan(shard):
            with self._lock:
                self.bytes_shared += shard.nbytes
            segments = {}
            segments[shard.name] = shard
            return segments

        return [self._pool.submit(scan, shard) for shard in shards]


class JobRunner:
    """Bound-method worker: shared writes named and lock-guarded."""

    def __init__(self, pool):
        self._pool = pool
        self._lock = threading.Lock()
        self.completed = 0

    def submit(self, job):
        return self._pool.submit(self._execute, job)

    def _execute(self, job):
        job.status = "running"
        job.run()
        with self._lock:
            self.completed += 1
        return job


class KernelCache:
    """Fused-filter cache: hit accounting lock-guarded, kernels local."""

    def __init__(self, pool):
        self._pool = pool
        self._lock = threading.Lock()
        self.hit_count = 0

    def warm(self, shapes):
        def compile_shape(shape):
            kernel = tuple(shape)
            with self._lock:
                self.hit_count += 1
            return kernel

        return [self._pool.submit(compile_shape, s) for s in shapes]


class MorselPool:
    """Morsel workers: accounting lock-guarded, results local."""

    def __init__(self, executor):
        self._executor = executor
        self._lock = threading.Lock()
        self.morsels_done = 0

    def map_slices(self, kernel, slices):
        def run(sl):
            result = kernel(sl)
            with self._lock:
                self.morsels_done += 1
            return result

        return [f.result() for f in
                [self._executor.submit(run, sl) for sl in slices]]
