"""LCK002 positives: executor-reachable writes that miss the lock on
at least one reaching path."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.errors = 0

    def record(self):
        # Submitted directly with no lock anywhere: flagged.
        self.hits += 1

    def record_some(self, ok):
        if ok:
            with self._lock:
                self.hits += 1
        else:
            # The else path writes unlocked: flagged.
            self.hits += 1

    def _bump_errors(self):
        # Helper escape: one caller holds the lock, the other does not,
        # so the interprocedural entry lockset is empty: flagged.
        self.errors += 1

    def locked_entry(self):
        with self._lock:
            self._bump_errors()

    def unlocked_entry(self):
        self._bump_errors()


class Arena:
    """Scratch-buffer pool handed to the executor: the reuse counter
    write never takes the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reuses = 0

    def borrow(self, n):
        self.reuses += 1
        return n


def drive(pool):
    tally = Tally()
    pool.submit(tally.record)
    pool.submit(tally.record_some, True)
    pool.submit(tally.locked_entry)
    pool.submit(tally.unlocked_entry)
    arena = Arena()
    pool.submit(arena.borrow, 8)
    return tally, arena
