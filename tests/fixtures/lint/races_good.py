"""LCK002 negatives: every executor-reachable shared write holds the
class lock — directly, via both branches, or through every caller of a
helper."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.errors = 0

    def record(self):
        with self._lock:
            self.hits += 1

    def record_some(self, ok):
        with self._lock:
            if ok:
                self.hits += 1
            else:
                self.hits += 2

    def _bump_locked(self):
        # Every caller holds the lock, so the entry lockset credits it.
        self.errors += 1

    def locked_entry(self):
        with self._lock:
            self._bump_locked()

    def other_locked_entry(self):
        with self._lock:
            self._bump_locked()


class Unshared:
    """Lock-owning class never handed to an executor: local writes are
    fine without the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        self.count += 1


class Arena:
    """Scratch-buffer pool handed to the executor: the reuse counter
    write holds the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reuses = 0

    def borrow(self, n):
        with self._lock:
            self.reuses += 1
        return n


def drive(pool):
    tally = Tally()
    pool.submit(tally.record)
    pool.submit(tally.record_some, True)
    pool.submit(tally.locked_entry)
    pool.submit(tally.other_locked_entry)
    arena = Arena()
    pool.submit(arena.borrow, 8)
    return tally, arena
