"""RNG001 positive fixture: four distinct ambient-entropy violations."""

import random
import uuid
import numpy as np
from numpy.random import default_rng


def sample():
    token = uuid.uuid4()
    rng = np.random.default_rng(0)
    return random.random(), default_rng, rng, token
