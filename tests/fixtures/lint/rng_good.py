"""RNG001 negative fixture: only injected generators and plain numpy."""

import numpy as np


def shuffle(values, rng):
    order = rng.permutation(len(values))
    return [values[i] for i in order], np.arange(3)
