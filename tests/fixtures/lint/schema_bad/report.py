"""SCH001 positive fixture: three drifts against schemas.py."""


def build_run_report(run):
    return {
        "schema": "repro.report/v1",
        "extra": True,
        "run": {"seed": run.seed},
    }
