"""Schema side of the SCH001 positive fixture."""

RUN_REPORT_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "stages"],
    "properties": {
        "schema": {"type": "string"},
        "run": {
            "type": "object",
            "required": ["seed"],
            "properties": {
                "seed": {"type": "integer"},
                "scale": {"type": "number"},
            },
            "additionalProperties": False,
        },
        "stages": {"type": "array"},
    },
    "additionalProperties": False,
}
