"""SCH001 negative fixture: the report and its schema agree."""


def build_run_report(run):
    return {
        "schema": "repro.report/v1",
        "run": {"seed": run.seed, "scale": run.scale},
        "stages": list(run.stages),
    }
