"""Schema side of the SCH001 negative fixture."""

RUN_SCHEMA = {
    "type": "object",
    "required": ["seed", "scale"],
    "properties": {
        "seed": {"type": "integer"},
        "scale": {"type": "number"},
    },
    "additionalProperties": False,
}

RUN_REPORT_SCHEMA = {
    "type": "object",
    "required": ["schema", "run", "stages"],
    "properties": {
        "schema": {"type": "string"},
        "run": RUN_SCHEMA,
        "stages": {"type": "array"},
    },
    "additionalProperties": False,
}
