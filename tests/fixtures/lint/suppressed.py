"""Suppression fixture: real violations, silenced by directives."""
# repro-lint: disable-file=CLK001

import random  # repro-lint: disable=RNG001
import time


def stamp():
    return time.time()
