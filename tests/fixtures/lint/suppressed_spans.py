"""Suppression directives on decorator lines and on the first line of
multi-line statements must cover the whole statement span."""

import time


def noop(fn):
    return fn


@noop  # repro-lint: disable=CLK001
def decorated():
    # The finding is on this body line, not the decorator line.
    return time.perf_counter()


values = [  # repro-lint: disable=CLK001
    time.perf_counter(),
    time.monotonic(),
]
